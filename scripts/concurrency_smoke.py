"""CI smoke: many concurrent clients against one live daemon.

Trains nothing itself — point it at a prebuilt bundle (the CI job
trains one) and a corpus directory.  The script then checks the three
serving promises end to end, over real sockets against a real
subprocess daemon:

1. **byte-identity** — every one of N concurrent clients receives
   exactly the payloads an in-process pipeline run of the same corpus
   produces;
2. **no duplicate forwards** — the daemon's cumulative forward count
   after all N clients equals the single in-process run's (concurrent
   identical requests coalesce or hit the shared store, they are
   never recomputed per client);
3. **clean SIGTERM drain under load** — a SIGTERM that lands while a
   streaming reply is in flight lets that reply run to completion and
   exits 0.

Usage::

    python scripts/concurrency_smoke.py --bundle advisor \
        [--corpus examples/corpus] [--clients 8]

Exit status 0 on success; any failed check raises with a message.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.artifacts import BundleRegistry               # noqa: E402
from repro.client import connect                         # noqa: E402
from repro.serve import ServeConfig, build_service       # noqa: E402


def golden_run(bundle: str, named: list) -> tuple[list, int]:
    """In-process reference: payloads + total forwarded graphs."""
    registry = BundleRegistry.from_specs([bundle])
    service = build_service(registry.get(registry.default),
                            ServeConfig())
    payloads = [fs.to_payload()
                for _, fs in sorted(service.iter_sources(named))]
    return payloads, service.cache_stats()["forwards"]["graphs"]


def start_daemon(bundle: str, cache_dir: str,
                 ready_file: Path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--bundle", bundle,
         "--cache-dir", cache_dir, "--ready-file", str(ready_file)],
        env=env, cwd=REPO_ROOT)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if ready_file.exists() and ready_file.read_text().strip():
            return proc, ready_file.read_text().strip()
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with {proc.returncode}")
        time.sleep(0.2)
    proc.kill()
    raise RuntimeError("daemon never became ready")


def concurrent_clients(address: str, named: list, n: int,
                       golden: list) -> dict:
    """N clients, same corpus, all at once; returns final stats."""
    errors: list = []
    stats: dict = {}
    barrier = threading.Barrier(n)

    def one_client(cid: int) -> None:
        try:
            with connect(address) as client:
                barrier.wait(timeout=60)
                got = [fs.to_payload()
                       for fs in client.suggest_sources(named)]
                if json.dumps(got, sort_keys=True) != \
                        json.dumps(golden, sort_keys=True):
                    raise AssertionError(
                        f"client {cid}: payloads diverge from the "
                        f"in-process golden run")
                stats[cid] = client.last_done.stats
        except Exception as exc:
            errors.append((cid, exc))

    threads = [threading.Thread(target=one_client, args=(cid,))
               for cid in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    if errors:
        raise AssertionError(f"client failures: {errors}")
    # every Done carries the service's cumulative stats; the final
    # snapshot (max graphs) is the daemon's total forward work
    return max(stats.values(),
               key=lambda s: s["forwards"]["graphs"])


def sigterm_under_load(proc: subprocess.Popen, address: str,
                       named: list) -> None:
    """SIGTERM mid-stream: the in-flight reply completes, exit 0."""
    received: list = []
    failure: list = []

    # a salted, wider workload so the stream is still in flight when
    # the signal lands
    bulk = [(f"drain{i}_{name}", src + f"\n/* drain {i} */\n")
            for i in range(12) for name, src in named]

    def streaming_client() -> None:
        try:
            with connect(address) as client:
                for fs in client.stream_sources(bulk):
                    received.append(fs.name)
        except Exception as exc:
            failure.append(exc)

    t = threading.Thread(target=streaming_client)
    t.start()
    deadline = time.monotonic() + 60
    while not received and time.monotonic() < deadline:
        time.sleep(0.005)
    if not received:
        raise AssertionError("stream produced nothing to drain")
    proc.send_signal(signal.SIGTERM)
    t.join(timeout=120)
    if failure:
        raise AssertionError(
            f"in-flight stream died during drain: {failure[0]}")
    if len(received) != len(bulk):
        raise AssertionError(
            f"drained stream was cut short: {len(received)} of "
            f"{len(bulk)} files")
    code = proc.wait(timeout=60)
    if code != 0:
        raise AssertionError(f"daemon exited {code} after SIGTERM")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--bundle", required=True,
                        help="trained bundle directory or archive")
    parser.add_argument("--corpus", default=str(REPO_ROOT / "examples"
                                                / "corpus"),
                        help="directory of C files to serve")
    parser.add_argument("--clients", type=int, default=8)
    args = parser.parse_args(argv)

    paths = sorted(Path(args.corpus).glob("*.c"))
    if not paths:
        raise SystemExit(f"no .c files under {args.corpus}")
    named = [(p.name, p.read_text(encoding="utf-8")) for p in paths]

    print(f"golden: in-process run over {len(named)} files")
    golden, golden_graphs = golden_run(args.bundle, named)

    with tempfile.TemporaryDirectory() as cache_dir:
        ready = Path(cache_dir) / "ready.txt"
        proc, address = start_daemon(args.bundle, cache_dir, ready)
        try:
            print(f"daemon at {address}; firing {args.clients} "
                  f"concurrent clients")
            stats = concurrent_clients(address, named, args.clients,
                                       golden)
            graphs = stats["forwards"]["graphs"]
            print(f"byte-identity: OK across {args.clients} clients")
            if graphs != golden_graphs:
                raise AssertionError(
                    f"duplicate forwards: daemon computed {graphs} "
                    f"graphs for {args.clients} identical requests, "
                    f"in-process golden needed {golden_graphs}")
            print(f"shared forwards: OK ({graphs} graphs total, "
                  f"coalesce {stats.get('coalesce')})")
            sigterm_under_load(proc, address, named)
            print("SIGTERM drain under load: OK")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
    print("concurrency smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
