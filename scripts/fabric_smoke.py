"""CI smoke: the distributed serving fabric, end to end on localhost.

A coordinator (`repro suggest-dir --peers`) against two *empty*
``repro serve --accept-bundles`` daemons, driving the real CLI entry
points throughout:

1. **self-provisioning push** — the first fabric run pushes the
   bundle archive to both peers (content-addressed by SHA-256) and
   produces output byte-identical to the in-process golden run;
2. **push-once contract** — a second run against the now-warm fleet
   reports a ``bundle-have`` cache hit for every peer: the archive's
   bytes never transit the wire twice;
3. **peer loss mid-run** — against a *fresh* (cold-store) pair, one
   peer is SIGKILLed after the first streamed record; the supervisor
   requeues its shard onto the survivor and the completed run still
   matches the golden records file-for-file (requeue, never abort).

Every spawned daemon PID is tracked and killed in ``finally`` blocks,
so a wedged peer can never stall the runner after a failed check.

Usage::

    python scripts/fabric_smoke.py --bundle advisor \
        [--corpus DIR]   # default: a generated ~30-file corpus, big
                         # enough that the SIGKILL lands mid-run

Exit status 0 on success; any failed check raises with a message.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def make_corpus(work: Path) -> Path:
    """A deterministic corpus with enough files to outlive the kill."""
    from repro.dataset.corpus import CorpusGenerator

    corpus = work / "corpus"
    corpus.mkdir()
    _, files = CorpusGenerator(seed=41).generate(scale=0.004)
    for f in files:
        (corpus / f"file_{f.file_id}.c").write_text(f.source)
    return corpus


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def start_peer(work: Path, tag: str) -> subprocess.Popen:
    """One empty, push-accepting daemon on an ephemeral port."""
    ready = work / f"ready-{tag}.txt"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--accept-bundles",
         "--cache-dir", str(work / f"cache-{tag}"),
         "--ready-file", str(ready)],
        env=_env(), cwd=REPO_ROOT)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            proc.address = ready.read_text().strip()
            return proc
        if proc.poll() is not None:
            raise RuntimeError(f"peer {tag} exited {proc.returncode}")
        time.sleep(0.2)
    proc.kill()
    raise RuntimeError(f"peer {tag} never became ready")


def run_fabric(corpus: Path, bundle: str, peers: list[str],
               out: Path) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro.cli", "suggest-dir",
           str(corpus), "--peers", ",".join(peers), "--bundle", bundle,
           "--quiet", "--out", str(out)]
    proc = subprocess.run(cmd, env=_env(), cwd=REPO_ROOT,
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        raise AssertionError(
            f"fabric suggest-dir exited {proc.returncode}:\n"
            f"{proc.stderr}")
    return proc


def run_golden(corpus: Path, bundle: str, out: Path) -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "suggest-dir", str(corpus),
         "--bundle", bundle, "--quiet", "--out", str(out)],
        env=_env(), cwd=REPO_ROOT, capture_output=True, text=True,
        timeout=600)
    if proc.returncode != 0:
        raise AssertionError(
            f"golden suggest-dir exited {proc.returncode}:\n"
            f"{proc.stderr}")


def check_provision_and_identity(corpus: Path, bundle: str,
                                 peers: list[str], work: Path) -> None:
    golden, fabric = work / "golden.json", work / "fabric.json"
    run_golden(corpus, bundle, golden)
    first = run_fabric(corpus, bundle, peers, fabric)
    pushes = first.stderr.count(": pushed ")
    if pushes != len(peers):
        raise AssertionError(
            f"expected one push per peer ({len(peers)}), saw {pushes}:"
            f"\n{first.stderr}")
    if golden.read_bytes() != fabric.read_bytes():
        raise AssertionError(
            "fabric run diverged from the in-process golden")
    print(f"provisioning: {pushes} pushes, output byte-identical "
          f"to in-process")


def check_push_once(corpus: Path, bundle: str, peers: list[str],
                    work: Path) -> None:
    again = work / "fabric-again.json"
    second = run_fabric(corpus, bundle, peers, again)
    hits = second.stderr.count(": cache hit ")
    if hits != len(peers) or ": pushed " in second.stderr:
        raise AssertionError(
            f"re-push was not a pure cache hit ({hits} hits of "
            f"{len(peers)}):\n{second.stderr}")
    if again.read_bytes() != (work / "golden.json").read_bytes():
        raise AssertionError("warm fabric run diverged from golden")
    print(f"push-once: {hits} bundle-have cache hits, zero bytes "
          f"re-shipped")


def check_peer_loss(corpus: Path, bundle: str, peers: list[str],
                    victim: subprocess.Popen, work: Path) -> None:
    """SIGKILL one peer after the first streamed record lands.

    Must run against freshly spawned peers: a fleet warmed by the
    earlier checks would replay the corpus from its suggestion stores
    and finish before the kill could land mid-run.
    """
    cmd = [sys.executable, "-m", "repro.cli", "suggest-dir",
           str(corpus), "--peers", ",".join(peers), "--bundle", bundle,
           "--quiet", "--stream"]
    proc = subprocess.Popen(cmd, env=_env(), cwd=REPO_ROOT,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    records: dict[str, dict] = {}
    killed = False
    try:
        for line in proc.stdout:
            rec = json.loads(line)
            if rec.get("event") == "done":
                continue
            records[Path(rec["file"]).name] = rec
            if not killed:
                victim.kill()
                victim.wait(timeout=30)
                killed = True
        if proc.wait(timeout=600) != 0:
            raise AssertionError(
                f"fabric run aborted after peer loss:\n"
                f"{proc.stderr.read()}")
    finally:
        if proc.poll() is None:
            proc.kill()
    errored = [name for name, rec in records.items()
               if rec.get("event") == "error"]
    if errored:
        raise AssertionError(
            f"files errored instead of requeueing: {errored}")
    golden = {}
    for rec in json.loads((work / "golden.json").read_text()):
        golden[Path(rec["file"]).name] = rec
    if records != golden:
        raise AssertionError(
            f"peer-loss run diverged from golden: got "
            f"{sorted(records)}, want {sorted(golden)}")
    print(f"peer loss: survivor served all {len(records)} files "
          f"byte-identically after a mid-run SIGKILL")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--bundle", required=True,
                        help="trained bundle directory or archive")
    parser.add_argument("--corpus", default=None,
                        help="directory of C files to serve (default: "
                             "generate a deterministic corpus)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)
        if args.corpus:
            corpus = Path(args.corpus)
        else:
            corpus = make_corpus(work)
        n_files = len(sorted(corpus.glob("*.c")))
        if not n_files:
            raise SystemExit(f"no .c files under {corpus}")
        print(f"corpus: {n_files} files under {corpus}")
        daemons: list[subprocess.Popen] = []
        try:
            daemons = [start_peer(work, tag) for tag in ("a", "b")]
            peers = [d.address for d in daemons]
            print(f"fleet: {peers}")
            check_provision_and_identity(corpus, args.bundle, peers,
                                         work)
            check_push_once(corpus, args.bundle, peers, work)
            # a cold pair for the kill check — warm stores would
            # replay the corpus before the SIGKILL lands
            fresh = [start_peer(work, tag) for tag in ("c", "d")]
            daemons += fresh
            check_peer_loss(corpus, args.bundle,
                            [d.address for d in fresh], fresh[1],
                            work)
        finally:
            for daemon in daemons:
                if daemon.poll() is None:
                    daemon.kill()
                    daemon.wait(timeout=30)
    print("fabric smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
