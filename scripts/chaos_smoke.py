"""CI smoke: fault-injected serving against a real bundle, end to end.

Trains nothing itself — point it at a prebuilt bundle (the CI job
trains one) and a corpus directory.  Every check drives the *real*
entry points (``repro suggest-dir``, ``repro serve``) with a
deterministic :class:`~repro.serve.faults.FaultPlan` armed through the
``--faults`` flag or the environment, and asserts the stack recovers:

1. **killed worker, byte-identical run** — a ``suggest-dir --shards 2``
   run whose shard-0 worker is SIGKILLed after its first file produces
   output byte-identical to the fault-free sharded run;
2. **poison quarantine** — a reproducibly lethal input ends as a
   structured ``{"event": "error", "code": "quarantined"}`` NDJSON
   record while every innocent file still gets its fault-free record;
3. **daemon restart mid-batch** — a streaming client survives the
   daemon being SIGKILLed mid-reply: a replacement binds the same
   socket and the client's RetryPolicy finishes the batch exactly
   once, in order.

Every spawned daemon PID is tracked and killed in ``finally`` blocks,
so a wedged server can never stall the runner after a failed check.

Usage::

    python scripts/chaos_smoke.py --bundle advisor \
        [--corpus examples/corpus]

Exit status 0 on success; any failed check raises with a message.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.client import RetryPolicy, connect            # noqa: E402

KILL_PLAN = json.dumps(
    {"faults": [{"kind": "kill-worker", "sid": 0, "after_files": 1}]})
POISON_PLAN = json.dumps(
    {"faults": [{"kind": "poison-file", "match": "poison", "times": 8}]})


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def run_suggest(corpus: Path, bundle: str, out: Path, *,
                faults: str | None = None, stream: bool = False) -> str:
    cmd = [sys.executable, "-m", "repro.cli", "suggest-dir",
           str(corpus), "--bundle", bundle, "--shards", "2", "--quiet",
           "--out", str(out)]
    if faults is not None:
        cmd += ["--faults", faults]
    if stream:
        cmd += ["--stream"]
    proc = subprocess.run(cmd, env=_env(), cwd=REPO_ROOT,
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        raise AssertionError(
            f"suggest-dir exited {proc.returncode}:\n{proc.stderr}")
    return proc.stdout


def check_killed_worker_identity(corpus: Path, bundle: str,
                                 work: Path) -> None:
    clean, faulted = work / "clean.json", work / "faulted.json"
    run_suggest(corpus, bundle, clean)
    run_suggest(corpus, bundle, faulted, faults=KILL_PLAN)
    if clean.read_bytes() != faulted.read_bytes():
        raise AssertionError(
            "killed-worker run diverged from the fault-free run")
    print("killed worker: output byte-identical after recovery")


def check_poison_quarantine(corpus: Path, bundle: str,
                            work: Path) -> None:
    # the fault's `match` is a substring test on the full served path,
    # so the directory name must not itself contain "poison"
    poisoned = work / "chaos-corpus"
    shutil.copytree(corpus, poisoned)
    victim = sorted(poisoned.glob("*.c"))[0]
    (poisoned / "poison_me.c").write_text(victim.read_text())

    clean_ndjson = run_suggest(poisoned, bundle, work / "p-clean.json",
                               stream=True)
    faulted_ndjson = run_suggest(poisoned, bundle, work / "p-fault.json",
                                 faults=POISON_PLAN, stream=True)

    def records(ndjson: str) -> dict:
        out = {}
        for line in ndjson.splitlines():
            rec = json.loads(line)
            if rec.get("event") == "done":
                continue
            # stream records carry the path as given; key by basename
            # so clean and faulted runs compare regardless of cwd
            out[Path(rec["file"]).name] = rec
        return out

    clean, faulted = records(clean_ndjson), records(faulted_ndjson)
    poison = faulted.get("poison_me.c")
    if poison is None or poison.get("event") != "error" or \
            poison.get("code") != "quarantined":
        raise AssertionError(
            f"poison file was not quarantined: {poison!r}")
    for name, rec in clean.items():
        if name == "poison_me.c":
            continue
        if faulted.get(name) != rec:
            raise AssertionError(
                f"innocent file {name} diverged under the poison run")
    print(f"poison quarantine: poison_me.c -> quarantined record, "
          f"{len(clean) - 1} innocents byte-identical")


def start_daemon(bundle: str, sock: Path, cache_dir: str,
                 ready_file: Path) -> subprocess.Popen:
    # round-files 1: replies stream incrementally, so a SIGKILL can
    # land mid-batch instead of between replies
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--unix", str(sock), "--bundle", bundle,
         "--cache-dir", cache_dir, "--round-files", "1",
         "--ready-file", str(ready_file)],
        env=_env(), cwd=REPO_ROOT)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if ready_file.exists() and ready_file.read_text().strip():
            return proc
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with {proc.returncode}")
        time.sleep(0.2)
    proc.kill()
    raise RuntimeError("daemon never became ready")


def check_daemon_restart(corpus: Path, bundle: str, work: Path) -> None:
    named = [(p.name, p.read_text(encoding="utf-8"))
             for p in sorted(corpus.glob("*.c"))]
    sock = work / "serve.sock"
    first = start_daemon(bundle, sock, str(work / "cache-a"),
                         work / "ready-a")
    replacement = None
    client = None
    try:
        client = connect(
            f"unix:{sock}", timeout=60.0,
            retry=RetryPolicy(max_attempts=30, base_delay_s=0.1))
        stream = client.stream_sources(named, ordered=True)
        got = [next(stream)]
        # kill -9 mid-reply, then stand the replacement up on the same
        # socket; the client's RetryPolicy reconnects and re-issues,
        # and seen-index dedup keeps delivery exactly-once
        first.kill()
        first.wait(timeout=30)
        replacement = start_daemon(bundle, sock, str(work / "cache-b"),
                                   work / "ready-b")
        got.extend(stream)
        names = [fs.name for fs in got]
        if names != [name for name, _ in named]:
            raise AssertionError(
                f"restart broke exactly-once delivery: {names}")
        bad = [fs.name for fs in got if fs.error is not None]
        if bad:
            raise AssertionError(
                f"files errored across the restart: {bad}")
        print(f"daemon restart: client completed {len(named)} files "
              f"exactly once across a SIGKILL")
    finally:
        if client is not None:
            client.close()
        for proc in (first, replacement):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--bundle", required=True,
                        help="trained bundle directory or archive")
    parser.add_argument("--corpus", default=str(REPO_ROOT / "examples"
                                                / "corpus"),
                        help="directory of C files to serve")
    args = parser.parse_args(argv)

    corpus = Path(args.corpus)
    if not sorted(corpus.glob("*.c")):
        raise SystemExit(f"no .c files under {args.corpus}")

    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)
        check_killed_worker_identity(corpus, args.bundle, work)
        check_poison_quarantine(corpus, args.bundle, work)
        check_daemon_restart(corpus, args.bundle, work)
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
