"""The staged, worker-sharded, streaming suggestion pipeline.

Per-loop serving costs ``L×(C+1)`` single-graph forward passes for L
loops and C clause families, each preceded by its own parse + graph
build + encode.  :class:`SuggestionService` restructures that into

1. a (optionally multiprocess) parse stage over whole files,
2. one encode per distinct loop source per vocabulary — models that
   agree on (representation, vocab content) share an
   :class:`~repro.graphs.encode.EncodeCache`,
3. one block-diagonal ``collate`` + forward per model for the whole
   workload (chunked at ``batch_size`` graphs for memory),
4. a fan-out back to per-file :class:`FileSuggestions`.

Corpora additionally shard end-to-end: ``stream_sources`` with
``shards > 1`` partitions the workload by file size
(:mod:`repro.serve.plan`), runs the whole parse → encode → forward →
fan-out pipeline *locally* inside each worker process
(:mod:`repro.serve.worker`), and yields per-file results as they stream
back over the result queue (:mod:`repro.serve.stream`) — in input
order or as completed.  ``suggest_sources`` / ``suggest_dir`` are thin
collecting wrappers over the stream.

A :class:`~repro.serve.store.SuggestionStore` extends the caching
across processes: finished per-file suggestions (keyed by content hash
and model fingerprint) short-circuit the whole pipeline, cached parse
results skip the frontend even when the models changed, and every
shard worker consults/commits the same store.

Predictions are identical to the per-loop path: batching, caching and
sharding only change how much work is shared, never a graph's own
numbers.
"""

from __future__ import annotations

import inspect
from collections.abc import Iterator
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.serve.parse import ParsedFile, parse_many
from repro.serve.store import SuggestionStore, content_key, open_store
from repro.suggest import LoopRequest, PragmaSuggester, Suggestion


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving pipeline."""

    workers: int = 1          # parse-stage processes (1 = in-process)
    batch_size: int = 256     # graphs per collate in the forward pass
    cache_entries: int = 4096  # per-vocab encode-cache capacity
    #: end-to-end corpus shards; 1 = in-process, "auto" (or 0) picks a
    #: count from corpus stats and CPU count (1 CPU stays in-process)
    shards: int | str = 1
    #: shard supervision: worker deaths tolerated per retry lineage
    #: before the remaining files are emitted as ``worker-retry`` error
    #: records instead of respawning again
    max_retries: int = 3
    #: seconds of worker silence (no results, beats, or claims) before
    #: the supervisor presumes it hung, kills it, and requeues its work
    heartbeat_s: float = 30.0
    #: base of the exponential respawn backoff (doubles per death)
    retry_backoff_s: float = 0.05


@dataclass
class FileSuggestions:
    """All suggestions for one file (or its frontend error)."""

    name: str
    suggestions: list[Suggestion] = field(default_factory=list)
    error: str | None = None

    @property
    def n_parallel(self) -> int:
        return sum(s.parallel for s in self.suggestions)

    def to_payload(self) -> dict:
        """JSON-safe payload (minus the name: the store keys on
        content, and the same content may live under many names)."""
        return {
            "error": self.error,
            "suggestions": [s.to_dict() for s in self.suggestions],
        }

    @classmethod
    def from_payload(cls, name: str, payload: dict) -> "FileSuggestions":
        return cls(
            name=name,
            suggestions=[Suggestion.from_dict(d)
                         for d in payload["suggestions"]],
            error=payload["error"],
        )


def _revive(cls, name: str, payload: dict):
    """``cls.from_payload`` with store semantics: entries that don't
    match the expected shape (same-version schema drift, hand edits)
    degrade to cache misses, never abort the run."""
    try:
        return cls.from_payload(name, payload)
    except (KeyError, TypeError, AttributeError):
        return None


def _model_fingerprint(model, require: bool = False) -> str:
    """Identity string for the persistent store's model key.

    With ``require`` (a persistent store is configured), a model
    without ``fingerprint()`` is an error: falling back to its class
    name would hand retrained weights another model's cached
    suggestions.
    """
    fp = getattr(model, "fingerprint", None)
    if callable(fp):
        return fp()
    if require:
        raise ValueError(
            f"{type(model).__qualname__} exposes no fingerprint(); a "
            f"persistent SuggestionStore needs one to invalidate cached "
            f"suggestions when models change"
        )
    return f"{type(model).__module__}.{type(model).__qualname__}"


class _CountingModel:
    """``predict_samples`` pass-through that counts model forwards."""

    def __init__(self, model, forwards: dict) -> None:
        self.model = model
        self.forwards = forwards

    def predict_samples(self, samples):
        self.forwards["calls"] += 1
        self.forwards["graphs"] += len(samples)
        return self.model.predict_samples(samples)


class _BatchedGraphModel:
    """``predict_samples`` adapter: shared encode cache + pre-encoded
    batched forward, replacing the model's own parse/encode-per-call
    path on the serving hot loop.  ``collate_cache`` is shared across
    all models of one service, so the clause models (which see the
    same predicted-parallel subset) reuse one collated batch."""

    def __init__(self, model, cache, batch_size: int,
                 collate_cache: dict, forwards: dict) -> None:
        self.model = model
        self.cache = cache
        self.batch_size = batch_size
        self.forwards = forwards
        # Probe once whether the model's predict_encoded can share
        # collated batches; catching TypeError per call would mask
        # genuine type bugs inside prediction.
        try:
            supports = "collate_cache" in inspect.signature(
                model.predict_encoded).parameters
        except (TypeError, ValueError):
            supports = False
        self.collate_cache = collate_cache if supports else None

    def predict_samples(self, samples):
        graphs = [
            self.cache.encode_loop(s.source, loop=s.ast()) for s in samples
        ]
        self.forwards["calls"] += 1
        self.forwards["graphs"] += len(graphs)
        if self.collate_cache is not None:
            return self.model.predict_encoded(
                graphs, batch_size=self.batch_size,
                collate_cache=self.collate_cache,
            )
        return self.model.predict_encoded(graphs,
                                          batch_size=self.batch_size)


class SuggestionService:
    """Batched, cached pragma suggestion over files and directories.

    ``parallel_model`` / ``clause_models`` follow the same contract as
    :class:`~repro.suggest.PragmaSuggester`.  Models additionally
    exposing ``predict_encoded`` / ``encode_cache`` / ``encoder_key``
    (:class:`~repro.eval.context.TrainedGraphModel` does) are routed
    through shared encode caches; anything else still gets one batched
    ``predict_samples`` call per model.

    ``store`` plugs in a persistent :class:`SuggestionStore`: files
    whose (content hash, model fingerprint) already have stored
    suggestions skip parsing *and* inference entirely, and cached
    parse results survive model swaps.

    ``bundle_path`` names the on-disk bundle the models were loaded
    from (when there is one): shard workers then reload the artifact
    themselves instead of receiving pickled weights, which keeps the
    spawn payload tiny.
    """

    def __init__(self, parallel_model, clause_models: dict,
                 config: ServeConfig | None = None,
                 store: SuggestionStore | None = None,
                 bundle_path: str | Path | None = None) -> None:
        self.config = config or ServeConfig()
        self.store = store
        self._model_key = self._compute_model_key(
            parallel_model, clause_models, require=store is not None,
        )
        self._source_models = (parallel_model, dict(clause_models))
        self._bundle_path = (None if bundle_path is None
                             else str(bundle_path))
        self._caches: dict[tuple, object] = {}
        self._collate_cache: dict = {}
        self._forwards = {"calls": 0, "graphs": 0}
        self._coalesce = {"rounds": 0, "requests": 0, "deduped_files": 0}
        self._verify_stats = {"simulations": 0, "compiled_runs": 0,
                              "interpreted_runs": 0,
                              "cached_verdicts": 0, "elapsed_s": 0.0}
        self.suggester = PragmaSuggester(
            self._wrap(parallel_model),
            {name: self._wrap(m) for name, m in clause_models.items()},
        )

    @staticmethod
    def _compute_model_key(parallel_model, clause_models: dict,
                           require: bool = False) -> str:
        import hashlib

        parts = [_model_fingerprint(parallel_model, require)] + [
            f"{name}:{_model_fingerprint(model, require)}"
            for name, model in sorted(clause_models.items())
        ]
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]

    def _wrap(self, model):
        if not all(
            hasattr(model, attr)
            for attr in ("predict_encoded", "encode_cache", "encoder_key")
        ):
            return _CountingModel(model, self._forwards)
        key = model.encoder_key()
        cache = self._caches.get(key)
        if cache is None:
            cache = model.encode_cache(max_entries=self.config.cache_entries)
            self._caches[key] = cache
        return _BatchedGraphModel(model, cache, self.config.batch_size,
                                  self._collate_cache, self._forwards)

    # -- streaming core ------------------------------------------------------

    def iter_sources(
        self, named_sources: list[tuple[str, str]],
    ) -> Iterator[tuple[int, FileSuggestions]]:
        """Yield ``(input_index, FileSuggestions)`` as files complete.

        Completion order inside one workload: store-cached files first
        (they skip the whole pipeline and cost one disk read each),
        then computed files in input order once the shared batched
        forward has run.  This is the in-process streaming core that
        both the collecting wrappers and the shard workers drive.
        """
        named = list(named_sources)
        store = self.store
        keys = ([content_key(source) for _, source in named]
                if store is not None else [])
        pending: list[int] = []
        for i, (name, _) in enumerate(named):
            fs = None
            if store is not None:
                payload = store.get_suggestions(self._model_key, keys[i])
                if payload is not None:
                    fs = _revive(FileSuggestions, name, payload)
            if fs is not None:
                yield i, fs
            else:
                pending.append(i)

        # parse stage: store-cached parses first, frontend for the rest
        parsed_by_index: dict[int, ParsedFile] = {}
        to_parse = pending
        if store is not None:
            to_parse = []
            for i in pending:
                payload = store.get_parse(keys[i])
                revived = (None if payload is None else
                           _revive(ParsedFile, named[i][0], payload))
                if revived is not None:
                    parsed_by_index[i] = revived
                else:
                    to_parse.append(i)
        fresh = parse_many([named[i] for i in to_parse],
                           workers=self.config.workers)
        for i, pf in zip(to_parse, fresh):
            parsed_by_index[i] = pf
            if store is not None:
                store.put_parse(keys[i], pf.to_payload())

        parsed = [parsed_by_index[i] for i in pending]
        spans: list[tuple[int, int]] = []
        flat: list[LoopRequest] = []
        for pf in parsed:
            spans.append((len(flat), len(flat) + len(pf.requests)))
            flat.extend(pf.requests)
        # Collate sharing is per-workload: ``id()`` keys must not outlive
        # the graphs they describe.
        self._collate_cache.clear()
        suggestions = self.suggester.suggest_batch(flat) if flat else []
        self._collate_cache.clear()
        for i, pf, (lo, hi) in zip(pending, parsed, spans):
            fs = FileSuggestions(name=pf.name,
                                 suggestions=suggestions[lo:hi],
                                 error=pf.error)
            if store is not None:
                store.put_suggestions(self._model_key, keys[i],
                                      fs.to_payload())
            yield i, fs

    def iter_joint(
        self, workloads: list[tuple[object, list[tuple[str, str]]]],
    ) -> Iterator[tuple[object, int, FileSuggestions]]:
        """Coalesce many tagged workloads into one pipeline pass.

        ``workloads`` is a list of ``(tag, named_sources)`` pairs — one
        per admitted client request (the network server's micro-batcher
        is the canonical caller).  Yields ``(tag, index,
        FileSuggestions)`` in completion order, where ``index`` is the
        file's position inside that tag's *own* ``named_sources``.

        This generalises the fan-out key from (request, file) to
        (client, request, file): files with identical *content* across
        different clients' requests are parsed, encoded and forwarded
        exactly once — one warm block-diagonal forward answers every
        client — and the per-(tag, index) fan-out re-labels the shared
        result with each request's own file name.  Per-file results are
        byte-identical to serving each workload alone: batching only
        changes how much work is shared, never a file's own numbers.
        """
        distinct: list[tuple[str, str]] = []
        first_seen: dict[str, int] = {}
        subscribers: dict[int, list[tuple[object, int, str]]] = {}
        total_files = 0
        for tag, named in workloads:
            for i, (name, source) in enumerate(named):
                total_files += 1
                di = first_seen.get(source)
                if di is None:
                    di = len(distinct)
                    first_seen[source] = di
                    distinct.append((name, source))
                subscribers.setdefault(di, []).append((tag, i, name))
        self._coalesce["rounds"] += 1
        self._coalesce["requests"] += len(workloads)
        self._coalesce["deduped_files"] += total_files - len(distinct)
        for di, fs in self.iter_sources(distinct):
            for tag, i, name in subscribers[di]:
                out = fs if fs.name == name else FileSuggestions(
                    name=name, suggestions=fs.suggestions, error=fs.error)
                yield tag, i, out

    def stream_tagged(
        self, named_sources: list[tuple[str, str]], *,
        shards: int | str | None = None,
    ) -> Iterator[tuple[int, FileSuggestions]]:
        """``(input_index, FileSuggestions)`` pairs in completion order.

        The index-tagged core under :meth:`stream_sources`, exposed for
        consumers that need to know *which* input each result answers
        while still observing completion order — the network server
        forwards these tags to its clients verbatim.  ``shards``
        follows the same rules as :meth:`stream_sources`.
        """
        from repro.serve.plan import resolve_shards
        from repro.serve.stream import stream_shards

        named = list(named_sources)
        n_shards = resolve_shards(
            self.config.shards if shards is None else shards, named)
        if n_shards > 1 and len(named) > 1:
            return stream_shards(
                self._worker_spec(), named, n_shards,
                on_stats=self._absorb_worker_stats,
            )
        return self.iter_sources(named)

    def stream_sources(
        self, named_sources: list[tuple[str, str]], *,
        ordered: bool = True, shards: int | str | None = None,
    ) -> Iterator[FileSuggestions]:
        """Stream suggestions for many ``(name, source)`` pairs.

        ``shards > 1`` partitions the corpus by file size and runs the
        entire pipeline inside that many worker processes, each
        committing to the shared persistent store and streaming
        finished files back as they complete; ``shards`` defaults to
        the service config, and ``"auto"`` (or ``0``) picks a count
        from corpus statistics and the CPU count — falling back to
        in-process on a single CPU, where forked workers only add
        overhead.  ``ordered=True`` re-interleaves results
        into input order (buffering out-of-order arrivals);
        ``ordered=False`` yields in completion order for lowest
        first-result latency.  Suggestions are byte-identical across
        shard counts and orderings.
        """
        from repro.serve.stream import merge_results

        return merge_results(self.stream_tagged(named_sources,
                                                shards=shards),
                             ordered=ordered)

    def stream_paths(self, paths, *, ordered: bool = True,
                     shards: int | None = None,
                     ) -> Iterator[FileSuggestions]:
        named = [
            (str(path), Path(path).read_text(encoding="utf-8"))
            for path in paths
        ]
        return self.stream_sources(named, ordered=ordered, shards=shards)

    def stream_dir(self, directory, pattern: str = "*.c", *,
                   ordered: bool = True, shards: int | None = None,
                   ) -> Iterator[FileSuggestions]:
        """Stream suggestions for every ``pattern`` file under
        ``directory`` as they complete."""
        paths = sorted(Path(directory).rglob(pattern))
        return self.stream_paths(paths, ordered=ordered, shards=shards)

    # -- collecting wrappers -------------------------------------------------

    def suggest_sources(
        self, named_sources: list[tuple[str, str]],
    ) -> list[FileSuggestions]:
        """Suggestions for many ``(name, source)`` pairs at once.

        Collects :meth:`stream_sources` in input order.  All loops of
        all files needing compute go through one ``suggest_batch`` call
        per shard, so every model runs a single batched forward for the
        whole workload.  With a persistent store, files with cached
        suggestions never reach the parse stage, and files with cached
        parses never reach the frontend.
        """
        return list(self.stream_sources(named_sources, ordered=True))

    def suggest_paths(self, paths) -> list[FileSuggestions]:
        return list(self.stream_paths(paths, ordered=True))

    def suggest_dir(self, directory, pattern: str = "*.c",
                    ) -> list[FileSuggestions]:
        """Suggestions for every ``pattern`` file under ``directory``."""
        return list(self.stream_dir(directory, pattern=pattern,
                                    ordered=True))

    # -- rewriting -----------------------------------------------------------

    def iter_rewrites(
        self, named_sources: list[tuple[str, str]], *,
        verify: bool = True, rewrite_config=None,
    ) -> Iterator[tuple[int, "FileRewrite"]]:
        """In-process rewrite core: suggestions off :meth:`iter_sources`
        applied as verified AST rewrites the moment they complete, with
        the persistent verdict layer and this service's verifier
        counters threaded through.  Shard workers drive this directly.
        """
        from repro.rewrite import rewrite_file

        named = list(named_sources)
        for i, fs in self.iter_sources(named):
            yield i, rewrite_file(named[i][0], named[i][1], fs,
                                  verify=verify, config=rewrite_config,
                                  store=self.store,
                                  stats=self._verify_stats)

    def stream_rewrite_tagged(
        self, named_sources: list[tuple[str, str]], *,
        verify: bool = True, shards: int | str | None = None,
        rewrite_config=None,
    ) -> Iterator[tuple[int, "FileRewrite"]]:
        """``(input_index, FileRewrite)`` pairs in completion order.

        Each file's suggestions come off the same store/dedup path as
        plain suggesting — cached suggestions still skip parse and
        inference, cached verdicts skip simulation — and are applied as
        verified AST rewrites the moment they complete.  With
        ``shards > 1`` the *whole* pipeline including verification runs
        inside the shard workers, so verification distributes across
        processes too.  The rewrite pass is deterministic, so results
        are byte-identical across shard counts, orderings, and the
        daemon path.
        """
        from repro.rewrite import FileRewrite
        from repro.serve.plan import resolve_shards
        from repro.serve.stream import stream_shards

        named = list(named_sources)
        n_shards = resolve_shards(
            self.config.shards if shards is None else shards, named)
        if n_shards > 1 and len(named) > 1:
            return stream_shards(
                self._worker_spec(mode="rewrite", verify=verify,
                                  verify_config=rewrite_config),
                named, n_shards,
                on_stats=self._absorb_worker_stats,
                revive=FileRewrite.from_payload,
            )
        return self.iter_rewrites(named, verify=verify,
                                  rewrite_config=rewrite_config)

    def stream_rewrite_sources(
        self, named_sources: list[tuple[str, str]], *,
        ordered: bool = True, verify: bool = True,
        shards: int | str | None = None,
    ) -> Iterator["FileRewrite"]:
        """Stream verified rewrites for many ``(name, source)`` pairs."""
        from repro.serve.stream import merge_results

        return merge_results(
            self.stream_rewrite_tagged(named_sources, verify=verify,
                                       shards=shards),
            ordered=ordered)

    def stream_rewrite_paths(self, paths, *, ordered: bool = True,
                             verify: bool = True,
                             shards: int | None = None):
        named = [
            (str(path), Path(path).read_text(encoding="utf-8"))
            for path in paths
        ]
        return self.stream_rewrite_sources(named, ordered=ordered,
                                           verify=verify, shards=shards)

    def stream_rewrite_dir(self, directory, pattern: str = "*.c", *,
                           ordered: bool = True, verify: bool = True,
                           shards: int | None = None):
        """Stream rewrites for every ``pattern`` file under
        ``directory`` as they complete."""
        paths = sorted(Path(directory).rglob(pattern))
        return self.stream_rewrite_paths(paths, ordered=ordered,
                                         verify=verify, shards=shards)

    def rewrite_sources(self, named_sources: list[tuple[str, str]], *,
                        verify: bool = True) -> list["FileRewrite"]:
        """Verified rewrites for many ``(name, source)`` pairs,
        collected in input order."""
        return list(self.stream_rewrite_sources(named_sources,
                                                ordered=True,
                                                verify=verify))

    def rewrite_paths(self, paths, *, verify: bool = True,
                      ) -> list["FileRewrite"]:
        return list(self.stream_rewrite_paths(paths, ordered=True,
                                              verify=verify))

    def rewrite_dir(self, directory, pattern: str = "*.c", *,
                    verify: bool = True) -> list["FileRewrite"]:
        """Verified rewrites for every ``pattern`` file under
        ``directory``."""
        return list(self.stream_rewrite_dir(directory, pattern=pattern,
                                            ordered=True, verify=verify))

    # -- sharding support ----------------------------------------------------

    def _worker_spec(self, mode: str = "suggest", verify: bool = True,
                     verify_config=None):
        """Picklable recipe for rebuilding this service in a worker."""
        from repro.serve.worker import WorkerSpec

        store_root = None if self.store is None else str(self.store.base)
        parallel, clause_models = self._source_models
        return WorkerSpec(
            # shard workers are daemonic: they can neither re-shard nor
            # host a nested parse pool, and sharding already owns the
            # process-level parallelism
            config=replace(self.config, shards=1, workers=1),
            store_root=store_root,
            bundle_path=self._bundle_path,
            models=(None if self._bundle_path is not None
                    else (parallel, clause_models)),
            clauses=tuple(sorted(clause_models)),
            mode=mode,
            verify=verify,
            verify_config=verify_config,
        )

    def _absorb_worker_stats(self, stats: dict) -> None:
        """Fold one shard worker's ``cache_stats()`` into this service,
        so forward counts, verifier counters and store hit rates stay
        meaningful when the pipeline ran in child processes."""
        forwards = stats.get("forwards") or {}
        self._forwards["calls"] += int(forwards.get("calls", 0))
        self._forwards["graphs"] += int(forwards.get("graphs", 0))
        verify_stats = stats.get("verify") or {}
        for key in self._verify_stats:
            value = verify_stats.get(key, 0)
            self._verify_stats[key] += (float(value)
                                        if key == "elapsed_s"
                                        else int(value))
        store_stats = stats.get("store")
        if self.store is not None and store_stats:
            for attr in ("parse_hits", "parse_misses",
                         "suggest_hits", "suggest_misses",
                         "verdict_hits", "verdict_misses",
                         "write_errors"):
                setattr(self.store, attr,
                        getattr(self.store, attr)
                        + int(store_stats.get(attr, 0)))

    # -- introspection -------------------------------------------------------

    def cache_stats(self) -> dict:
        """Hit/miss/entry counts per shared encode cache, model-forward
        totals, and (when configured) persistent-store hit rates."""
        stats = {
            f"{key[0]}#{i}": cache.stats()
            for i, (key, cache) in enumerate(sorted(
                self._caches.items(), key=lambda kv: kv[0][0],
            ))
        }
        stats["forwards"] = dict(self._forwards)
        stats["coalesce"] = dict(self._coalesce)
        stats["verify"] = dict(self._verify_stats)
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats


#: clause families a context-backed service trains by default
DEFAULT_CLAUSES = ("reduction", "private", "simd", "target")


def build_service(source, config: ServeConfig | None = None,
                  clauses: tuple[str, ...] | None = None,
                  cache_dir: str | Path | None = None,
                  ) -> SuggestionService:
    """A service over trained aug-AST suggester models.

    ``source`` is either an
    :class:`~repro.eval.context.ExperimentContext` (models train on
    first use) or a loaded
    :class:`~repro.artifacts.SuggesterBundle` (zero training steps).
    ``clauses`` selects the clause families to serve; ``None`` means
    :data:`DEFAULT_CLAUSES` for a context and everything the bundle
    ships for a bundle (asking a bundle for a family it lacks is an
    error).  ``cache_dir`` adds a persistent :class:`SuggestionStore`
    so warm runs over unchanged files skip parsing and inference
    entirely.  A ``cache_dir`` of the form ``net:HOST:PORT`` mounts a
    remote daemon's store instead of a local directory
    (:func:`~repro.serve.store.open_store`).
    """
    store = open_store(cache_dir) if cache_dir is not None else None
    bundle_path = None
    if hasattr(source, "graph_model"):
        parallel = source.graph_model(representation="aug", task="parallel")
        clause_models = {
            clause: source.graph_model(representation="aug", task=clause)
            for clause in (DEFAULT_CLAUSES if clauses is None else clauses)
        }
    else:
        parallel = source.parallel
        # A bundle loaded from disk records where: shard workers then
        # reload the artifact instead of receiving pickled weights.
        bundle_path = getattr(source, "source_path", None)
        if clauses is None:
            clause_models = dict(source.clause_models)
        else:
            absent = [c for c in clauses if c not in source.clause_models]
            if absent:
                raise ValueError(
                    f"bundle has no clause model(s) {absent}; "
                    f"available: {sorted(source.clause_models)}"
                )
            clause_models = {c: source.clause_models[c] for c in clauses}
    return SuggestionService(parallel, clause_models, config, store=store,
                             bundle_path=bundle_path)
