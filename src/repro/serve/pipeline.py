"""The batched suggestion pipeline.

Per-loop serving costs ``L×(C+1)`` single-graph forward passes for L
loops and C clause families, each preceded by its own parse + graph
build + encode.  :class:`SuggestionService` restructures that into

1. a (optionally multiprocess) parse stage over whole files,
2. one encode per distinct loop source per vocabulary — models that
   agree on (representation, vocab content) share an
   :class:`~repro.graphs.encode.EncodeCache`,
3. one block-diagonal ``collate`` + forward per model for the whole
   workload (chunked at ``batch_size`` graphs for memory),
4. a fan-out back to per-file :class:`FileSuggestions`.

Predictions are identical to the per-loop path: batching only changes
how many graphs share a forward pass, never a graph's own numbers.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve.parse import parse_many
from repro.suggest import LoopRequest, PragmaSuggester, Suggestion


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving pipeline."""

    workers: int = 1          # parse-stage processes (1 = in-process)
    batch_size: int = 256     # graphs per collate in the forward pass
    cache_entries: int = 4096  # per-vocab encode-cache capacity


@dataclass
class FileSuggestions:
    """All suggestions for one file (or its frontend error)."""

    name: str
    suggestions: list[Suggestion] = field(default_factory=list)
    error: str | None = None

    @property
    def n_parallel(self) -> int:
        return sum(s.parallel for s in self.suggestions)


class _BatchedGraphModel:
    """``predict_samples`` adapter: shared encode cache + pre-encoded
    batched forward, replacing the model's own parse/encode-per-call
    path on the serving hot loop.  ``collate_cache`` is shared across
    all models of one service, so the clause models (which see the
    same predicted-parallel subset) reuse one collated batch."""

    def __init__(self, model, cache, batch_size: int,
                 collate_cache: dict) -> None:
        self.model = model
        self.cache = cache
        self.batch_size = batch_size
        # Probe once whether the model's predict_encoded can share
        # collated batches; catching TypeError per call would mask
        # genuine type bugs inside prediction.
        try:
            supports = "collate_cache" in inspect.signature(
                model.predict_encoded).parameters
        except (TypeError, ValueError):
            supports = False
        self.collate_cache = collate_cache if supports else None

    def predict_samples(self, samples):
        graphs = [
            self.cache.encode_loop(s.source, loop=s.ast()) for s in samples
        ]
        if self.collate_cache is not None:
            return self.model.predict_encoded(
                graphs, batch_size=self.batch_size,
                collate_cache=self.collate_cache,
            )
        return self.model.predict_encoded(graphs,
                                          batch_size=self.batch_size)


class SuggestionService:
    """Batched, cached pragma suggestion over files and directories.

    ``parallel_model`` / ``clause_models`` follow the same contract as
    :class:`~repro.suggest.PragmaSuggester`.  Models additionally
    exposing ``predict_encoded`` / ``encode_cache`` / ``encoder_key``
    (:class:`~repro.eval.context.TrainedGraphModel` does) are routed
    through shared encode caches; anything else still gets one batched
    ``predict_samples`` call per model.
    """

    def __init__(self, parallel_model, clause_models: dict,
                 config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self._caches: dict[tuple, object] = {}
        self._collate_cache: dict = {}
        self.suggester = PragmaSuggester(
            self._wrap(parallel_model),
            {name: self._wrap(m) for name, m in clause_models.items()},
        )

    def _wrap(self, model):
        if not all(
            hasattr(model, attr)
            for attr in ("predict_encoded", "encode_cache", "encoder_key")
        ):
            return model
        key = model.encoder_key()
        cache = self._caches.get(key)
        if cache is None:
            cache = model.encode_cache(max_entries=self.config.cache_entries)
            self._caches[key] = cache
        return _BatchedGraphModel(model, cache, self.config.batch_size,
                                  self._collate_cache)

    # -- entry points --------------------------------------------------------

    def suggest_sources(
        self, named_sources: list[tuple[str, str]],
    ) -> list[FileSuggestions]:
        """Suggestions for many ``(name, source)`` pairs at once.

        All loops of all files go through one ``suggest_batch`` call, so
        every model runs a single batched forward for the whole workload.
        """
        parsed = parse_many(named_sources, workers=self.config.workers)
        spans: list[tuple[int, int]] = []
        flat: list[LoopRequest] = []
        for pf in parsed:
            spans.append((len(flat), len(flat) + len(pf.requests)))
            flat.extend(pf.requests)
        # Collate sharing is per-workload: ``id()`` keys must not outlive
        # the graphs they describe.
        self._collate_cache.clear()
        suggestions = self.suggester.suggest_batch(flat) if flat else []
        self._collate_cache.clear()
        return [
            FileSuggestions(name=pf.name, suggestions=suggestions[lo:hi],
                            error=pf.error)
            for pf, (lo, hi) in zip(parsed, spans)
        ]

    def suggest_paths(self, paths) -> list[FileSuggestions]:
        named = [
            (str(path), Path(path).read_text(encoding="utf-8"))
            for path in paths
        ]
        return self.suggest_sources(named)

    def suggest_dir(self, directory, pattern: str = "*.c",
                    ) -> list[FileSuggestions]:
        """Suggestions for every ``pattern`` file under ``directory``."""
        paths = sorted(Path(directory).rglob(pattern))
        return self.suggest_paths(paths)

    # -- introspection -------------------------------------------------------

    def cache_stats(self) -> dict:
        """Hit/miss/entry counts per shared encode cache."""
        return {
            f"{key[0]}#{i}": cache.stats()
            for i, (key, cache) in enumerate(sorted(
                self._caches.items(), key=lambda kv: kv[0][0],
            ))
        }


def build_service(context, config: ServeConfig | None = None,
                  clauses: tuple[str, ...] = ("reduction", "private",
                                              "simd", "target"),
                  ) -> SuggestionService:
    """A service over one :class:`~repro.eval.context.ExperimentContext`'s
    trained aug-AST models (training them on first use)."""
    parallel = context.graph_model(representation="aug", task="parallel")
    clause_models = {
        clause: context.graph_model(representation="aug", task=clause)
        for clause in clauses
    }
    return SuggestionService(parallel, clause_models, config)
