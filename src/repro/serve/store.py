"""Persistent (cross-process) caches for the suggestion service.

The in-memory :class:`~repro.graphs.encode.EncodeCache` dies with the
process; this store survives it.  Three layers, all content-keyed
(renames stay warm, edits invalidate exactly the entries they touch):

``parse/``
    extracted loop requests per file, keyed by the SHA-256 of the
    file's content — model-independent, so a new bundle still reuses
    the expensive pure-python frontend work.
``suggest/<model_key>/``
    finished per-file suggestions, additionally keyed by the serving
    models' fingerprint so retrained or swapped models never replay
    stale advice.
``verdict/``
    verification outcomes per loop, keyed by
    :func:`repro.rewrite.verify.verdict_key` — the SHA-256 of (loop
    source, clause plan, verify-config fingerprint, verifier version).
    A warm ``rewrite-dir`` run replays verdicts instead of simulating;
    any change to the loop, the plan, the budgets, or the verifier
    itself changes the key, so stale verdicts can never gate a rewrite.

Layout: ``<root>/v<STORE_VERSION>/{parse,suggest/<model_key>,verdict}/
<sha>.json``.
Writes go through a temp file + :func:`os.replace`, so concurrent
writers (the multiprocess parse stage, parallel ``suggest-dir`` runs
over one cache) can only ever observe complete entries; unreadable or
torn entries degrade to cache misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

from repro.serve import faults

#: bump when cached payload shapes change incompatibly
STORE_VERSION = 1


def content_key(source: str) -> str:
    """Cache key of one file: SHA-256 over its exact content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def open_store(spec: "str | Path"):
    """A store for ``spec``: a directory path, or ``net:ADDR``.

    ``net:HOST:PORT`` / ``net:unix:/path.sock`` open a
    :class:`~repro.fabric.netstore.NetworkStore` speaking the store
    operations of the wire protocol against a ``repro serve`` daemon —
    same get/put/gc/fsck contract, shared fleet-wide.  Anything else
    is a local on-disk root.  Every ``--cache-dir`` surface (services,
    shard workers, ``repro cache``) resolves through here, so a worker
    respawned from a :class:`~repro.serve.worker.WorkerSpec` re-opens
    whichever backend its parent used.
    """
    text = str(spec)
    if text.startswith("net:"):
        from repro.fabric.netstore import NetworkStore

        return NetworkStore(text[len("net:"):])
    return SuggestionStore(spec)


class SuggestionStore:
    """Disk-backed parse + suggestion cache rooted at ``root``."""

    def __init__(self, root: str | Path) -> None:
        #: the user-facing root; shard workers re-open the store from it
        self.base = Path(root)
        self.root = self.base / f"v{STORE_VERSION}"
        self.parse_hits = 0
        self.parse_misses = 0
        self.suggest_hits = 0
        self.suggest_misses = 0
        self.verdict_hits = 0
        self.verdict_misses = 0
        self.write_errors = 0

    # -- paths ---------------------------------------------------------------

    def _parse_path(self, key: str) -> Path:
        return self.root / "parse" / f"{key}.json"

    def _suggest_path(self, model_key: str, key: str) -> Path:
        return self.root / "suggest" / model_key / f"{key}.json"

    def _verdict_path(self, key: str) -> Path:
        return self.root / "verdict" / f"{key}.json"

    # -- raw IO --------------------------------------------------------------

    @staticmethod
    def _read(path: Path) -> dict | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _write(self, path: Path, payload: dict) -> None:
        """Atomically persist one entry; write failures degrade.

        The cache is an accelerator, not the product: a full disk or a
        permission flip must never abort a serving run, so any
        ``OSError`` on the write path is swallowed and counted in
        ``write_errors`` (the entry simply stays a miss).  The fault
        hook injects exactly those failures — an aborted write, or a
        *torn* entry at the final path, the state a crash between
        write and rename leaves for ``fsck`` to reclaim.
        """
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            action = faults.on_store_write(str(path))
            if action == "abort":
                raise OSError(f"injected write abort for {path}")
            data = json.dumps(payload)
            if action == "tear":
                data = data[: max(1, len(data) // 3)]
            fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.write_errors += 1

    # -- parse layer ---------------------------------------------------------

    def get_parse(self, key: str) -> dict | None:
        payload = self._read(self._parse_path(key))
        if payload is None:
            self.parse_misses += 1
        else:
            self.parse_hits += 1
        return payload

    def put_parse(self, key: str, payload: dict) -> None:
        self._write(self._parse_path(key), payload)

    # -- suggestion layer ----------------------------------------------------

    def get_suggestions(self, model_key: str, key: str) -> dict | None:
        payload = self._read(self._suggest_path(model_key, key))
        if payload is None:
            self.suggest_misses += 1
        else:
            self.suggest_hits += 1
        return payload

    def put_suggestions(self, model_key: str, key: str,
                        payload: dict) -> None:
        self._write(self._suggest_path(model_key, key), payload)

    # -- verdict layer -------------------------------------------------------

    def get_verdict(self, key: str) -> dict | None:
        payload = self._read(self._verdict_path(key))
        if payload is None:
            self.verdict_misses += 1
        else:
            self.verdict_hits += 1
        return payload

    def put_verdict(self, key: str, payload: dict) -> None:
        self._write(self._verdict_path(key), payload)

    # -- eviction ------------------------------------------------------------

    def _layer_of(self, path: Path) -> str:
        """Which cache layer a stored entry belongs to."""
        if path.parent.name == "parse":
            return "parse"
        if path.parent.name == "verdict":
            return "verdict"
        if path.parent.parent.name == "suggest":
            return "suggest"
        return "other"

    def gc(self, max_bytes: int | None = None,
           max_age_days: float | None = None,
           now: float | None = None) -> dict:
        """Prune the on-disk cache; without it the store only grows.

        The two limits apply in a fixed, deterministic order:
        ``max_age_days`` *first* drops every entry whose mtime is older
        than the cutoff, then ``max_bytes`` evicts
        least-recently-written survivors (LRU by mtime — every hit
        replays a file some run recently wrote) until what remains
        fits the budget; mtime ties break on path, so the same cache
        state always prunes the same files.  Both layers (parses and
        per-model suggestions) are pruned together, and *every*
        versioned subtree under the base root is scanned, so entries
        written by older ``STORE_VERSION`` builds are reclaimable too.
        Entries that vanish mid-scan (a concurrent gc or server) are
        skipped, not errors.

        Returns a structured report: ``removed_files`` /
        ``removed_bytes`` / ``kept_files`` / ``kept_bytes`` totals,
        plus the same four counters per layer under ``layers`` (keys
        ``parse``, ``suggest``, ``verdict``, and ``other`` for entries
        no current layout owns).
        """
        if now is None:
            now = time.time()
        entries: list[tuple[float, int, Path]] = []
        if self.base.is_dir():
            for path in self.base.rglob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))

        # newest first; mtime ties break on path for determinism
        keep = sorted(entries, key=lambda e: (-e[0], str(e[2])))
        evicted: list[tuple[float, int, Path]] = []
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            fresh = [e for e in keep if e[0] >= cutoff]
            evicted.extend(e for e in keep if e[0] < cutoff)
            keep = fresh
        if max_bytes is not None:
            # strict LRU: the first entry (newest-first) that overflows
            # the budget marks the recency cutoff — it and everything
            # older goes, even if some older entry alone would fit
            total = 0
            cutoff = len(keep)
            for i, entry in enumerate(keep):
                if total + entry[1] > max_bytes:
                    cutoff = i
                    break
                total += entry[1]
            evicted.extend(keep[cutoff:])
            keep = keep[:cutoff]

        layers = {
            layer: {"removed_files": 0, "removed_bytes": 0,
                    "kept_files": 0, "kept_bytes": 0}
            for layer in ("parse", "suggest", "verdict", "other")
        }
        for _, size, path in evicted:
            try:
                path.unlink()
            except OSError:
                continue
            layer = layers[self._layer_of(path)]
            layer["removed_files"] += 1
            layer["removed_bytes"] += size
        for _, size, path in keep:
            layer = layers[self._layer_of(path)]
            layer["kept_files"] += 1
            layer["kept_bytes"] += size
        report = {
            counter: sum(layer[counter] for layer in layers.values())
            for counter in ("removed_files", "removed_bytes",
                            "kept_files", "kept_bytes")
        }
        report["layers"] = layers
        return report

    # -- integrity -----------------------------------------------------------

    def fsck(self, remove: bool = True) -> dict:
        """Scan every layer for torn or unreadable entries.

        Readers already degrade such entries to cache misses, so a
        corrupt entry costs a recompute on *every* hit until something
        removes it — that something is this.  An entry is condemned by
        the same predicate the readers use (:meth:`_read` returning
        ``None``): unreadable, undecodable, truncated, or not a JSON
        object.  Stale ``*.tmp`` files — writers that died between
        ``mkstemp`` and ``os.replace`` — are reclaimed too.  Entries
        vanishing mid-scan are skipped, matching :meth:`gc`.

        With ``remove=False`` the scan only reports (``repro cache
        fsck --dry-run``).  Returns per-layer ``scanned`` / ``corrupt``
        / ``removed`` counters plus flat totals and the count of
        reclaimed temp files.
        """
        layers = {
            layer: {"scanned": 0, "corrupt": 0, "removed": 0}
            for layer in ("parse", "suggest", "verdict", "other")
        }
        stale_tmp = 0
        if self.base.is_dir():
            for path in self.base.rglob("*.json"):
                layer = layers[self._layer_of(path)]
                if not path.is_file():
                    continue
                layer["scanned"] += 1
                if self._read(path) is not None:
                    continue
                if not path.exists():      # vanished mid-scan
                    layer["scanned"] -= 1
                    continue
                layer["corrupt"] += 1
                if remove:
                    try:
                        path.unlink()
                        layer["removed"] += 1
                    except OSError:
                        pass
            for path in self.base.rglob("*.tmp"):
                stale_tmp += 1
                if remove:
                    try:
                        path.unlink()
                    except OSError:
                        stale_tmp -= 1
        report = {
            counter: sum(layer[counter] for layer in layers.values())
            for counter in ("scanned", "corrupt", "removed")
        }
        report["stale_tmp"] = stale_tmp
        report["layers"] = layers
        return report

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "suggest_hits": self.suggest_hits,
            "suggest_misses": self.suggest_misses,
            "verdict_hits": self.verdict_hits,
            "verdict_misses": self.verdict_misses,
            "write_errors": self.write_errors,
        }

    def describe(self) -> dict:
        """On-disk shape of the cache: entry counts and bytes per layer.

        Unlike :meth:`stats` (this process's hit/miss counters), this
        scans the directory, so ``repro cache stats`` can inspect a
        cache other runs populated.  Every versioned subtree under the
        base root is counted; per-model suggestion entries are grouped
        by model key.  Entries vanishing mid-scan are skipped.
        """
        layers = {
            "parse": {"entries": 0, "bytes": 0},
            "suggest": {"entries": 0, "bytes": 0, "models": 0},
            "verdict": {"entries": 0, "bytes": 0},
        }
        if self.base.is_dir():
            model_keys: set[str] = set()
            for path in self.base.rglob("*.json"):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                layer = path.parent
                if layer.name == "parse":
                    layers["parse"]["entries"] += 1
                    layers["parse"]["bytes"] += size
                elif layer.name == "verdict":
                    layers["verdict"]["entries"] += 1
                    layers["verdict"]["bytes"] += size
                elif layer.parent.name == "suggest":
                    layers["suggest"]["entries"] += 1
                    layers["suggest"]["bytes"] += size
                    model_keys.add(layer.name)
            layers["suggest"]["models"] = len(model_keys)
        return {
            "root": str(self.base),
            "exists": self.base.is_dir(),
            **layers,
            "total_bytes": layers["parse"]["bytes"]
            + layers["suggest"]["bytes"]
            + layers["verdict"]["bytes"],
        }
