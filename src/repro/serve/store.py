"""Persistent (cross-process) caches for the suggestion service.

The in-memory :class:`~repro.graphs.encode.EncodeCache` dies with the
process; this store survives it.  Two layers, both keyed by the
SHA-256 of a file's *content* (renames stay warm, edits invalidate
exactly the files they touch):

``parse/``
    extracted loop requests per file — model-independent, so a new
    bundle still reuses the expensive pure-python frontend work.
``suggest/<model_key>/``
    finished per-file suggestions, additionally keyed by the serving
    models' fingerprint so retrained or swapped models never replay
    stale advice.

Layout: ``<root>/v<STORE_VERSION>/{parse,suggest/<model_key>}/<sha>.json``.
Writes go through a temp file + :func:`os.replace`, so concurrent
writers (the multiprocess parse stage, parallel ``suggest-dir`` runs
over one cache) can only ever observe complete entries; unreadable or
torn entries degrade to cache misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

#: bump when cached payload shapes change incompatibly
STORE_VERSION = 1


def content_key(source: str) -> str:
    """Cache key of one file: SHA-256 over its exact content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SuggestionStore:
    """Disk-backed parse + suggestion cache rooted at ``root``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root) / f"v{STORE_VERSION}"
        self.parse_hits = 0
        self.parse_misses = 0
        self.suggest_hits = 0
        self.suggest_misses = 0

    # -- paths ---------------------------------------------------------------

    def _parse_path(self, key: str) -> Path:
        return self.root / "parse" / f"{key}.json"

    def _suggest_path(self, model_key: str, key: str) -> Path:
        return self.root / "suggest" / model_key / f"{key}.json"

    # -- raw IO --------------------------------------------------------------

    @staticmethod
    def _read(path: Path) -> dict | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    @staticmethod
    def _write(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- parse layer ---------------------------------------------------------

    def get_parse(self, key: str) -> dict | None:
        payload = self._read(self._parse_path(key))
        if payload is None:
            self.parse_misses += 1
        else:
            self.parse_hits += 1
        return payload

    def put_parse(self, key: str, payload: dict) -> None:
        self._write(self._parse_path(key), payload)

    # -- suggestion layer ----------------------------------------------------

    def get_suggestions(self, model_key: str, key: str) -> dict | None:
        payload = self._read(self._suggest_path(model_key, key))
        if payload is None:
            self.suggest_misses += 1
        else:
            self.suggest_hits += 1
        return payload

    def put_suggestions(self, model_key: str, key: str,
                        payload: dict) -> None:
        self._write(self._suggest_path(model_key, key), payload)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "suggest_hits": self.suggest_hits,
            "suggest_misses": self.suggest_misses,
        }
