"""The versioned wire protocol of the suggestion server.

Every conversation between :mod:`repro.client` and
:mod:`repro.serve.server` is a sequence of *frames*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
The JSON object always carries a ``kind`` naming one of the typed
messages below; everything else is schema-checked on decode, so a
malformed peer produces a :class:`ProtocolError` with a stable error
code instead of an ``AttributeError`` three layers deeper.

The conversation shape::

    client                          server
    ------                          ------
    Hello(protocol, client)   -->
                              <--   HelloOk(protocol, server,
                                            capabilities)
    SuggestRequest(sources,   -->
                   bundle,
                   stream, ...)
                              <--   FileResult ...   (stream=True)
                              <--   FileResult
                              <--   Done(files, errors, stats)
    SuggestRequest(stream=False) -->
                              <--   BatchResult(files) + Done
    Goodbye                   -->   (connection closes)

A protocol-version mismatch is refused at the handshake with an
:class:`Error` frame (code ``protocol-mismatch``) before any request
is accepted.  Frame-level violations (over-long or truncated frames,
bytes that are not JSON) use code ``bad-frame`` and close the
connection; request-level problems (unknown bundle, a serving failure,
an admission queue at capacity — code ``busy``) are reported as
:class:`Error` frames with the connection kept alive, so a ``busy``
client can simply retry on the same connection after a short backoff.

Payloads carry only JSON-shaped data — the exact
``FileSuggestions.to_payload()`` dicts the persistent store writes —
never pickles, so the protocol is language-agnostic and the served
suggestions are byte-identical to the in-process path.

``PROTOCOL_VERSION`` bumps whenever an existing frame changes shape
incompatibly; capability entries in the handshake cover additive
evolution without a version bump.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field, replace

#: bump on incompatible changes to any frame shape
PROTOCOL_VERSION = 1

#: refuse frames longer than this many payload bytes (a corrupt or
#: hostile length prefix must not make the peer allocate gigabytes)
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: byte length of a frame's length prefix
HEADER_SIZE = _HEADER.size


class ProtocolError(RuntimeError):
    """A peer violated the wire protocol.

    ``code`` is one of the stable error-frame codes: ``bad-frame``
    (framing/JSON-level, connection must close), ``bad-request``
    (schema-level, the frame decoded but is not a valid message),
    ``protocol-mismatch`` (handshake refusal), ``unknown-bundle``,
    ``serve-error``, ``shutting-down``, ``busy`` (request-level;
    ``busy`` means the bundle's admission queue is full — back off
    and retry on the same connection), ``deadline-exceeded`` (the
    request's own ``deadline_s`` ran out before it finished),
    ``hash-mismatch`` (a pushed bundle archive's bytes do not hash to
    the sha256 it claimed) and ``no-store`` (a store operation against
    a daemon running without a persistent cache).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


# -- framing -----------------------------------------------------------------


def encode_frame(obj: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame: length prefix + compact JSON body."""
    body = json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(
            "bad-frame",
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte "
            f"limit",
        )
    return _HEADER.pack(len(body)) + body


def write_frame(wfile, obj: dict,
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Write one frame to a binary file-like and flush it."""
    wfile.write(encode_frame(obj, max_bytes))
    wfile.flush()


def _read_exact(rfile, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = rfile.read(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                "bad-frame",
                f"connection closed mid-frame ({got}/{n} bytes)",
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(rfile, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from a binary file-like.

    Returns the decoded JSON object, or ``None`` when the peer closed
    the connection cleanly between frames.  Anything else — an
    over-long length prefix, a mid-frame hangup, bytes that are not a
    JSON object — raises :class:`ProtocolError` (code ``bad-frame``).
    """
    header = _read_exact(rfile, _HEADER.size)
    if header is None:
        return None
    length = parse_frame_length(header, max_bytes)
    body = _read_exact(rfile, length)
    if body is None:        # EOF right after a header: still mid-frame
        raise ProtocolError("bad-frame",
                            "connection closed between header and body")
    return decode_frame_body(body)


def decode_frame_body(body: bytes) -> dict:
    """Frame payload bytes → JSON object, or ``bad-frame``."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-frame",
                            f"frame body is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad-frame",
                            f"frame body is {type(obj).__name__}, "
                            f"expected an object")
    return obj


def parse_frame_length(header: bytes,
                       max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Length prefix bytes → body length, bounds-checked."""
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            "bad-frame",
            f"declared frame length {length} exceeds the "
            f"{max_bytes}-byte limit",
        )
    return length


# -- schema helpers ----------------------------------------------------------

_MISSING = object()


def _get(payload: dict, key: str, types, default=_MISSING):
    """Schema-checked field access over a decoded frame.

    Optional fields (those with a ``default``) treat an explicit JSON
    ``null`` the same as absence, so encoders may always emit every
    key.
    """
    value = payload.get(key, _MISSING)
    if value is _MISSING or (value is None and default is not _MISSING):
        if default is not _MISSING:
            return default
        raise ProtocolError("bad-request",
                            f"{payload.get('kind', '?')} frame is "
                            f"missing required field {key!r}")
    if not isinstance(value, types):
        names = (types.__name__ if isinstance(types, type)
                 else "/".join(t.__name__ for t in types))
        raise ProtocolError(
            "bad-request",
            f"{payload.get('kind', '?')}.{key} must be {names}, "
            f"got {type(value).__name__}",
        )
    return value


# -- messages ----------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Client → server handshake opener."""

    KIND = "hello"

    protocol: int = PROTOCOL_VERSION
    client: str = "repro.client"

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "protocol": self.protocol,
                "client": self.client}

    @classmethod
    def from_wire(cls, payload: dict) -> "Hello":
        return cls(protocol=_get(payload, "protocol", int),
                   client=_get(payload, "client", str, default=""))


@dataclass(frozen=True)
class HelloOk:
    """Server → client handshake acceptance + capability advertisement.

    ``capabilities`` is additive-evolution space: today it names the
    served bundles (``bundles``, ``default_bundle``), the clause
    families, the frame limit, and whether results stream.
    """

    KIND = "hello_ok"

    protocol: int = PROTOCOL_VERSION
    server: str = "repro.serve"
    capabilities: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "protocol": self.protocol,
                "server": self.server,
                "capabilities": dict(self.capabilities)}

    @classmethod
    def from_wire(cls, payload: dict) -> "HelloOk":
        return cls(protocol=_get(payload, "protocol", int),
                   server=_get(payload, "server", str, default=""),
                   capabilities=_get(payload, "capabilities", dict,
                                     default={}))


@dataclass(frozen=True)
class SuggestRequest:
    """Client → server: suggest over a workload named one of three ways.

    ``sources`` carries ``(name, content)`` pairs inline, so the
    server never needs the client's filesystem — the default, and what
    :mod:`repro.client` sends for local files.  Alternatively
    ``paths`` names files, or ``dir`` (+ ``pattern``) names a
    directory, *on the server's own filesystem* — for daemons
    colocated with the corpus, where shipping file contents over the
    wire would only add latency.  Exactly one addressing mode may be
    used per request.

    ``bundle`` selects a served bundle by name (``None`` = the
    server's default service); ``shards`` overrides the server's
    per-request shard fan-out (``None`` = server config, ``"auto"`` =
    corpus-statistics choice); ``stream=False`` asks for one
    :class:`BatchResult` instead of per-file frames — both replies
    end with :class:`Done`.

    ``deadline_s`` is the client's patience in (relative) seconds: the
    server converts it to an absolute deadline on arrival and aborts
    the request — queued *or* running — once it expires, replying with
    an :class:`Error` of code ``deadline-exceeded``.  Relative seconds
    travel better than wall-clock timestamps (no clock agreement
    needed).  An additive field: old servers ignore it, new servers
    advertise the ``deadlines`` capability.
    """

    KIND = "suggest"

    sources: tuple[tuple[str, str], ...] = ()
    paths: tuple[str, ...] = ()
    dir: str | None = None
    pattern: str = "*.c"
    bundle: str | None = None
    ordered: bool = True
    stream: bool = True
    shards: int | str | None = None
    deadline_s: float | None = None

    def to_wire(self) -> dict:
        return {
            "kind": self.KIND,
            "sources": [[name, source] for name, source in self.sources],
            "paths": list(self.paths),
            "dir": self.dir,
            "pattern": self.pattern,
            "bundle": self.bundle,
            "ordered": self.ordered,
            "stream": self.stream,
            "shards": self.shards,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "SuggestRequest":
        kind = payload.get("kind", cls.KIND)
        raw = _get(payload, "sources", list, default=[])
        sources = []
        for i, pair in enumerate(raw):
            if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                    or not all(isinstance(p, str) for p in pair)):
                raise ProtocolError(
                    "bad-request",
                    f"{kind}.sources[{i}] must be a [name, source] "
                    f"pair of strings",
                )
            sources.append((pair[0], pair[1]))
        paths = _get(payload, "paths", list, default=[])
        if not all(isinstance(p, str) for p in paths):
            raise ProtocolError("bad-request",
                                f"{kind}.paths must be strings")
        directory = _get(payload, "dir", str, default=None)
        modes = sum((bool(sources), bool(paths), directory is not None))
        if modes > 1:
            raise ProtocolError(
                "bad-request",
                f"{kind} uses exactly one of sources / paths / dir",
            )
        shards = _get(payload, "shards", (int, str), default=None)
        if isinstance(shards, str) and shards != "auto":
            raise ProtocolError(
                "bad-request",
                f"{kind}.shards must be an int, 'auto' or null, "
                f"got {shards!r}",
            )
        if isinstance(shards, int) and shards < 0:
            raise ProtocolError("bad-request",
                                f"{kind}.shards must be >= 0")
        deadline = _get(payload, "deadline_s", (int, float),
                        default=None)
        if deadline is not None:
            if isinstance(deadline, bool) or deadline <= 0:
                raise ProtocolError(
                    "bad-request",
                    f"{kind}.deadline_s must be a positive number of "
                    f"seconds",
                )
            deadline = float(deadline)
        return cls(
            sources=tuple(sources),
            paths=tuple(paths),
            dir=directory,
            pattern=_get(payload, "pattern", str, default="*.c"),
            bundle=_get(payload, "bundle", str, default=None),
            ordered=_get(payload, "ordered", bool, default=True),
            stream=_get(payload, "stream", bool, default=True),
            shards=shards,
            deadline_s=deadline,
        )


@dataclass(frozen=True)
class RewriteRequest(SuggestRequest):
    """Client → server: apply suggestions as verified AST rewrites.

    Addressing, ``bundle``, ``ordered``/``stream`` and ``shards`` all
    behave exactly as on :class:`SuggestRequest`; the reply uses the
    same :class:`FileResult`/:class:`BatchResult`/:class:`Done` frames,
    with ``payload`` carrying ``FileRewrite.to_payload()`` instead.
    ``verify=False`` skips the interpreter gate (rewrites come back
    with code ``unverified``).

    An additive message: servers advertise support via the ``rewrite``
    capability, so no protocol-version bump.
    """

    KIND = "rewrite"

    verify: bool = True

    def to_wire(self) -> dict:
        wire = super().to_wire()
        wire["verify"] = self.verify
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "RewriteRequest":
        base = super().from_wire(payload)
        return replace(base,
                       verify=_get(payload, "verify", bool, default=True))


@dataclass(frozen=True)
class FileResult:
    """Server → client: one finished file of a streaming reply.

    ``index`` is the file's position in the request's ``sources``, so
    as-completed streams can be re-ordered client-side; ``payload`` is
    exactly ``FileSuggestions.to_payload()``.
    """

    KIND = "file"

    index: int
    name: str
    payload: dict

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "index": self.index,
                "name": self.name, "payload": self.payload}

    @classmethod
    def from_wire(cls, payload: dict) -> "FileResult":
        return cls(index=_get(payload, "index", int),
                   name=_get(payload, "name", str),
                   payload=_get(payload, "payload", dict))


@dataclass(frozen=True)
class BatchResult:
    """Server → client: a whole non-streaming reply in one frame."""

    KIND = "batch"

    files: tuple[FileResult, ...]

    def to_wire(self) -> dict:
        return {"kind": self.KIND,
                "files": [f.to_wire() for f in self.files]}

    @classmethod
    def from_wire(cls, payload: dict) -> "BatchResult":
        raw = _get(payload, "files", list)
        files = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise ProtocolError("bad-request",
                                    "batch.files entries must be objects")
            files.append(FileResult.from_wire(entry))
        return cls(files=tuple(files))


@dataclass(frozen=True)
class Done:
    """Server → client: clean end of one request's reply.

    Receiving it is how a client distinguishes a complete stream from
    a dropped connection.  ``stats`` carries the serving service's
    ``cache_stats()`` snapshot for observability.
    """

    KIND = "done"

    files: int
    errors: int
    stats: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "files": self.files,
                "errors": self.errors, "stats": self.stats}

    @classmethod
    def from_wire(cls, payload: dict) -> "Done":
        return cls(files=_get(payload, "files", int),
                   errors=_get(payload, "errors", int),
                   stats=_get(payload, "stats", dict, default={}))


@dataclass(frozen=True)
class Error:
    """Either direction: a refusal or failure with a stable code."""

    KIND = "error"

    code: str
    message: str

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "code": self.code,
                "message": self.message}

    @classmethod
    def from_wire(cls, payload: dict) -> "Error":
        return cls(code=_get(payload, "code", str),
                   message=_get(payload, "message", str, default=""))

    def raise_(self) -> None:
        raise ProtocolError(self.code, self.message)


@dataclass(frozen=True)
class Ping:
    """Client → server: health probe.

    Answered immediately with a :class:`Pong` straight off the session
    loop — it never enters the admission queue, so a ``busy`` server
    still answers and a wedged one visibly does not.  ``token`` is
    echoed back so callers can match probe to answer.  Additive:
    servers advertise it via the ``ping`` capability.
    """

    KIND = "ping"

    token: str = ""

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "token": self.token}

    @classmethod
    def from_wire(cls, payload: dict) -> "Ping":
        return cls(token=_get(payload, "token", str, default=""))


@dataclass(frozen=True)
class Pong:
    """Server → client: health probe answer.

    ``queued`` / ``running`` expose the admission state (total across
    bundles), so a load balancer can probe depth without a request.
    """

    KIND = "pong"

    token: str = ""
    queued: int = 0
    running: int = 0
    #: the server's capability dict (additive; old servers omit it),
    #: so one probe answers "how busy" *and* "what do you serve"
    capabilities: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "token": self.token,
                "queued": self.queued, "running": self.running,
                "capabilities": self.capabilities}

    @classmethod
    def from_wire(cls, payload: dict) -> "Pong":
        return cls(token=_get(payload, "token", str, default=""),
                   queued=_get(payload, "queued", int, default=0),
                   running=_get(payload, "running", int, default=0),
                   capabilities=_get(payload, "capabilities", dict,
                                     default={}))


@dataclass(frozen=True)
class Goodbye:
    """Client → server: clean connection close."""

    KIND = "bye"

    def to_wire(self) -> dict:
        return {"kind": self.KIND}

    @classmethod
    def from_wire(cls, payload: dict) -> "Goodbye":
        return cls()


_SHA256_LEN = 64

_HEX_DIGITS = frozenset("0123456789abcdef")


def _get_sha256(payload: dict, key: str) -> str:
    value = _get(payload, key, str)
    if len(value) != _SHA256_LEN or not set(value) <= _HEX_DIGITS:
        raise ProtocolError("bad-request",
                            f"{key} must be a lowercase sha256 hex digest")
    return value


#: characters a store/bundle key may contain — everything the store
#: embeds in a file name, nothing that can traverse out of its root
_KEY_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _get_key(payload: dict, key: str, *,
             optional: bool = False) -> str | None:
    value = _get(payload, key, str, default=None)
    if value is None:
        if optional:
            return None
        raise ProtocolError("bad-request", f"{key} is required")
    if (not value or len(value) > 128 or not set(value) <= _KEY_CHARS
            or value.startswith(".")):
        raise ProtocolError("bad-request",
                            f"{key} is not a valid store key")
    return value


@dataclass(frozen=True)
class BundleHave:
    """Client → server: "do you already hold this archive?"

    The content-addressed half of bundle distribution: archives are
    addressed by the SHA-256 of their bytes, so a coordinator asks
    before pushing and an archive transits the wire at most once per
    peer.  Additive, behind the ``fabric`` capability.
    """

    KIND = "bundle_have"

    sha256: str

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "sha256": self.sha256}

    @classmethod
    def from_wire(cls, payload: dict) -> "BundleHave":
        return cls(sha256=_get_sha256(payload, "sha256"))


@dataclass(frozen=True)
class BundleHaveOk:
    """Server → client: answer to :class:`BundleHave`.

    ``name`` is the registry name the archive serves under when held.
    """

    KIND = "bundle_have_ok"

    sha256: str
    have: bool
    name: str | None = None

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "sha256": self.sha256,
                "have": self.have, "name": self.name}

    @classmethod
    def from_wire(cls, payload: dict) -> "BundleHaveOk":
        return cls(sha256=_get_sha256(payload, "sha256"),
                   have=_get(payload, "have", bool),
                   name=_get(payload, "name", str, default=None))


@dataclass(frozen=True)
class BundlePush:
    """Client → server: ship one bundle archive, addressed by hash.

    ``data`` is the base64 of the ``pack_bundle`` archive bytes (JSON
    frames cannot carry raw bytes).  The receiver recomputes the
    digest and refuses a mismatch with a ``hash-mismatch`` error — a
    peer must never cache an archive under a hash it does not have.
    """

    KIND = "bundle_push"

    sha256: str
    data: str
    name: str | None = None

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "sha256": self.sha256,
                "data": self.data, "name": self.name}

    @classmethod
    def from_wire(cls, payload: dict) -> "BundlePush":
        name = _get(payload, "name", str, default=None)
        if name is not None:
            name = _get_key(payload, "name")
        return cls(sha256=_get_sha256(payload, "sha256"),
                   data=_get(payload, "data", str),
                   name=name)


@dataclass(frozen=True)
class BundlePushOk:
    """Server → client: the pushed archive is loaded and serving.

    ``cached=True`` means the peer already held the hash and the push
    was absorbed without reloading anything.
    """

    KIND = "bundle_push_ok"

    sha256: str
    name: str
    cached: bool = False

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "sha256": self.sha256,
                "name": self.name, "cached": self.cached}

    @classmethod
    def from_wire(cls, payload: dict) -> "BundlePushOk":
        return cls(sha256=_get_sha256(payload, "sha256"),
                   name=_get(payload, "name", str),
                   cached=_get(payload, "cached", bool, default=False))


#: store operations a :class:`StoreOp` may request
STORE_OPS = ("get", "put", "gc", "fsck", "describe")

#: store layers addressable over the wire
STORE_LAYERS = ("parse", "suggest", "verdict")


@dataclass(frozen=True)
class StoreOp:
    """Client → server: one operation against the daemon's store.

    The network ``SuggestionStore`` backend: get/put against the
    ``parse`` / ``suggest`` / ``verdict`` layers plus the ``gc`` /
    ``fsck`` / ``describe`` maintenance surface, all executed against
    the daemon's on-disk store so the atomic-commit contract is
    inherited rather than re-implemented.  Additive, behind the
    ``fabric`` capability (``network_store`` advertises whether this
    daemon has a store at all).
    """

    KIND = "store"

    op: str
    layer: str | None = None
    key: str | None = None
    model_key: str | None = None
    entry: dict | None = None
    args: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "op": self.op, "layer": self.layer,
                "key": self.key, "model_key": self.model_key,
                "entry": self.entry, "args": self.args}

    @classmethod
    def from_wire(cls, payload: dict) -> "StoreOp":
        op = _get(payload, "op", str)
        if op not in STORE_OPS:
            raise ProtocolError("bad-request",
                                f"unknown store op {op!r}")
        layer = _get(payload, "layer", str, default=None)
        key = model_key = None
        entry = _get(payload, "entry", dict, default=None)
        if op in ("get", "put"):
            if layer not in STORE_LAYERS:
                raise ProtocolError(
                    "bad-request",
                    f"store {op} needs a layer in {STORE_LAYERS}")
            key = _get_key(payload, "key")
            model_key = _get_key(payload, "model_key",
                                 optional=layer != "suggest")
            if op == "put" and entry is None:
                raise ProtocolError("bad-request",
                                    "store put needs an entry object")
        return cls(op=op, layer=layer, key=key, model_key=model_key,
                   entry=entry,
                   args=_get(payload, "args", dict, default={}))


@dataclass(frozen=True)
class StoreOk:
    """Server → client: a :class:`StoreOp` result.

    ``entry`` answers ``get`` (``None`` = miss); ``report`` answers
    the maintenance ops with the same dict the on-disk store returns.
    """

    KIND = "store_ok"

    op: str = ""
    entry: dict | None = None
    report: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "op": self.op, "entry": self.entry,
                "report": self.report}

    @classmethod
    def from_wire(cls, payload: dict) -> "StoreOk":
        return cls(op=_get(payload, "op", str, default=""),
                   entry=_get(payload, "entry", dict, default=None),
                   report=_get(payload, "report", dict, default={}))


_MESSAGES = {
    cls.KIND: cls
    for cls in (Hello, HelloOk, SuggestRequest, RewriteRequest,
                FileResult, BatchResult, Done, Error, Goodbye,
                Ping, Pong, BundleHave, BundleHaveOk, BundlePush,
                BundlePushOk, StoreOp, StoreOk)
}


def decode_message(payload: dict):
    """Decoded frame dict → typed message, schema-checked."""
    kind = payload.get("kind")
    cls = _MESSAGES.get(kind)
    if cls is None:
        raise ProtocolError("bad-request",
                            f"unknown message kind {kind!r}")
    return cls.from_wire(payload)


def read_message(rfile, max_bytes: int = MAX_FRAME_BYTES):
    """Read + decode one message; ``None`` on clean EOF."""
    payload = read_frame(rfile, max_bytes)
    if payload is None:
        return None
    return decode_message(payload)


def write_message(wfile, message,
                  max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode + write one typed message."""
    write_frame(wfile, message.to_wire(), max_bytes)
