"""CPU-bound file-parse stage of the suggestion service.

The cfront frontend is pure python and dominates serving latency for
large corpora, so this stage can fan out over a process pool.  Workers
exchange only plain picklable payloads (loop sources + live-out name
sets wrapped in :class:`~repro.suggest.LoopRequest`), never AST
objects; files the frontend rejects come back as per-file errors, the
way the paper's pipeline dropped files Clang rejected.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from repro.cfront import ParseError
from repro.cfront.lexer import LexError
from repro.suggest import LoopRequest, file_requests


@dataclass
class ParsedFile:
    """Parse-stage output for one file."""

    name: str
    requests: list[LoopRequest] = field(default_factory=list)
    error: str | None = None

    def to_payload(self) -> dict:
        """JSON-safe payload for the persistent parse cache.

        Attached ASTs are deliberately dropped (like the process-pool
        path): cached requests re-parse lazily on use, which keeps the
        cache plain data and the suggestions identical either way.
        """
        return {
            "error": self.error,
            "requests": [
                {"source": r.source, "live_out": sorted(r.live_out)}
                for r in self.requests
            ],
        }

    @classmethod
    def from_payload(cls, name: str, payload: dict) -> "ParsedFile":
        return cls(
            name=name,
            requests=[
                LoopRequest(source=d["source"],
                            live_out=frozenset(d["live_out"]))
                for d in payload["requests"]
            ],
            error=payload["error"],
        )


def parse_one(item: tuple[str, str], with_asts: bool = True) -> ParsedFile:
    """(name, source) → extracted loop requests, or a per-file error.

    ``with_asts=False`` keeps the requests plain (no attached loop
    statements) so they pickle cheaply across process boundaries.
    """
    name, source = item
    try:
        return ParsedFile(
            name=name, requests=file_requests(source, with_asts=with_asts),
        )
    except (ParseError, LexError, RecursionError) as exc:
        return ParsedFile(name=name,
                          error=f"{type(exc).__name__}: {exc}")


def parse_many(
    named_sources: list[tuple[str, str]],
    workers: int = 1,
) -> list[ParsedFile]:
    """Parse many ``(name, source)`` pairs, preserving order.

    ``workers <= 1`` (or a single file) runs in-process; otherwise a
    :class:`ProcessPoolExecutor` spreads the CPU-bound frontend across
    cores.  Environments that cannot spawn processes fall back to the
    serial path rather than failing the request.
    """
    items = list(named_sources)
    if workers <= 1 or len(items) < 2:
        return [parse_one(item) for item in items]
    chunksize = max(1, len(items) // (workers * 4))
    plain = partial(parse_one, with_asts=False)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(plain, items, chunksize=chunksize))
    except (OSError, PermissionError):
        return [parse_one(item) for item in items]
