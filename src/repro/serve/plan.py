"""Shard planning for end-to-end corpus sharding.

The parse → encode → forward pipeline is CPU-bound pure python, so a
corpus splits across worker processes at *file* granularity: each shard
carries whole files (a file's loops batch together inside its worker)
balanced by source size, the only cost signal available before any file
is parsed.  Planning is deterministic — the same corpus and shard count
always produce the same partition, so reruns hit the same per-shard
suggestion-store keys and golden tests can pin shard contents.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field

#: auto-sharding refuses to cut shards smaller than this many source
#: bytes — below it, worker spawn + model transfer overhead beats the
#: parallelism
MIN_BYTES_PER_SHARD = 16 * 1024


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the host; under cgroup limits or CPU
    affinity (containers, CI runners) the process may own far fewer.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):      # non-Linux platforms
        return os.cpu_count() or 1


def auto_shards(n_files: int, total_bytes: int,
                cpus: int | None = None) -> int:
    """Pick an end-to-end shard count from corpus stats and CPU count.

    One effective CPU (or a single file) always serves in-process:
    forked workers cannot beat the batch path without a second core,
    and ``BENCH_shard_scaling.json`` recorded a 0.81× regression for
    ``shards=2, cpus=1``.  Otherwise the count is capped by the CPUs
    available, the file count (a file is the unit of work), and the
    corpus size in bytes, so small corpora never pay spawn costs that
    exceed their compute.
    """
    if cpus is None:
        cpus = effective_cpu_count()
    if cpus <= 1 or n_files <= 1:
        return 1
    by_bytes = int(total_bytes // MIN_BYTES_PER_SHARD)
    return max(1, min(cpus, n_files, by_bytes))


def plan_peer_shards(n_peers: int,
                     named_sources: list[tuple[str, str]]) -> int:
    """Shard count for fanning a corpus out across remote peers.

    One shard per peer — the peer's own daemon batches its slice into
    block-diagonal forwards, so finer local sharding only adds frames —
    capped by the file count (a file is still the unit of work).
    Remote peers have no local-CPU floor: even on a one-core
    coordinator, two peers compute in parallel.
    """
    if n_peers < 1:
        raise ValueError(f"need at least one peer, got {n_peers}")
    return max(1, min(n_peers, len(named_sources)))


def resolve_shards(shards, named_sources: list[tuple[str, str]]) -> int:
    """Normalise a shard setting (int, 0, or ``"auto"``) to a count."""
    if shards == "auto" or shards == 0:
        return auto_shards(len(named_sources),
                           sum(len(source) for _, source in named_sources))
    if isinstance(shards, int) and shards >= 1:
        return shards
    raise ValueError(
        f"shards must be a positive int, 0, or 'auto', got {shards!r}")


@dataclass
class Shard:
    """One worker's slice of the corpus.

    ``indices`` are positions into the *original* workload, so results
    streaming back from any shard can be re-interleaved into input
    order without the planner's help.
    """

    sid: int
    indices: list[int] = field(default_factory=list)
    items: list[tuple[str, str]] = field(default_factory=list)
    total_bytes: int = 0

    def add(self, index: int, item: tuple[str, str]) -> None:
        self.indices.append(index)
        self.items.append(item)
        self.total_bytes += len(item[1])

    def __len__(self) -> int:
        return len(self.items)


def plan_shards(named_sources: list[tuple[str, str]],
                n_shards: int) -> list[Shard]:
    """Partition ``(name, source)`` pairs into ≤ ``n_shards`` shards.

    Greedy longest-processing-time: files are placed largest-first onto
    the currently lightest shard, which keeps the heaviest shard within
    ~4/3 of optimal — good enough that wall clock tracks the slowest
    worker, not a pathological straggler.  Ties break on shard id and
    file order, so the plan is a pure function of its inputs.  Empty
    shards (more shards than files) are dropped.
    """
    items = list(named_sources)
    n_shards = max(1, min(n_shards, len(items)) if items else 1)
    shards = [Shard(sid=i) for i in range(n_shards)]
    # (current load, shard id) heap: smallest load pops first, shard id
    # breaks ties deterministically.
    heap = [(0, i) for i in range(n_shards)]
    heapq.heapify(heap)
    order = sorted(range(len(items)),
                   key=lambda i: (-len(items[i][1]), i))
    for i in order:
        load, sid = heapq.heappop(heap)
        shards[sid].add(i, items[i])
        heapq.heappush(heap, (load + len(items[i][1]), sid))
    for shard in shards:
        # LPT visits files by size; per-shard processing should follow
        # input order (stable streaming, store writes, error reporting).
        paired = sorted(zip(shard.indices, shard.items))
        shard.indices = [i for i, _ in paired]
        shard.items = [item for _, item in paired]
    return [s for s in shards if s.items]
