"""Shard planning for end-to-end corpus sharding.

The parse → encode → forward pipeline is CPU-bound pure python, so a
corpus splits across worker processes at *file* granularity: each shard
carries whole files (a file's loops batch together inside its worker)
balanced by source size, the only cost signal available before any file
is parsed.  Planning is deterministic — the same corpus and shard count
always produce the same partition, so reruns hit the same per-shard
suggestion-store keys and golden tests can pin shard contents.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class Shard:
    """One worker's slice of the corpus.

    ``indices`` are positions into the *original* workload, so results
    streaming back from any shard can be re-interleaved into input
    order without the planner's help.
    """

    sid: int
    indices: list[int] = field(default_factory=list)
    items: list[tuple[str, str]] = field(default_factory=list)
    total_bytes: int = 0

    def add(self, index: int, item: tuple[str, str]) -> None:
        self.indices.append(index)
        self.items.append(item)
        self.total_bytes += len(item[1])

    def __len__(self) -> int:
        return len(self.items)


def plan_shards(named_sources: list[tuple[str, str]],
                n_shards: int) -> list[Shard]:
    """Partition ``(name, source)`` pairs into ≤ ``n_shards`` shards.

    Greedy longest-processing-time: files are placed largest-first onto
    the currently lightest shard, which keeps the heaviest shard within
    ~4/3 of optimal — good enough that wall clock tracks the slowest
    worker, not a pathological straggler.  Ties break on shard id and
    file order, so the plan is a pure function of its inputs.  Empty
    shards (more shards than files) are dropped.
    """
    items = list(named_sources)
    n_shards = max(1, min(n_shards, len(items)) if items else 1)
    shards = [Shard(sid=i) for i in range(n_shards)]
    # (current load, shard id) heap: smallest load pops first, shard id
    # breaks ties deterministically.
    heap = [(0, i) for i in range(n_shards)]
    heapq.heapify(heap)
    order = sorted(range(len(items)),
                   key=lambda i: (-len(items[i][1]), i))
    for i in order:
        load, sid = heapq.heappop(heap)
        shards[sid].add(i, items[i])
        heapq.heappush(heap, (load + len(items[i][1]), sid))
    for shard in shards:
        # LPT visits files by size; per-shard processing should follow
        # input order (stable streaming, store writes, error reporting).
        paired = sorted(zip(shard.indices, shard.items))
        shard.indices = [i for i, _ in paired]
        shard.items = [item for _, item in paired]
    return [s for s in shards if s.items]
