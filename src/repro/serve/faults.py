"""Deterministic fault injection for the serving stack.

Chaos testing only proves anything when the chaos is *reproducible*: a
:class:`FaultPlan` is an explicit, seeded list of faults — kill shard
worker N after it finished M files, hang a worker, delay or abort a
store write, tear a store entry mid-write, refuse a bundle load — that
the serving code consults at a handful of instrumented sites.  The
same plan against the same corpus always injects the same faults at
the same points, so recovery tests can assert byte-identity instead of
"it probably survived".

Activation is explicit and double-keyed:

- in-process: :func:`activate` / :func:`deactivate` (tests), or
- across process boundaries: the ``REPRO_FAULTS`` environment variable
  carrying ``FaultPlan.to_json()`` — shard *worker* processes inherit
  the parent's environment, so one env var arms the whole process
  tree (this is how the chaos smoke script faults a real daemon's
  workers).

When nothing is armed, every hook is a module-global ``None`` check
and an immediate return — the serving hot path pays one pointer
comparison per *file* (not per loop), which is below measurement
noise (``BENCH_*`` gates stay green with the hooks compiled in).

Fault kinds (``Fault.kind``):

``kill-worker``
    the shard worker whose ``sid`` matches dies via ``SIGKILL`` after
    emitting ``after_files`` results — the hard-death case (segfault,
    OOM-kill) the supervisor must requeue.
``hang-worker``
    the matching worker stops heartbeating and sleeps forever after
    ``after_files`` results — the case only a heartbeat timeout can
    detect.
``poison-file``
    any worker dies (``SIGKILL``) the moment it is about to emit a
    file whose name contains ``match`` — models the reproducible
    per-input crash that must end in quarantine, not an aborted run.
``delay-write``
    a store write whose path contains ``match`` sleeps ``seconds``
    first (lock-holder stalls, slow disks).
``abort-write``
    a store write whose path contains ``match`` raises ``OSError``
    before anything lands on disk.
``tear-entry``
    a store write whose path contains ``match`` leaves a *truncated*
    entry at the final path instead of the real payload — what a
    crash between write and rename can leave behind; readers must
    degrade to recompute and ``repro cache fsck`` must remove it.
``refuse-bundle``
    loading a bundle whose path contains ``match`` raises — the
    corrupt-artifact-at-startup case the daemon must degrade around.

``times`` bounds how often one fault fires (default 1); counters are
per-process, so "kill the worker once" means the *respawned* worker
survives.  ``seed`` keys the deterministic jitter helpers.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass

#: environment variable carrying an armed plan across process spawns
ENV_VAR = "REPRO_FAULTS"

KINDS = (
    "kill-worker",
    "hang-worker",
    "poison-file",
    "delay-write",
    "abort-write",
    "tear-entry",
    "refuse-bundle",
)

#: how long a hung worker sleeps — effectively forever next to any
#: heartbeat timeout, but bounded so a leaked process still dies
HANG_S = 3600.0


class FaultError(RuntimeError):
    """An injected failure (aborted write, refused bundle load)."""


@dataclass(frozen=True)
class Fault:
    """One injectable fault; see the module docstring for kinds."""

    kind: str
    sid: int | None = None      # worker faults: which shard id
    after_files: int = 0        # worker faults: results before firing
    match: str = ""             # substring over file name / path
    seconds: float = 0.0        # delay-write
    times: int = 1              # max firings per process

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {KINDS}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "sid": self.sid,
                "after_files": self.after_files, "match": self.match,
                "seconds": self.seconds, "times": self.times}

    @classmethod
    def from_dict(cls, payload: dict) -> "Fault":
        return cls(
            kind=payload["kind"],
            sid=payload.get("sid"),
            after_files=int(payload.get("after_files", 0)),
            match=str(payload.get("match", "")),
            seconds=float(payload.get("seconds", 0.0)),
            times=int(payload.get("times", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of faults to inject."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        try:
            payload = json.loads(raw)
            faults = tuple(Fault.from_dict(f)
                           for f in payload.get("faults", []))
            return cls(faults=faults, seed=int(payload.get("seed", 0)))
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise ValueError(f"invalid fault plan: {exc}") from exc

    def env(self) -> dict[str, str]:
        """Environment entries that arm this plan in a child process."""
        return {ENV_VAR: self.to_json()}

    def jitter(self, key: str) -> float:
        """Deterministic [0, 1) jitter derived from (seed, key)."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64


class _Armed:
    """An active plan plus its per-process firing counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired = [0] * len(plan.faults)

    def take(self, predicate) -> Fault | None:
        """First matching fault with firings left; consumes one."""
        for i, fault in enumerate(self.plan.faults):
            if self.fired[i] < fault.times and predicate(fault):
                self.fired[i] += 1
                return fault
        return None


#: the armed plan, or None — every hook checks this one global first
_armed: _Armed | None = None
_env_checked = False


def activate(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process (tests, CLI ``--faults``)."""
    global _armed
    _armed = _Armed(plan)


def deactivate() -> None:
    """Disarm; also stops re-reading :data:`ENV_VAR`."""
    global _armed, _env_checked
    _armed = None
    _env_checked = True


def reset() -> None:
    """Back to the pristine lazy state (tests)."""
    global _armed, _env_checked
    _armed = None
    _env_checked = False


def _current() -> _Armed | None:
    """The armed plan, arming lazily from the environment once.

    Worker processes inherit the parent's environment, so a plan armed
    via :data:`ENV_VAR` is live in every shard worker without any
    spawn-path plumbing.
    """
    global _armed, _env_checked
    if _armed is not None:
        return _armed
    if not _env_checked:
        _env_checked = True
        raw = os.environ.get(ENV_VAR)
        if raw:
            _armed = _Armed(FaultPlan.from_json(raw))
    return _armed


def active() -> bool:
    """Whether any plan is armed (lazily consulting the env)."""
    return _current() is not None


# -- hooks (call sites are the instrumented serving layers) ------------------


def on_worker_file(sid: int, files_done: int, name: str) -> str | None:
    """Worker hook: about to emit result ``files_done`` named ``name``.

    Returns the action the worker must take: ``"kill"`` (SIGKILL
    itself), ``"hang"`` (stop heartbeating and sleep), or ``None``.
    """
    armed = _current()
    if armed is None:
        return None
    fault = armed.take(lambda f: (
        (f.kind == "kill-worker" and f.sid == sid
         and files_done >= f.after_files)
        or (f.kind == "hang-worker" and f.sid == sid
            and files_done >= f.after_files)
        or (f.kind == "poison-file" and f.match and f.match in name)
    ))
    if fault is None:
        return None
    if fault.kind == "hang-worker":
        return "hang"
    return "kill"


def kill_self() -> None:     # pragma: no cover - the process dies
    """Die the hard way: no atexit, no queue flush, no traceback."""
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(HANG_S)       # SIGKILL delivery is asynchronous


def on_store_write(path: str) -> str | None:
    """Store hook: about to write ``path``.

    ``"abort"`` → the caller must raise before writing; ``"tear"`` →
    the caller must leave a truncated entry instead of the payload;
    ``None`` → proceed (any delay already slept here).
    """
    armed = _current()
    if armed is None:
        return None
    fault = armed.take(lambda f: (
        f.kind in ("delay-write", "abort-write", "tear-entry")
        and (not f.match or f.match in path)
    ))
    if fault is None:
        return None
    if fault.kind == "delay-write":
        time.sleep(fault.seconds)
        return None
    if fault.kind == "abort-write":
        return "abort"
    return "tear"


def on_bundle_load(path: str) -> None:
    """Bundle hook: raise :class:`FaultError` when the load is refused."""
    armed = _current()
    if armed is None:
        return
    fault = armed.take(lambda f: (
        f.kind == "refuse-bundle" and (not f.match or f.match in str(path))
    ))
    if fault is not None:
        raise FaultError(
            f"injected bundle-load refusal for {path}")
