"""Shard worker: one process, one slice of the corpus, full pipeline.

A worker rebuilds the complete suggestion service from a picklable
:class:`WorkerSpec` — either by reloading the on-disk
:class:`~repro.artifacts.SuggesterBundle` the parent served from (the
cheap path: the spawn payload is one path string, the artifact loads
strictly and identically everywhere) or from directly pickled trained
models when no artifact exists (train-on-the-fly services, test stubs).
It then runs parse → encode → block-diagonal forward → fan-out
*locally* for its shard, consults and commits the shared persistent
:class:`~repro.serve.store.SuggestionStore` exactly like the in-process
path, and streams per-file results back over the result queue as they
complete.

The wire protocol (``("file", sid, index, name, payload)`` /
``("done", sid, stats)`` / ``("error", sid, traceback)``) carries only
JSON-shaped payloads — the same shapes the persistent store writes —
never live model or AST objects.
"""

from __future__ import annotations

import sys
import traceback
from dataclasses import dataclass, field

from repro.serve.pipeline import ServeConfig, SuggestionService
from repro.serve.store import SuggestionStore


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild the serving service.

    Exactly one of ``bundle_path`` / ``models`` is populated:
    ``bundle_path`` ships a path to a saved bundle (directory or
    archive) that the worker loads itself; ``models`` ships the
    ``(parallel_model, clause_models)`` pair by pickle.  ``clauses``
    restricts which clause families a bundle-backed worker serves, so
    workers agree with the parent's model key.

    ``mode`` selects what the worker streams back: ``"suggest"`` (the
    default) runs the suggestion pipeline, ``"rewrite"`` additionally
    applies and verifies rewrites inside the worker — this is what
    distributes verification across shards.  ``verify`` /
    ``verify_config`` are the rewrite knobs (a frozen
    :class:`~repro.rewrite.verify.VerifyConfig` pickles fine).
    """

    config: ServeConfig
    store_root: str | None = None
    bundle_path: str | None = None
    models: tuple | None = None
    clauses: tuple[str, ...] = field(default_factory=tuple)
    mode: str = "suggest"
    verify: bool = True
    verify_config: object | None = None

    def build_service(self) -> SuggestionService:
        if self.bundle_path is not None:
            from repro.artifacts import SuggesterBundle

            bundle = SuggesterBundle.load(self.bundle_path)
            parallel = bundle.parallel
            clause_models = {
                name: bundle.clause_models[name] for name in self.clauses
            }
        elif self.models is not None:
            parallel, clause_models = self.models
        else:
            raise ValueError(
                "WorkerSpec names neither a bundle path nor models"
            )
        store = (SuggestionStore(self.store_root)
                 if self.store_root is not None else None)
        return SuggestionService(parallel, dict(clause_models),
                                 self.config, store=store)


def worker_main(spec: WorkerSpec, shard, queue) -> None:
    """Process entrypoint: serve one shard, streaming results back.

    Any failure — spec resolution, artifact loading, the pipeline
    itself — is reported as an ``("error", ...)`` message carrying the
    traceback, and the process exits nonzero so the parent detects the
    death even if the message is lost.
    """
    try:
        service = spec.build_service()
        if spec.mode == "rewrite":
            results = service.iter_rewrites(
                shard.items, verify=spec.verify,
                rewrite_config=spec.verify_config)
        else:
            results = service.iter_sources(shard.items)
        for local_index, result in results:
            queue.put(("file", shard.sid, shard.indices[local_index],
                       result.name, result.to_payload()))
        queue.put(("done", shard.sid, service.cache_stats()))
    except BaseException:
        queue.put(("error", shard.sid, traceback.format_exc()))
        sys.exit(1)
