"""Shard worker: one process, one slice of the corpus, full pipeline.

A worker rebuilds the complete suggestion service from a picklable
:class:`WorkerSpec` — either by reloading the on-disk
:class:`~repro.artifacts.SuggesterBundle` the parent served from (the
cheap path: the spawn payload is one path string, the artifact loads
strictly and identically everywhere) or from directly pickled trained
models when no artifact exists (train-on-the-fly services, test stubs).
It then runs parse → encode → block-diagonal forward → fan-out
*locally* for its shard, consults and commits the shared persistent
:class:`~repro.serve.store.SuggestionStore` exactly like the in-process
path, and streams per-file results back over the result queue as they
complete.

The wire protocol carries only JSON-shaped payloads — the same shapes
the persistent store writes — never live model or AST objects:

- ``("file", sid, index, name, payload)`` — one finished file,
- ``("done", sid, stats)`` — shard complete, worker cache counters,
- ``("error", sid, traceback)`` — a soft failure with its traceback,
- ``("beat", sid)`` — liveness, sent by a background thread every
  :data:`_BEAT_S` so the supervisor can tell *slow* from *hung*,
- ``("claim", sid, index)`` — careful mode only: sent before a file is
  computed, so a crash can be blamed on exactly one input.

Careful mode (``worker_main(..., careful=True)``) is how a respawned
worker re-runs a shard that already killed a sibling: files are served
one at a time with a claim ahead of each, trading batch throughput for
per-file blame — the supervisor quarantines an input that keeps
killing workers instead of retrying it forever.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.serve import faults
from repro.serve.pipeline import ServeConfig, SuggestionService
from repro.serve.store import open_store

#: seconds between liveness beats (clamped below heartbeat_s / 4)
_BEAT_S = 0.5


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild the serving service.

    Exactly one of ``bundle_path`` / ``models`` is populated:
    ``bundle_path`` ships a path to a saved bundle (directory or
    archive) that the worker loads itself; ``models`` ships the
    ``(parallel_model, clause_models)`` pair by pickle.  ``clauses``
    restricts which clause families a bundle-backed worker serves, so
    workers agree with the parent's model key.

    ``mode`` selects what the worker streams back: ``"suggest"`` (the
    default) runs the suggestion pipeline, ``"rewrite"`` additionally
    applies and verifies rewrites inside the worker — this is what
    distributes verification across shards.  ``verify`` /
    ``verify_config`` are the rewrite knobs (a frozen
    :class:`~repro.rewrite.verify.VerifyConfig` pickles fine).

    ``peers`` switches the worker into *remote* mode: instead of
    rebuilding a service locally it dials one of the listed ``repro
    serve`` daemons (home slot ``sid % len(peers)``, rotating past
    peers that refuse the connection) and relays the streamed results
    onto the queue — the supervisor sees the exact same message
    contract, so peer death and requeue are handled by the same
    retry/quarantine machinery as local worker death.
    ``peer_bundles`` (aligned with ``peers``) names the bundle each
    peer serves the shard from; ``peer_timeout_s`` bounds how long a
    silent peer connection is waited on before the relay gives up and
    dies for the supervisor to requeue.
    """

    config: ServeConfig
    store_root: str | None = None
    bundle_path: str | None = None
    models: tuple | None = None
    clauses: tuple[str, ...] = field(default_factory=tuple)
    mode: str = "suggest"
    verify: bool = True
    verify_config: object | None = None
    peers: tuple[str, ...] = field(default_factory=tuple)
    peer_bundles: tuple[str | None, ...] = field(default_factory=tuple)
    peer_timeout_s: float = 600.0

    def build_service(self) -> SuggestionService:
        if self.bundle_path is not None:
            from repro.artifacts import SuggesterBundle

            bundle = SuggesterBundle.load(self.bundle_path)
            parallel = bundle.parallel
            clause_models = {
                name: bundle.clause_models[name] for name in self.clauses
            }
        elif self.models is not None:
            parallel, clause_models = self.models
        else:
            raise ValueError(
                "WorkerSpec names neither a bundle path nor models"
            )
        store = (open_store(self.store_root)
                 if self.store_root is not None else None)
        return SuggestionService(parallel, dict(clause_models),
                                 self.config, store=store)


class _Heartbeat:
    """Background thread putting ``("beat", sid)`` on the queue.

    Beats come from a daemon thread, not the serving loop, so a worker
    that is merely *busy* (one huge file mid-forward) keeps beating —
    only a process that is truly wedged (or killed) goes silent and
    trips the supervisor's heartbeat timeout.
    """

    def __init__(self, sid: int, queue, interval: float) -> None:
        self._sid = sid
        self._queue = queue
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._queue.put(("beat", self._sid))
            except (OSError, ValueError):   # queue torn down mid-beat
                return


def _iter_results(service, spec: WorkerSpec, shard, queue, careful: bool):
    """Yield ``(local_index, result)`` for the shard.

    Batch mode runs the whole shard through the staged pipeline (best
    throughput).  Careful mode serves one file per pipeline pass with a
    ``claim`` message ahead of each, so the supervisor knows exactly
    which input was in flight if this process dies.
    """
    if not careful:
        if spec.mode == "rewrite":
            yield from service.iter_rewrites(
                shard.items, verify=spec.verify,
                rewrite_config=spec.verify_config)
        else:
            yield from service.iter_sources(shard.items)
        return
    for local_index, item in enumerate(shard.items):
        queue.put(("claim", shard.sid, shard.indices[local_index]))
        if spec.mode == "rewrite":
            results = service.iter_rewrites(
                [item], verify=spec.verify,
                rewrite_config=spec.verify_config)
        else:
            results = service.iter_sources([item])
        for _, result in results:
            yield local_index, result


def worker_main(spec: WorkerSpec, shard, queue,
                careful: bool = False) -> None:
    """Process entrypoint: serve one shard, streaming results back.

    Any soft failure — spec resolution, artifact loading, the pipeline
    itself — is reported as an ``("error", ...)`` message carrying the
    traceback, and the process exits nonzero so the parent detects the
    death even if the message is lost.  Hard deaths (SIGKILL, OOM) skip
    all of this; the supervisor catches them via exit codes and the
    heartbeat going silent.
    """
    heartbeat_s = getattr(spec.config, "heartbeat_s", 30.0)
    interval = min(_BEAT_S, max(0.05, heartbeat_s / 4.0))
    heartbeat = _Heartbeat(shard.sid, queue, interval)
    heartbeat.start()
    try:
        if spec.peers:
            # Remote mode: relay the shard through a peer daemon.
            # Peer loss mid-stream is a hard death (the supervisor
            # requeues, exactly as for a local worker death); a fleet
            # with no reachable peer raises into the soft-error path
            # below, because requeuing cannot help then.
            from repro.fabric.remote import relay_shard

            relay_shard(spec, shard, queue, heartbeat, careful=careful)
            return
        service = spec.build_service()
        files_done = 0
        for local_index, result in _iter_results(service, spec, shard,
                                                 queue, careful):
            action = faults.on_worker_file(shard.sid, files_done,
                                           result.name)
            if action == "hang":
                # A real hang freezes every thread; emulate by silencing
                # the heartbeat first, or the timeout could never fire.
                heartbeat.stop()
                time.sleep(faults.HANG_S)
            elif action == "kill":
                # Flush buffered messages (emitted files, the claim)
                # to the pipe before dying: the fault contract is
                # "killed after N files", so those N must be delivered
                # — SIGKILL would otherwise take the queue's feeder
                # thread down with its buffer.
                queue.close()
                queue.join_thread()
                faults.kill_self()
            queue.put(("file", shard.sid, shard.indices[local_index],
                       result.name, result.to_payload()))
            files_done += 1
        queue.put(("done", shard.sid, service.cache_stats()))
    except BaseException:
        queue.put(("error", shard.sid, traceback.format_exc()))
        sys.exit(1)
    finally:
        heartbeat.stop()
