"""Result streaming, supervision, and merge for sharded serving.

:func:`stream_shards` is the parent side of the sharded pipeline: it
plans the corpus into size-balanced shards (:mod:`repro.serve.plan`),
launches one worker process per shard (:mod:`repro.serve.worker`), and
yields ``(input_index, FileSuggestions)`` pairs as workers stream them
back over a shared result queue — the first finished file surfaces long
before the last shard completes.  :func:`merge_results` turns that
index-tagged stream into the public ordered / as-completed iterators.

The parent is a *supervisor*, not just a demultiplexer.  A worker that
dies hard (segfault, SIGKILL, OOM) or stops heartbeating is detected,
its unfinished files are requeued onto a respawned worker running in
careful (one-file-at-a-time, claim-before-compute) mode, with bounded
retries and exponential backoff; completed work is never redone because
finished files were already streamed (and committed to the shared
:class:`~repro.serve.store.SuggestionStore`).  Per-file blame tracking
turns a *reproducibly* lethal input into a quarantine: a file that
kills :data:`QUARANTINE_AFTER` workers is emitted as a structured
per-file error record (``error="quarantined: ..."``) instead of
aborting the run, and a lineage that exhausts its retry budget emits
``error="worker-retry: ..."`` records for whatever remained.  Soft
failures — an exception inside a worker — still travel back with their
traceback and raise :class:`ServeError`: they indicate a bug, not an
environment fault, and retrying a bug is noise.

Environments that cannot spawn processes at all degrade to the
in-process pipeline rather than failing the request, mirroring the
parse stage's fallback.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Iterator
from queue import Empty

from repro.serve.pipeline import FileSuggestions
from repro.serve.plan import Shard, plan_shards

#: seconds between liveness checks while the result queue is idle
_POLL_S = 0.25
#: seconds to wait for a worker to exit after its shard reported done
_JOIN_S = 10.0
#: a file that was in flight in this many dying workers is quarantined
QUARANTINE_AFTER = 2
#: ceiling on the exponential respawn backoff
_BACKOFF_CAP_S = 2.0


class ServeError(RuntimeError):
    """A shard worker failed or vanished while serving a corpus."""


def merge_results(
    results: Iterator[tuple[int, FileSuggestions]], *,
    ordered: bool = True,
) -> Iterator[FileSuggestions]:
    """Strip the index tags from a completion stream.

    ``ordered=True`` buffers out-of-order arrivals and emits strictly
    by input index; ``ordered=False`` passes results through in
    completion order (lowest first-result latency).
    """
    if not ordered:
        for _, fs in results:
            yield fs
        return
    buffered: dict[int, FileSuggestions] = {}
    next_index = 0
    for index, fs in results:
        buffered[index] = fs
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1
    # A gap would mean an upstream bug; still flush what arrived.
    for index in sorted(buffered):
        yield buffered[index]


class _Worker:
    """Supervisor-side state for one live worker process."""

    def __init__(self, proc, shard, *, careful: bool,
                 lineage: int) -> None:
        self.proc = proc
        self.shard = shard
        self.careful = careful
        #: original sid of the first worker in this retry chain — the
        #: retry budget is per lineage, not per respawn
        self.lineage = lineage
        self.claimed: int | None = None
        self.last_seen = time.monotonic()


def _error_record(revive, name: str, code: str, detail: str):
    """A structured per-file failure in the caller's result type.

    The payload carries the union of the fields every revive function
    reads (suggestions + rewrites), so the same record shape works for
    both the suggest and the verified-rewrite stream.
    """
    payload = {"error": f"{code}: {detail}", "suggestions": [],
               "rewrites": [], "rewritten_source": None}
    return revive(name, payload)


def stream_shards(
    spec, named_sources: list[tuple[str, str]], n_shards: int,
    on_stats=None, revive=None,
) -> Iterator[tuple[int, FileSuggestions]]:
    """Run ``named_sources`` through ``n_shards`` supervised workers.

    ``spec`` is a :class:`~repro.serve.worker.WorkerSpec`; each worker
    rebuilds the full service from it, runs parse → encode → forward →
    fan-out (plus verified rewriting in ``mode="rewrite"``) locally for
    its shard, commits to the shared persistent store, and streams
    per-file results back as they complete.  ``on_stats`` receives each
    worker's ``cache_stats()`` dict when its shard finishes, so the
    parent can fold shard work into its own counters.  ``revive``
    rebuilds each result from its ``(name, payload)`` wire form;
    default: :meth:`FileSuggestions.from_payload` (rewrite streams pass
    :meth:`FileRewrite.from_payload`).

    Retry behaviour is governed by the spec's
    :class:`~repro.serve.pipeline.ServeConfig`: ``max_retries`` worker
    deaths per lineage, ``heartbeat_s`` silence before a live-but-mute
    worker is presumed hung and killed, ``retry_backoff_s`` base of the
    exponential respawn delay.
    """
    from repro.serve.worker import worker_main

    if revive is None:
        revive = FileSuggestions.from_payload
    config = getattr(spec, "config", None)
    max_retries = getattr(config, "max_retries", 3)
    heartbeat_s = getattr(config, "heartbeat_s", 30.0)
    backoff_s = getattr(config, "retry_backoff_s", 0.05)

    shards = plan_shards(list(named_sources), n_shards)
    if not shards:
        return
    items_by_index: dict[int, tuple[str, str]] = {}
    for shard in shards:
        for index, item in zip(shard.indices, shard.items):
            items_by_index[index] = item

    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    workers: dict[int, _Worker] = {}
    # fresh sids for respawned shards, so per-sid fault plans and
    # worker messages never alias a dead worker's
    next_sid_box = [max(s.sid for s in shards) + 1]
    received: set[int] = set()
    blame: dict[int, int] = {}
    deaths: dict[int, int] = {}

    def _spawn(shard: Shard, *, careful: bool, lineage: int) -> None:
        proc = ctx.Process(target=worker_main,
                           args=(spec, shard, queue, careful),
                           daemon=True)
        proc.start()
        workers[shard.sid] = _Worker(proc, shard, careful=careful,
                                     lineage=lineage)

    try:
        for shard in shards:
            _spawn(shard, careful=False, lineage=shard.sid)
    except (OSError, PermissionError):
        # No process support here (sandboxes, exhausted pids): serve
        # in-process instead of failing the request.
        for worker in workers.values():
            worker.proc.terminate()
        named = list(named_sources)
        if getattr(spec, "peers", ()):
            # Remote shards don't need processes to parallelize — the
            # peers compute; relay the whole corpus through one of
            # them from this process.
            from repro.fabric.remote import iter_inline

            yield from iter_inline(spec, named, revive)
            return
        service = spec.build_service()
        if getattr(spec, "mode", "suggest") == "rewrite":
            yield from service.iter_rewrites(
                named, verify=spec.verify,
                rewrite_config=spec.verify_config)
        else:
            yield from service.iter_sources(named)
        if on_stats is not None:
            on_stats(service.cache_stats())
        return

    def _handle(message) -> Iterator[tuple[int, FileSuggestions]]:
        """Dispatch one worker message, yielding any finished file."""
        kind, sid, *rest = message
        worker = workers.get(sid)
        if worker is not None:
            worker.last_seen = time.monotonic()
        if kind == "beat":
            return
        if kind == "claim":
            if worker is not None:
                worker.claimed = rest[0]
        elif kind == "file":
            index, name, payload = rest
            # Late messages from an already-buried worker still carry
            # valid work — accept anything not yet delivered.
            if index not in received:
                received.add(index)
                if worker is not None and worker.claimed == index:
                    worker.claimed = None
                yield index, revive(name, payload)
        elif kind == "done":
            if worker is not None:
                del workers[sid]
                worker.proc.join(timeout=_JOIN_S)
                if on_stats is not None:
                    on_stats(rest[0])
        elif kind == "error":
            raise ServeError(f"shard worker {sid} failed:\n{rest[0]}")
        else:  # pragma: no cover - protocol safety net
            raise ServeError(f"unknown worker message kind {kind!r}")

    def _bury(sid: int) -> Iterator[tuple[int, FileSuggestions]]:
        """Handle one dead worker: blame, quarantine, respawn."""
        worker = workers.pop(sid)
        worker.proc.join(timeout=_JOIN_S)
        unfinished = [i for i in worker.shard.indices
                      if i not in received]
        if not unfinished:
            # Died after its last file (the "done" message was lost):
            # the work arrived, only the stats did not.  Not a retry.
            return
        count = deaths[worker.lineage] = deaths.get(worker.lineage,
                                                    0) + 1
        if worker.careful:
            # Careful mode pins the in-flight file: the claim when it
            # arrived, else the first unfinished file — careful
            # workers serve strictly in shard order, and a crash can
            # lose the buffered claim with the process.  Blaming one
            # suspect at most under-counts the true killer by a retry
            # round; it never smears innocents into quarantine.
            if (worker.claimed is not None
                    and worker.claimed not in received):
                suspect = worker.claimed
            else:
                suspect = unfinished[0]
            blame[suspect] = blame.get(suspect, 0) + 1
        else:
            # Batch mode: any unfinished file could be the killer.
            for index in unfinished:
                blame[index] = blame.get(index, 0) + 1
        if count > max_retries:
            for index in unfinished:
                received.add(index)
                yield index, _error_record(
                    revive, items_by_index[index][0], "worker-retry",
                    f"shard worker died {count} times; retry budget "
                    f"({max_retries}) exhausted")
            return
        remaining: list[int] = []
        for index in unfinished:
            if blame.get(index, 0) >= QUARANTINE_AFTER:
                received.add(index)
                yield index, _error_record(
                    revive, items_by_index[index][0], "quarantined",
                    f"file was in flight in {blame[index]} worker "
                    f"deaths; not retrying")
            else:
                remaining.append(index)
        if not remaining:
            return
        delay = min(_BACKOFF_CAP_S, backoff_s * (2 ** (count - 1)))
        if delay > 0:
            time.sleep(delay)
        shard = Shard(sid=next_sid_box[0])
        next_sid_box[0] += 1
        for index in remaining:
            shard.add(index, items_by_index[index])
        try:
            _spawn(shard, careful=True, lineage=worker.lineage)
        except (OSError, PermissionError):
            for index in remaining:
                received.add(index)
                yield index, _error_record(
                    revive, items_by_index[index][0], "worker-retry",
                    "could not respawn a shard worker")

    try:
        while workers:
            try:
                message = queue.get(timeout=_POLL_S)
            except Empty:
                now = time.monotonic()
                suspects = []
                for sid, worker in list(workers.items()):
                    if worker.proc.exitcode is not None:
                        suspects.append(sid)
                    elif now - worker.last_seen > heartbeat_s:
                        # Alive but silent past the heartbeat window:
                        # presumed hung; reap it and requeue its work.
                        worker.proc.kill()
                        suspects.append(sid)
                if suspects:
                    # Drain messages that raced the exit before judging
                    # what each dead worker actually left unfinished.
                    for message in _drain(queue):
                        yield from _handle(message)
                    for sid in suspects:
                        if sid in workers:
                            yield from _bury(sid)
                continue
            yield from _handle(message)
    finally:
        for worker in workers.values():
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=_JOIN_S)
        queue.close()


def _drain(queue) -> list:
    messages = []
    while True:
        try:
            messages.append(queue.get_nowait())
        except Empty:
            return messages
