"""Result streaming and merge for sharded serving.

:func:`stream_shards` is the parent side of the sharded pipeline: it
plans the corpus into size-balanced shards (:mod:`repro.serve.plan`),
launches one worker process per shard (:mod:`repro.serve.worker`), and
yields ``(input_index, FileSuggestions)`` pairs as workers stream them
back over a shared result queue — the first finished file surfaces long
before the last shard completes.  :func:`merge_results` turns that
index-tagged stream into the public ordered / as-completed iterators.

Failure is loud and bounded: a worker that dies without reporting its
shard done (segfault, ``os._exit``, OOM-kill) raises :class:`ServeError`
in the consumer instead of hanging the stream, and an exception inside
a worker travels back with its traceback.  Environments that cannot
spawn processes at all degrade to the in-process pipeline rather than
failing the request, mirroring the parse stage's fallback.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterator
from queue import Empty

from repro.serve.pipeline import FileSuggestions
from repro.serve.plan import plan_shards

#: seconds between liveness checks while the result queue is idle
_POLL_S = 0.25
#: seconds to wait for a worker to exit after its shard reported done
_JOIN_S = 10.0


class ServeError(RuntimeError):
    """A shard worker failed or vanished while serving a corpus."""


def merge_results(
    results: Iterator[tuple[int, FileSuggestions]], *,
    ordered: bool = True,
) -> Iterator[FileSuggestions]:
    """Strip the index tags from a completion stream.

    ``ordered=True`` buffers out-of-order arrivals and emits strictly
    by input index; ``ordered=False`` passes results through in
    completion order (lowest first-result latency).
    """
    if not ordered:
        for _, fs in results:
            yield fs
        return
    buffered: dict[int, FileSuggestions] = {}
    next_index = 0
    for index, fs in results:
        buffered[index] = fs
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1
    # A gap would mean an upstream bug; still flush what arrived.
    for index in sorted(buffered):
        yield buffered[index]


def stream_shards(
    spec, named_sources: list[tuple[str, str]], n_shards: int,
    on_stats=None, revive=None,
) -> Iterator[tuple[int, FileSuggestions]]:
    """Run ``named_sources`` through ``n_shards`` worker processes.

    ``spec`` is a :class:`~repro.serve.worker.WorkerSpec`; each worker
    rebuilds the full service from it, runs parse → encode → forward →
    fan-out (plus verified rewriting in ``mode="rewrite"``) locally for
    its shard, commits to the shared persistent store, and streams
    per-file results back as they complete.  ``on_stats`` receives each
    worker's ``cache_stats()`` dict when its shard finishes, so the
    parent can fold shard work into its own counters.  ``revive``
    rebuilds each result from its ``(name, payload)`` wire form;
    default: :meth:`FileSuggestions.from_payload` (rewrite streams pass
    :meth:`FileRewrite.from_payload`).
    """
    from repro.serve.worker import worker_main

    if revive is None:
        revive = FileSuggestions.from_payload
    shards = plan_shards(list(named_sources), n_shards)
    if not shards:
        return
    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    procs: dict[int, multiprocessing.Process] = {}
    try:
        for shard in shards:
            proc = ctx.Process(target=worker_main,
                               args=(spec, shard, queue), daemon=True)
            proc.start()
            procs[shard.sid] = proc
    except (OSError, PermissionError):
        # No process support here (sandboxes, exhausted pids): serve
        # in-process instead of failing the request.
        for proc in procs.values():
            proc.terminate()
        service = spec.build_service()
        named = list(named_sources)
        if getattr(spec, "mode", "suggest") == "rewrite":
            yield from service.iter_rewrites(
                named, verify=spec.verify,
                rewrite_config=spec.verify_config)
        else:
            yield from service.iter_sources(named)
        if on_stats is not None:
            on_stats(service.cache_stats())
        return

    done: set[int] = set()
    try:
        while len(done) < len(shards):
            try:
                kind, sid, *rest = queue.get(timeout=_POLL_S)
            except Empty:
                dead = [sid for sid, proc in procs.items()
                        if sid not in done and proc.exitcode is not None]
                if dead:
                    # Drain messages that raced the exit before judging.
                    leftovers = _drain(queue)
                    for kind, sid, *rest in leftovers:
                        yield from _handle(kind, sid, rest, done,
                                           on_stats, revive)
                    still_dead = [sid for sid in dead if sid not in done]
                    if still_dead:
                        codes = {sid: procs[sid].exitcode
                                 for sid in still_dead}
                        raise ServeError(
                            f"shard worker(s) {sorted(codes)} exited "
                            f"(exit codes {codes}) before completing "
                            f"their shard; partial results were "
                            f"discarded"
                        )
                continue
            yield from _handle(kind, sid, rest, done, on_stats, revive)
        for proc in procs.values():
            proc.join(timeout=_JOIN_S)
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_S)
        queue.close()


def _handle(kind: str, sid: int, rest: list, done: set[int],
            on_stats, revive) -> Iterator[tuple[int, FileSuggestions]]:
    """Dispatch one worker message, yielding any finished file."""
    if kind == "file":
        index, name, payload = rest
        yield index, revive(name, payload)
    elif kind == "done":
        done.add(sid)
        if on_stats is not None:
            on_stats(rest[0])
    elif kind == "error":
        raise ServeError(f"shard worker {sid} failed:\n{rest[0]}")
    else:  # pragma: no cover - protocol safety net
        raise ServeError(f"unknown worker message kind {kind!r}")


def _drain(queue) -> list:
    messages = []
    while True:
        try:
            messages.append(queue.get_nowait())
        except Empty:
            return messages
