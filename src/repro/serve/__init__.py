"""Batched suggestion serving over whole files and directories.

``repro.serve`` is the throughput-oriented face of :mod:`repro.suggest`:
it parses many C files (optionally across worker processes), extracts
every outermost loop with per-function liveness, encodes each distinct
loop once against a shared vocabulary, and runs one block-diagonal
batched forward per model for the entire workload before fanning the
results back out per file.
"""

from repro.serve.parse import ParsedFile, parse_many, parse_one
from repro.serve.pipeline import (
    FileSuggestions,
    ServeConfig,
    SuggestionService,
    build_service,
)

__all__ = [
    "FileSuggestions",
    "ParsedFile",
    "ServeConfig",
    "SuggestionService",
    "build_service",
    "parse_many",
    "parse_one",
]
