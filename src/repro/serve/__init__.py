"""Sharded, streaming suggestion serving over files and directories.

``repro.serve`` is the throughput-oriented face of :mod:`repro.suggest`,
built as explicit stages: :mod:`~repro.serve.plan` partitions a corpus
into size-balanced shards, :mod:`~repro.serve.worker` runs the whole
parse → encode → block-diagonal forward → fan-out pipeline inside each
worker process, and :mod:`~repro.serve.stream` streams per-file results
back over a result queue as they complete — ordered or as-completed.
:class:`SuggestionService.stream_dir` is the streaming API;
``suggest_dir`` collects it.  A :class:`SuggestionStore` persists parse
results and finished suggestions across processes, keyed by file
content hash and model fingerprint, so warm runs over unchanged files
skip both the frontend and every model forward — and every shard
worker consults and commits the same store.

The same pipeline is addressable over the network:
:mod:`~repro.serve.protocol` defines the versioned, schema-checked
wire frames (length-prefixed JSON), :class:`SuggestServer`
(``repro serve --listen``) is the long-lived daemon multiplexing many
concurrent clients and corpora over one warm service, and
:mod:`repro.client` is the matching client library — remote results
are byte-identical to the in-process path.

Failure is survived, not just reported: :mod:`~repro.serve.stream`
supervises the shard workers (retry with backoff, heartbeat timeouts,
per-file blame and quarantine), :mod:`repro.client` carries a
``RetryPolicy`` for busy/restarting daemons, and
:mod:`~repro.serve.faults` injects deterministic worker kills, hangs,
torn store writes and refused bundle loads so all of it is testable.
"""

from repro.serve.faults import Fault, FaultError, FaultPlan
from repro.serve.parse import ParsedFile, parse_many, parse_one
from repro.serve.pipeline import (
    FileSuggestions,
    ServeConfig,
    SuggestionService,
    build_service,
)
from repro.serve.plan import (
    Shard,
    auto_shards,
    plan_peer_shards,
    plan_shards,
    resolve_shards,
)
from repro.serve.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError
from repro.serve.server import SuggestServer
from repro.serve.store import (
    STORE_VERSION,
    SuggestionStore,
    content_key,
    open_store,
)
from repro.serve.stream import ServeError, merge_results, stream_shards
from repro.serve.worker import WorkerSpec

__all__ = [
    "Fault",
    "FaultError",
    "FaultPlan",
    "FileSuggestions",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ParsedFile",
    "ProtocolError",
    "STORE_VERSION",
    "ServeConfig",
    "ServeError",
    "Shard",
    "SuggestServer",
    "SuggestionService",
    "SuggestionStore",
    "WorkerSpec",
    "auto_shards",
    "build_service",
    "content_key",
    "merge_results",
    "open_store",
    "parse_many",
    "parse_one",
    "plan_peer_shards",
    "plan_shards",
    "resolve_shards",
    "stream_shards",
]
