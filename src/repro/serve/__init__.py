"""Batched suggestion serving over whole files and directories.

``repro.serve`` is the throughput-oriented face of :mod:`repro.suggest`:
it parses many C files (optionally across worker processes), extracts
every outermost loop with per-function liveness, encodes each distinct
loop once against a shared vocabulary, and runs one block-diagonal
batched forward per model for the entire workload before fanning the
results back out per file.  A :class:`SuggestionStore` persists parse
results and finished suggestions across processes, keyed by file
content hash and model fingerprint, so warm runs over unchanged files
skip both the frontend and every model forward.
"""

from repro.serve.parse import ParsedFile, parse_many, parse_one
from repro.serve.pipeline import (
    FileSuggestions,
    ServeConfig,
    SuggestionService,
    build_service,
)
from repro.serve.store import STORE_VERSION, SuggestionStore, content_key

__all__ = [
    "FileSuggestions",
    "ParsedFile",
    "STORE_VERSION",
    "ServeConfig",
    "SuggestionService",
    "SuggestionStore",
    "build_service",
    "content_key",
    "parse_many",
    "parse_one",
]
