"""The long-lived suggestion daemon (``repro serve --listen``).

One process, one (or several, name-addressed) warm
:class:`~repro.serve.pipeline.SuggestionService`, many concurrent
clients: the server binds a TCP port or unix socket, performs the
:mod:`~repro.serve.protocol` handshake per connection, and serves
suggest requests over the shared services — so every client benefits
from the same warm :class:`~repro.serve.store.SuggestionStore`, the
same loaded models, and the same encode caches, instead of each
invocation paying model load + parse + forward from scratch.

Concurrency model: a single asyncio event loop owns every socket
(accepts, frame reads, frame writes), so a thousand idle connections
cost a thousand coroutines, not a thousand threads.  Compute is
CPU-bound pure python and runs off-loop: each named bundle has an
*admission lane* — a bounded queue of accepted requests — and a
micro-batcher that drains the lane into coalesced *rounds*, executed
one at a time per bundle on a small thread pool.  A round joins the
workloads of every queued request through
:meth:`SuggestionService.iter_joint`, so concurrent requests from
*different* clients share one block-diagonal forward (identical file
content across clients is computed exactly once), and the replies fan
back out per (client, request, file) byte-identical to serving each
request alone.

Admission control and fairness:

- a lane holding ``queue_depth`` waiting requests refuses the next one
  with a ``busy`` error frame instead of buffering without bound;
- each round takes at most ``round_files`` files, drawn round-robin
  across the waiting requests — one bulk client streaming a large
  corpus is chunked across rounds while small interactive requests
  join (and finish within) every round, so bulk never starves
  interactive;
- ``batch_window_ms`` is the micro-batch window: a request arriving at
  an *idle* lane waits that long for concurrent arrivals to coalesce
  with.  The window is skipped when only one client is connected
  (flush-on-idle — single-client latency does not regress) and after a
  busy round (work that queued during the round has already
  coalesced).

Replies never block compute: frames are queued per connection and
written by a dedicated writer coroutine, so a slow or stalled reader
delays only itself — if it stops draining for ``_WRITE_TIMEOUT_S`` (or
falls a full outbox behind) it is dropped like a dead client while the
round keeps streaming to everyone else.

Lifecycle: :meth:`SuggestServer.start` binds and serves on a
background thread (tests, embedding); :meth:`serve_forever` serves on
the calling thread (the CLI).  :meth:`shutdown` drains — new requests
are refused with a ``shutting-down`` error frame, in-flight replies
run to completion, idle connections close immediately — then the
listener closes.  A client that vanishes mid-stream only loses its own
connection; its undelivered files are dropped and every other client
keeps streaming.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import hashlib
import os
import socket
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.serve import protocol
from repro.serve.pipeline import ServeConfig, SuggestionService
from repro.serve.store import open_store

#: seconds one reply frame may stall on client backpressure before the
#: client is considered gone
_WRITE_TIMEOUT_S = 30.0
#: frames a connection's outbox may buffer before a non-reading client
#: is dropped (bounds per-connection memory)
_OUTBOX_FRAMES = 512
#: seconds shutdown waits for in-flight replies before cancelling them
_DRAIN_GRACE_S = 30.0

#: waiting requests per bundle lane before admission refuses with
#: a ``busy`` error frame
DEFAULT_QUEUE_DEPTH = 64
#: micro-batch window (milliseconds) an idle lane waits for concurrent
#: requests to coalesce; skipped with a single connected client
DEFAULT_BATCH_WINDOW_MS = 2.0
#: files per coalesced compute round — the fairness quantum: a bulk
#: request is chunked at this grain so interactive requests join every
#: round
DEFAULT_ROUND_FILES = 256

_CLOSE = object()       # outbox sentinel: flush, then close the writer


class _Connection:
    """One accepted client connection; all state lives on the loop.

    Outgoing frames are *queued* (already encoded) and written by a
    dedicated writer task, so the compute path never blocks on a slow
    reader: :meth:`send` either enqueues and returns ``True``, or
    declares the client gone.
    """

    def __init__(self, reader, writer, max_frame_bytes: int) -> None:
        self.reader = reader
        self.writer = writer
        self.max_frame_bytes = max_frame_bytes
        self.dead = False
        self.closed = False
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=_OUTBOX_FRAMES)
        self.writer_task: asyncio.Task | None = None

    def send(self, message) -> bool:
        """Encode + queue one frame; ``False`` when the client is gone.

        Raises :class:`~repro.serve.protocol.ProtocolError` when the
        encoded frame exceeds the frame limit — nothing is queued, so
        the caller can still send a clean error frame instead.
        """
        if self.dead or self.closed:
            return False
        frame = protocol.encode_frame(message.to_wire(),
                                      self.max_frame_bytes)
        try:
            self.outbox.put_nowait(frame)
        except asyncio.QueueFull:
            # the client stopped reading a full outbox ago: drop it
            # rather than buffer its reply without bound
            self.abort()
            return False
        return True

    def abort(self) -> None:
        """Declare the client gone and tear the transport down."""
        self.dead = True
        if self.writer_task is not None and not self.writer_task.done():
            self.writer_task.cancel()

    def close(self) -> None:
        """Flush queued frames, then close (writer task finishes it)."""
        if self.closed:
            return
        self.closed = True
        try:
            self.outbox.put_nowait(_CLOSE)
        except asyncio.QueueFull:
            self.abort()


class _Pending:
    """One admitted request: files to schedule + reply bookkeeping.

    The admission lane schedules its files across compute rounds
    (``take``); deliveries arrive back on the event loop in completion
    order and are re-sequenced here for ``ordered`` streams and batch
    replies.  ``done`` resolves once the terminating frame (``done``
    or ``error``) is queued — the connection handler awaits it before
    reading the client's next request.
    """

    def __init__(self, conn: _Connection, request, named: list,
                 service: SuggestionService, future) -> None:
        self.conn = conn
        self.request = request
        self.files = [(i, name, source)
                      for i, (name, source) in enumerate(named)]
        self.total = len(self.files)
        self.service = service
        self.done = future
        #: absolute monotonic deadline, converted from the request's
        #: relative ``deadline_s`` at admission; ``None`` = patient
        deadline_s = getattr(request, "deadline_s", None)
        self.deadline = (None if deadline_s is None
                         else time.monotonic() + deadline_s)
        self._cursor = 0        # next unscheduled file
        self._delivered = 0
        self._errors = 0
        self._next_emit = 0     # ordered-stream resume point
        self._buffer: dict = {}
        self._batch: list = []
        self.finished = False

    @property
    def fully_scheduled(self) -> bool:
        return self._cursor >= self.total

    @property
    def expired(self) -> bool:
        return (self.deadline is not None
                and time.monotonic() > self.deadline)

    def take(self):
        """The next unscheduled ``(index, name, source)``, or ``None``.

        An expired request schedules nothing further — the client has
        given up, so its remaining files must not occupy compute
        rounds other clients are waiting for.
        """
        if self._cursor >= self.total or self.expired:
            return None
        item = self.files[self._cursor]
        self._cursor += 1
        return item

    def _send_frame(self, frame) -> None:
        try:
            self.conn.send(frame)
        except protocol.ProtocolError as exc:
            self.fail("serve-error",
                      f"reply frame too large ({exc})")

    def deliver(self, index: int, fs) -> None:
        """One finished file (event loop only; completion order)."""
        if self.finished:
            return
        if self.expired:
            self.fail("deadline-exceeded",
                      f"request deadline of "
                      f"{self.request.deadline_s:.3f}s expired "
                      f"mid-reply; {self._delivered}/{self.total} "
                      f"files were delivered")
            return
        self._delivered += 1
        self._errors += fs.error is not None
        frame = protocol.FileResult(index=index, name=fs.name,
                                    payload=fs.to_payload())
        if not self.request.stream:
            self._batch.append(frame)
        elif self.request.ordered:
            self._buffer[index] = frame
            while self._next_emit in self._buffer:
                self._send_frame(self._buffer.pop(self._next_emit))
                self._next_emit += 1
        else:
            self._send_frame(frame)
        if self._delivered >= self.total:
            self.finish()

    def finish(self) -> None:
        """Queue the terminating reply frames and resolve ``done``."""
        if self.finished:
            return
        self.finished = True
        try:
            if not self.request.stream:
                files = tuple(sorted(self._batch, key=lambda f: f.index))
                self.conn.send(protocol.BatchResult(files=files))
            self.conn.send(protocol.Done(
                files=self._delivered, errors=self._errors,
                stats=self.service.cache_stats()))
        except protocol.ProtocolError as exc:
            # the whole reply exceeds one frame; nothing has hit the
            # wire, so a clean error frame can still follow
            self._send_error(
                "serve-error",
                f"batch reply too large for one frame ({exc}); "
                f"request stream=True instead")
        self._resolve()

    def fail(self, code: str, message: str) -> None:
        """Terminate the reply with an error frame (idempotent)."""
        if self.finished:
            return
        self.finished = True
        self._send_error(code, message)
        self._resolve()

    def cancel(self) -> None:
        """The client vanished: resolve without sending anything."""
        self.finished = True
        self._resolve()

    def _send_error(self, code: str, message: str) -> None:
        try:
            self.conn.send(protocol.Error(code=code, message=message))
        except protocol.ProtocolError:
            pass
        except Exception:
            pass

    def _resolve(self) -> None:
        if not self.done.done():
            self.done.set_result(None)


class _Lane:
    """Admission queue + micro-batcher state for one named bundle."""

    def __init__(self, name: str, service: SuggestionService) -> None:
        self.name = name
        self.service = service
        self.queue: deque[_Pending] = deque()
        self.wake = asyncio.Event()
        #: no round has run since the queue last emptied — the
        #: micro-batch window only applies to such cold arrivals
        self.idle = True
        #: a compute round is currently executing (health reporting)
        self.running = False


class SuggestServer:
    """A network front over warm, name-addressed suggestion services.

    ``services`` maps bundle names to built
    :class:`SuggestionService` instances; ``default`` names the one a
    request without a ``bundle`` field is served from (defaults to the
    first entry).  Exactly one of ``host``/``port`` (TCP; ``port=0``
    binds an ephemeral port) or ``unix_path`` selects the transport.

    ``queue_depth`` bounds each bundle's admission queue (excess
    requests are refused with a ``busy`` error frame),
    ``batch_window_ms`` is the micro-batch coalescing window, and
    ``round_files`` caps the files per coalesced compute round — the
    fairness quantum between bulk and interactive clients.
    """

    def __init__(self, services: dict[str, SuggestionService], *,
                 default: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_path: str | Path | None = None,
                 local_roots: tuple | list | None = None,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                 server_id: str = "repro.serve",
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
                 round_files: int = DEFAULT_ROUND_FILES,
                 degraded: dict[str, str] | None = None,
                 serve_config: ServeConfig | None = None,
                 cache_dir: str | Path | None = None,
                 bundle_cache_dir: str | Path | None = None) -> None:
        if not services and bundle_cache_dir is None:
            raise ValueError("a SuggestServer needs at least one service")
        self.services = dict(services)
        #: accepting ``bundle-push``: pushed archives are cached here
        #: under their content hash; ``None`` refuses pushes.  A server
        #: with pushes enabled may start with *no* services and acquire
        #: them all over the wire (self-provisioning peers).
        self.bundle_cache_dir = (None if bundle_cache_dir is None
                                 else Path(bundle_cache_dir))
        #: config + store root that services built from pushed bundles
        #: inherit, so a pushed advisor serves exactly like a local one
        self._serve_config = serve_config
        self._cache_dir = cache_dir
        #: archive sha256 → serving name, for ``bundle-have`` lookups
        #: and hash-prefix bundle refs in requests
        self._hashes: dict[str, str] = {}
        self._own_store = None      # lazily opened over _cache_dir
        #: bundles that failed to load at startup: name → reason.  The
        #: daemon serves what it has and advertises what it lost, so a
        #: fleet rollout with one corrupt artifact degrades instead of
        #: flapping; requests for a degraded bundle get a clean
        #: ``unknown-bundle`` refusal naming the load failure.
        self.degraded = dict(degraded or {})
        #: directories the server may read for ``paths``/``dir``
        #: requests; ``None`` (the default) disables server-side reads
        #: entirely — an open TCP daemon must not be a file-read
        #: oracle over its whole filesystem
        self.local_roots = (None if local_roots is None else
                            tuple(Path(r).resolve() for r in local_roots))
        self.default = default
        if self.default is None and self.services:
            self.default = next(iter(self.services))
        if self.default is not None and self.default not in self.services:
            raise ValueError(f"default bundle {self.default!r} is not "
                             f"among {sorted(self.services)}")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if round_files < 1:
            raise ValueError("round_files must be >= 1")
        self.max_frame_bytes = max_frame_bytes
        self.server_id = server_id
        self.queue_depth = queue_depth
        self.batch_window_ms = float(batch_window_ms)
        self.round_files = round_files
        self._shutdown_lock = threading.Lock()
        self._shutting_down = False
        self._draining = threading.Event()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_evt: asyncio.Event | None = None
        self._lanes: dict[str, _Lane] = {}
        self._lane_tasks: list[asyncio.Task] = []
        self._conns: set[_Connection] = set()
        self._handler_tasks: set[asyncio.Task] = set()
        self._executor: ThreadPoolExecutor | None = None
        self.unix_path = None if unix_path is None else str(unix_path)
        # Bind synchronously so ``address`` is valid (and bind errors
        # raise here) before any event loop exists.
        if self.unix_path is not None:
            if not hasattr(socket, "AF_UNIX"):
                raise ValueError(
                    "unix sockets are not supported on this platform; "
                    "use host/port")
            self._reclaim_stale_socket(self.unix_path)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.bind(self.unix_path)
                sock.listen(128)
            except BaseException:
                sock.close()
                raise
        else:
            sock = socket.create_server((host, port), backlog=128,
                                        reuse_port=False)
        sock.setblocking(False)
        self._sock = sock

    @staticmethod
    def _reclaim_stale_socket(path: str) -> None:
        """Unlink a leftover socket file from a crashed daemon.

        A SIGKILLed server leaves its socket file behind and the next
        bind fails with EADDRINUSE.  Probe it first: a live listener
        accepts the connection and keeps its socket; only a dead one
        (connection refused) is reclaimed.
        """
        if not Path(path).is_socket():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(path)
        except (ConnectionRefusedError, socket.timeout, TimeoutError):
            try:
                Path(path).unlink()
            except OSError:
                pass
        except OSError:
            pass        # unreadable/odd socket: let bind report it
        else:
            raise OSError(
                f"a server is already listening on {path}")
        finally:
            probe.close()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound address: ``host:port`` or the unix socket path."""
        if self.unix_path is not None:
            return self.unix_path
        host, port = self._sock.getsockname()[:2]
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        try:
            asyncio.run(self._main())
        finally:
            if self.unix_path is not None:
                try:
                    Path(self.unix_path).unlink()
                except OSError:
                    pass
            self._stopped.set()

    def start(self) -> "SuggestServer":
        """Serve on a background thread; returns once accepting."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve-loop",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("server failed to start accepting")
        return self

    def shutdown(self) -> None:
        """Drain and stop: refuse new requests, finish in-flight
        replies, close the listener.

        Safe to call from any thread (except the one running
        :meth:`serve_forever`) and from several at once: the first
        caller performs the drain, every other caller blocks until it
        has finished — so a signal handler's shutdown and a main
        loop's ``finally`` cannot race the process exit past a
        half-drained server.
        """
        with self._shutdown_lock:
            first = not self._shutting_down
            self._shutting_down = True
        if not first:
            self._stopped.wait(timeout=60.0)
            return
        self._draining.set()
        loop = self._loop
        if loop is not None and not self._stopped.is_set():
            try:
                loop.call_soon_threadsafe(self._begin_drain)
            except RuntimeError:
                pass        # loop already closed; serve_forever's
                            # finally sets _stopped
            self._stopped.wait(timeout=60.0)
        else:
            # never served (or already finished): just close the bind
            try:
                self._sock.close()
            except OSError:
                pass
            if self.unix_path is not None:
                try:
                    Path(self.unix_path).unlink()
                except OSError:
                    pass
            self._stopped.set()
        if (self._thread is not None
                and self._thread is not threading.current_thread()):
            self._thread.join(timeout=30.0)

    def _begin_drain(self) -> None:
        if self._drain_evt is not None:
            self._drain_evt.set()

    def __enter__(self) -> "SuggestServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- the event loop ------------------------------------------------------

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_evt = asyncio.Event()
        if self._draining.is_set():     # shutdown raced serve start
            self._drain_evt.set()
        self._lanes = {name: _Lane(name, service)
                       for name, service in self.services.items()}
        workers = max(1, len(self._lanes))
        if self.bundle_cache_dir is not None:
            # headroom for lanes created by bundle pushes mid-serve
            workers = max(workers, 4)
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-serve-compute")
        self._lane_tasks = [loop.create_task(self._lane_loop(lane),
                                             name=f"repro-lane-{lane.name}")
                            for lane in self._lanes.values()]
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._on_connect, sock=self._sock)
        else:
            server = await asyncio.start_server(
                self._on_connect, sock=self._sock)
        self._started.set()
        try:
            await self._drain_evt.wait()
            server.close()              # stop accepting
            await server.wait_closed()
            # idle handlers exit at the drain signal; in-flight
            # replies run to completion
            if self._handler_tasks:
                await asyncio.wait(set(self._handler_tasks),
                                   timeout=_DRAIN_GRACE_S)
        finally:
            for task in list(self._handler_tasks):
                task.cancel()
            for task in self._lane_tasks:
                task.cancel()
            await asyncio.gather(*self._lane_tasks,
                                 return_exceptions=True)
            for conn in list(self._conns):
                conn.abort()
            self._executor.shutdown(wait=True, cancel_futures=True)
            server.close()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_registry(cls, registry, config: ServeConfig | None = None,
                      cache_dir: str | Path | None = None,
                      **net) -> "SuggestServer":
        """One warm service per registered bundle, sharing one store.

        Registry content hashes are carried over, so clients can
        address these bundles by hash prefix and ``bundle-have``
        answers truthfully for archives the daemon loaded locally.
        """
        from repro.serve.pipeline import build_service

        services = {
            name: build_service(registry.get(name), config,
                                cache_dir=cache_dir)
            for name in registry.names()
        }
        server = cls(services, default=registry.default,
                     serve_config=config, cache_dir=cache_dir, **net)
        server._hashes.update({sha: name for name, sha
                               in registry.hashes().items()})
        return server

    # -- capabilities --------------------------------------------------------

    def capabilities(self) -> dict:
        return {
            "bundles": sorted(self.services),
            "default_bundle": self.default,
            "clauses": {
                name: sorted(service.suggester.clause_models)
                for name, service in self.services.items()
            },
            "model_keys": {
                name: service._model_key
                for name, service in self.services.items()
            },
            "max_frame_bytes": self.max_frame_bytes,
            "streaming": True,
            "rewrite": True,
            "server_side_paths": self.local_roots is not None,
            "coalescing": True,
            "queue_depth": self.queue_depth,
            "batch_window_ms": self.batch_window_ms,
            "ping": True,
            "deadlines": True,
            #: bundles that failed to load at startup: name → reason
            "degraded": dict(self.degraded),
            # -- fabric: this daemon can be a peer in a serving fleet
            "fabric": True,
            "bundle_push": self.bundle_cache_dir is not None,
            "network_store": self.shared_store() is not None,
        }

    def shared_store(self):
        """The store this daemon shares over the wire, or ``None``.

        A server built over an explicit ``cache_dir`` serves that
        store; otherwise the default service's (every
        :meth:`from_registry` service shares one root anyway).
        """
        if self._cache_dir is not None:
            if self._own_store is None:
                self._own_store = open_store(self._cache_dir)
            return self._own_store
        service = (self.services.get(self.default)
                   if self.default is not None else None)
        if service is None and self.services:
            service = next(iter(self.services.values()))
        return None if service is None else service.store

    # -- connection protocol -------------------------------------------------

    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain one connection's outbox onto its socket.

        A frame that cannot be flushed within ``_WRITE_TIMEOUT_S``
        declares the client gone — backpressure from one slow reader
        must never reach the compute rounds or other clients.
        """
        try:
            while True:
                frame = await conn.outbox.get()
                if frame is _CLOSE:
                    return
                conn.writer.write(frame)
                await asyncio.wait_for(conn.writer.drain(),
                                       _WRITE_TIMEOUT_S)
        except (asyncio.TimeoutError, TimeoutError,
                ConnectionError, OSError):
            conn.dead = True
        finally:
            try:
                if conn.dead:
                    conn.writer.transport.abort()
                else:
                    conn.writer.close()
            except Exception:
                pass

    async def _read_message(self, conn: _Connection):
        """One decoded message; ``None`` on clean EOF at a frame
        boundary; :class:`~repro.serve.protocol.ProtocolError` on a
        violation.  Slow senders are simply awaited — partial frames
        survive any pause."""
        try:
            header = await conn.reader.readexactly(protocol.HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise protocol.ProtocolError(
                "bad-frame", "connection closed mid-frame") from exc
        except ConnectionResetError:
            return None
        length = protocol.parse_frame_length(header, self.max_frame_bytes)
        try:
            body = await conn.reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise protocol.ProtocolError(
                "bad-frame",
                "connection closed between header and body") from exc
        except ConnectionResetError:
            return None
        return protocol.decode_message(protocol.decode_frame_body(body))

    async def _read_or_drain(self, conn: _Connection):
        """Read one message, or ``None`` once the server drains.

        Between requests a connection parks here; a drain wakes it
        immediately (no poll tick) and closes it cleanly.
        """
        if self._drain_evt.is_set():
            return None
        read = asyncio.ensure_future(self._read_message(conn))
        drain = asyncio.ensure_future(self._drain_evt.wait())
        try:
            done, _ = await asyncio.wait(
                {read, drain}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            drain.cancel()
        if read in done:
            return read.result()
        read.cancel()
        try:
            await read
        except (asyncio.CancelledError, protocol.ProtocolError,
                ConnectionError, OSError):
            pass
        return None

    async def _on_connect(self, reader, writer) -> None:
        conn = _Connection(reader, writer, self.max_frame_bytes)
        task = asyncio.current_task()
        self._handler_tasks.add(task)
        self._conns.add(conn)
        sock = writer.get_extra_info("socket")
        if (sock is not None
                and sock.family != getattr(socket, "AF_UNIX", None)):
            # small request/reply frames + Nagle + delayed ACK would
            # add ~40ms to every warm round trip
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.writer_task = asyncio.get_running_loop().create_task(
            self._writer_loop(conn))
        try:
            await self._session(conn)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._handler_tasks.discard(task)
            self._conns.discard(conn)
            conn.close()

    async def _session(self, conn: _Connection) -> None:
        # handshake: Hello in, HelloOk (or a refusal) out
        try:
            hello = await self._read_or_drain(conn)
        except protocol.ProtocolError as exc:
            conn.send(protocol.Error(code=exc.code, message=str(exc)))
            return
        if hello is None:
            return
        if not isinstance(hello, protocol.Hello):
            conn.send(protocol.Error(
                code="bad-request",
                message=f"expected a hello frame first, "
                        f"got {hello.KIND!r}"))
            return
        if hello.protocol != protocol.PROTOCOL_VERSION:
            conn.send(protocol.Error(
                code="protocol-mismatch",
                message=f"server speaks protocol "
                        f"{protocol.PROTOCOL_VERSION}, client asked "
                        f"for {hello.protocol}"))
            return
        if not conn.send(protocol.HelloOk(
                server=self.server_id,
                capabilities=self.capabilities())):
            return

        while True:
            try:
                message = await self._read_or_drain(conn)
            except protocol.ProtocolError as exc:
                # framing/schema violations poison the byte stream:
                # report and close rather than guess at resync
                conn.send(protocol.Error(code=exc.code,
                                         message=str(exc)))
                return
            if message is None or isinstance(message, protocol.Goodbye):
                return
            if isinstance(message, protocol.Ping):
                # health probes answer straight off the session loop:
                # they must work exactly when the lanes are saturated
                if not conn.send(protocol.Pong(
                        token=message.token,
                        queued=sum(len(lane.queue)
                                   for lane in self._lanes.values()),
                        running=sum(lane.running
                                    for lane in self._lanes.values()),
                        capabilities=self.capabilities())):
                    return
                continue
            if isinstance(message, protocol.BundleHave):
                name = self._hashes.get(message.sha256)
                if not conn.send(protocol.BundleHaveOk(
                        sha256=message.sha256,
                        have=name is not None, name=name)):
                    return
                continue
            if isinstance(message, protocol.BundlePush):
                if not await self._handle_push(conn, message):
                    return
                continue
            if isinstance(message, protocol.StoreOp):
                if not await self._handle_store(conn, message):
                    return
                continue
            if not isinstance(message, protocol.SuggestRequest):
                conn.send(protocol.Error(
                    code="bad-request",
                    message=f"cannot handle {message.KIND!r} frames "
                            f"here"))
                return
            if not await self._serve_request(conn, message):
                return

    # -- fabric: bundle distribution + the shared store ----------------------

    async def _handle_push(self, conn: _Connection,
                           message: protocol.BundlePush) -> bool:
        """Accept one content-addressed bundle archive over the wire.

        The digest is recomputed from the received bytes and a mismatch
        with the client's claim is refused — a peer must never serve an
        advisor under a content address it cannot verify.  A hash the
        daemon already holds is a pure cache hit: no disk write, no
        service build, ``cached=True`` in the reply.
        """
        if self.bundle_cache_dir is None:
            return conn.send(protocol.Error(
                code="bad-request",
                message="this daemon does not accept bundle pushes; "
                        "start it with --accept-bundles"))
        if self._drain_evt.is_set():
            return conn.send(protocol.Error(
                code="shutting-down",
                message="server is draining; push elsewhere"))
        try:
            data = base64.b64decode(message.data, validate=True)
        except (binascii.Error, ValueError) as exc:
            return conn.send(protocol.Error(
                code="bad-request",
                message=f"bundle data is not valid base64: {exc}"))
        digest = hashlib.sha256(data).hexdigest()
        if digest != message.sha256:
            return conn.send(protocol.Error(
                code="hash-mismatch",
                message=f"pushed bytes hash to {digest[:12]}…, the "
                        f"push claimed {message.sha256[:12]}…; "
                        f"refusing the archive"))
        if digest in self._hashes:
            return conn.send(protocol.BundlePushOk(
                sha256=digest, name=self._hashes[digest], cached=True))
        loop = asyncio.get_running_loop()
        try:
            service = await loop.run_in_executor(
                None, self._install_bundle, digest, data)
        except Exception as exc:
            return conn.send(protocol.Error(
                code="bundle-error",
                message=f"pushed bundle failed to load: {exc}"))
        if digest in self._hashes:
            # a concurrent push of the same content won the race while
            # we were off-loop; theirs serves, ours was warm-up
            return conn.send(protocol.BundlePushOk(
                sha256=digest, name=self._hashes[digest], cached=True))
        name = message.name or f"sha-{digest[:12]}"
        if name in self.services or name in self.degraded:
            # same name, different content: serve both, disambiguated
            name = f"{name}@{digest[:8]}"
        self.services[name] = service
        self._hashes[digest] = name
        if self.default is None:
            self.default = name
        lane = _Lane(name, service)
        self._lanes[name] = lane
        self._lane_tasks.append(loop.create_task(
            self._lane_loop(lane), name=f"repro-lane-{name}"))
        return conn.send(protocol.BundlePushOk(
            sha256=digest, name=name, cached=False))

    def _install_bundle(self, digest: str, data: bytes):
        """Cache + load one pushed archive (compute thread).

        The archive lands in ``bundle_cache_dir`` under its content
        hash (atomically — a crashed push must not leave a torn
        archive a restart would trust), then loads into a service
        sharing the daemon's config and store root.
        """
        from repro.artifacts.bundle import SuggesterBundle
        from repro.serve.pipeline import build_service

        cache = self.bundle_cache_dir
        cache.mkdir(parents=True, exist_ok=True)
        archive = cache / f"{digest}.tar.gz"
        if not archive.exists():
            tmp = cache / f".{digest}.tmp-{os.getpid()}"
            tmp.write_bytes(data)
            os.replace(tmp, archive)
        bundle = SuggesterBundle.load(archive)
        return build_service(bundle, self._serve_config,
                             cache_dir=self._cache_dir)

    async def _handle_store(self, conn: _Connection,
                            op: protocol.StoreOp) -> bool:
        """Execute one remote store operation off-loop and reply."""
        store = self.shared_store()
        if store is None:
            return conn.send(protocol.Error(
                code="no-store",
                message="this daemon has no suggestion store to share "
                        "(started without --cache-dir)"))
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(
                None, self._store_execute, store, op)
        except Exception as exc:
            return conn.send(protocol.Error(
                code="serve-error",
                message=f"store {op.op} failed: {exc}"))
        return conn.send(reply)

    @staticmethod
    def _store_execute(store, op: protocol.StoreOp) -> protocol.StoreOk:
        """One store op against the daemon's store (compute thread)."""
        if op.op == "get":
            if op.layer == "parse":
                entry = store.get_parse(op.key)
            elif op.layer == "suggest":
                entry = store.get_suggestions(op.model_key, op.key)
            else:
                entry = store.get_verdict(op.key)
            return protocol.StoreOk(op="get", entry=entry)
        if op.op == "put":
            if op.layer == "parse":
                store.put_parse(op.key, op.entry)
            elif op.layer == "suggest":
                store.put_suggestions(op.model_key, op.key, op.entry)
            else:
                store.put_verdict(op.key, op.entry)
            return protocol.StoreOk(op="put")
        if op.op == "gc":
            kwargs = {key: op.args[key]
                      for key in ("max_bytes", "max_age_days", "now")
                      if op.args.get(key) is not None}
            return protocol.StoreOk(op="gc", report=store.gc(**kwargs))
        if op.op == "fsck":
            remove = bool(op.args.get("remove", True))
            return protocol.StoreOk(op="fsck",
                                    report=store.fsck(remove=remove))
        return protocol.StoreOk(op="describe", report=store.describe())

    def _resolve_ref(self, ref: str) -> str:
        """A request's bundle ref as a serving name.

        Exact names win; otherwise the ref matches as a prefix of the
        known archive hashes — ambiguity is refused, mirroring
        :meth:`~repro.artifacts.registry.BundleRegistry.resolve`.
        """
        if ref in self.services or ref in self.degraded:
            return ref
        matches = sorted({name for sha, name in self._hashes.items()
                          if sha.startswith(ref)})
        if len(matches) > 1:
            raise protocol.ProtocolError(
                "unknown-bundle",
                f"bundle ref {ref!r} is ambiguous: matches "
                f"{matches}; use a longer hash prefix")
        return matches[0] if matches else ref

    def _check_local(self, path: Path) -> None:
        """Refuse server-side reads outside the allowed roots."""
        if self.local_roots is None:
            raise protocol.ProtocolError(
                "bad-request",
                "server-side paths are disabled on this daemon; send "
                "sources inline, or start it with --allow-local-dir")
        resolved = path.resolve()
        if not any(resolved.is_relative_to(root)
                   for root in self.local_roots):
            raise protocol.ProtocolError(
                "bad-request",
                f"server-side path {path} is outside the allowed "
                f"corpus roots")

    def _resolve_workload(self, request: protocol.SuggestRequest,
                          ) -> list[tuple[str, str]]:
        """The request's ``(name, source)`` workload, reading
        server-side paths/dirs when the request names them (and the
        daemon opted in via ``local_roots``)."""
        if request.dir is not None:
            root = Path(request.dir)
            self._check_local(root)
            if not root.is_dir():
                raise protocol.ProtocolError(
                    "bad-request",
                    f"server has no directory {request.dir!r}")
            paths = sorted(root.rglob(request.pattern))
        elif request.paths:
            paths = [Path(p) for p in request.paths]
        else:
            return list(request.sources)
        named = []
        for path in paths:
            self._check_local(path)
            try:
                named.append((str(path),
                              path.read_text(encoding="utf-8")))
            except (OSError, UnicodeDecodeError) as exc:
                raise protocol.ProtocolError(
                    "bad-request",
                    f"server cannot read {path}: {exc}") from exc
        return named

    async def _serve_request(self, conn: _Connection,
                             request: protocol.SuggestRequest) -> bool:
        """Admit one suggest request; ``False`` closes the connection
        (client vanished), request-level errors keep it open.

        Admission queues the request on its bundle's lane (refusing
        with ``busy`` when the lane is full) and awaits the reply's
        terminating frame — one request in flight per connection, many
        per lane.
        """
        if self._drain_evt.is_set():
            return conn.send(protocol.Error(
                code="shutting-down",
                message="server is draining; retry elsewhere"))
        if request.bundle is not None:
            try:
                name = self._resolve_ref(request.bundle)
            except protocol.ProtocolError as exc:
                return conn.send(protocol.Error(code=exc.code,
                                                message=str(exc)))
        else:
            name = self.default
        if name is None:
            return conn.send(protocol.Error(
                code="unknown-bundle",
                message="this daemon serves no bundles yet; push one "
                        "with bundle-push or restart it with --bundle"))
        service = self.services.get(name)
        if service is None:
            if name in self.degraded:
                return conn.send(protocol.Error(
                    code="unknown-bundle",
                    message=f"bundle {name!r} failed to load at "
                            f"startup ({self.degraded[name]}); "
                            f"serving: {sorted(self.services)}"))
            return conn.send(protocol.Error(
                code="unknown-bundle",
                message=f"unknown bundle {name!r}; "
                        f"serving: {sorted(self.services)}"))
        loop = asyncio.get_running_loop()
        try:
            named = await loop.run_in_executor(
                None, self._resolve_workload, request)
        except protocol.ProtocolError as exc:
            return conn.send(protocol.Error(code=exc.code,
                                            message=str(exc)))
        pending = _Pending(conn, request, named, service,
                           loop.create_future())
        if pending.total == 0:
            pending.finish()
            return not conn.dead
        lane = self._lanes[name]
        if len(lane.queue) >= self.queue_depth:
            return conn.send(protocol.Error(
                code="busy",
                message=f"bundle {name!r} admission queue is full "
                        f"({self.queue_depth} waiting requests); "
                        f"retry shortly"))
        lane.queue.append(pending)
        lane.wake.set()
        await pending.done
        return not conn.dead

    # -- micro-batching ------------------------------------------------------

    async def _lane_loop(self, lane: _Lane) -> None:
        """One bundle's micro-batcher: drain the admission queue into
        coalesced rounds, one round in compute at a time."""
        loop = asyncio.get_running_loop()
        window_s = self.batch_window_ms / 1e3
        while True:
            if not lane.queue:
                lane.idle = True
                lane.wake.clear()
                await lane.wake.wait()
            self._prune_dead(lane)
            if not lane.queue:
                continue
            if (lane.idle and window_s > 0 and len(self._conns) > 1
                    and not self._drain_evt.is_set()):
                # micro-batch window: a cold arrival waits for
                # near-simultaneous requests from other clients to
                # join this round.  Skipped with a single connection
                # (flush-on-idle) and after a busy round (anything
                # that queued during it has already coalesced).
                deadline = loop.time() + window_s
                while len(lane.queue) < len(self._conns):
                    # early flush once every connected client has a
                    # request queued — nobody is left for the window
                    # to wait for
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    lane.wake.clear()
                    try:
                        await asyncio.wait_for(lane.wake.wait(),
                                               remaining)
                    except (asyncio.TimeoutError, TimeoutError):
                        break
                self._prune_dead(lane)
            lane.idle = False
            batch = self._take_round(lane)
            if not batch:
                continue
            lane.running = True
            try:
                await loop.run_in_executor(
                    self._executor, self._compute_round, lane, batch)
            except asyncio.CancelledError:
                raise
            except Exception:
                tb = traceback.format_exc()
                for pending, _ in batch:
                    pending.fail("serve-error", tb)
            finally:
                lane.running = False

    def _prune_dead(self, lane: _Lane) -> None:
        """Drop queued requests whose client vanished or whose
        deadline has already passed — neither may occupy a round."""
        for pending in [p for p in lane.queue if p.conn.dead]:
            lane.queue.remove(pending)
            pending.cancel()
        for pending in [p for p in lane.queue if p.expired]:
            lane.queue.remove(pending)
            pending.fail(
                "deadline-exceeded",
                f"request deadline of "
                f"{pending.request.deadline_s:.3f}s expired before "
                f"the request finished")

    def _take_round(self, lane: _Lane) -> list[tuple[_Pending, list]]:
        """Compose one compute round, round-robin across the queue.

        Files are drawn one at a time from each waiting request in
        turn, up to ``round_files`` total — so a bulk request is
        chunked across rounds while every small request fits whole
        into the next one.  Fully scheduled requests leave the queue
        (their replies are still in flight); partially scheduled ones
        keep their place at the front.
        """
        chunks: dict[_Pending, list] = {}
        taken = 0
        while taken < self.round_files:
            progressed = False
            for pending in list(lane.queue):
                if taken >= self.round_files:
                    break
                item = pending.take()
                if item is None:
                    continue
                chunks.setdefault(pending, []).append(item)
                taken += 1
                progressed = True
            if not progressed:
                break
        for pending in [p for p in lane.queue if p.fully_scheduled]:
            lane.queue.remove(pending)
        return list(chunks.items())

    @staticmethod
    def _transform(pending: _Pending, index: int, fs, service=None):
        """Apply the request's post-pass to one finished file.

        Runs on the compute thread — a rewrite request's interpreter
        verification must never touch the event loop.  Suggestion
        coalescing is unaffected: rewrites are a deterministic
        per-file function of the shared suggestion result.  ``service``
        (the lane's) supplies the persistent verdict cache and the
        verifier counters; results are byte-identical without it.
        """
        if isinstance(pending.request, protocol.RewriteRequest):
            from repro.rewrite import rewrite_file

            _, name, source = pending.files[index]
            return rewrite_file(
                name, source, fs, verify=pending.request.verify,
                store=None if service is None else service.store,
                stats=None if service is None
                else service._verify_stats)
        return fs

    def _compute_round(self, lane: _Lane,
                       batch: list[tuple[_Pending, list]]) -> None:
        """Run one coalesced round (compute thread; one per lane).

        A single-request round keeps the per-request shard fan-out
        (``request.shards`` / server config); a multi-request round is
        joined through :meth:`SuggestionService.iter_joint` — one
        in-process pipeline pass, one block-diagonal forward per
        model, content-level dedup across clients.  Results are
        handed back to the event loop per file as they complete.
        """
        loop = self._loop
        service = lane.service
        try:
            if len(batch) == 1:
                pending, files = batch[0]
                indices = [i for i, _, _ in files]
                named = [(name, source) for _, name, source in files]
                results = service.stream_tagged(
                    named, shards=pending.request.shards)
                service._coalesce["rounds"] += 1
                service._coalesce["requests"] += 1
                try:
                    for local_i, fs in results:
                        index = indices[local_i]
                        out = self._transform(pending, index, fs,
                                              service)
                        loop.call_soon_threadsafe(
                            pending.deliver, index, out)
                finally:
                    close = getattr(results, "close", None)
                    if close is not None:   # reap shard workers
                        close()
            else:
                workloads = []
                for pending, files in batch:
                    tag = (pending, [i for i, _, _ in files])
                    workloads.append(
                        (tag, [(name, source)
                               for _, name, source in files]))
                for tag, local_i, fs in service.iter_joint(workloads):
                    pending, indices = tag
                    index = indices[local_i]
                    out = self._transform(pending, index, fs, service)
                    loop.call_soon_threadsafe(
                        pending.deliver, index, out)
        except Exception:
            tb = traceback.format_exc()
            for pending, _ in batch:
                loop.call_soon_threadsafe(
                    pending.fail, "serve-error", tb)
