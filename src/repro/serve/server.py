"""The long-lived suggestion daemon (``repro serve --listen``).

One process, one (or several, name-addressed) warm
:class:`~repro.serve.pipeline.SuggestionService`, many concurrent
clients: the server binds a TCP port or unix socket, performs the
:mod:`~repro.serve.protocol` handshake per connection, and serves
suggest requests over the shared services — so every client benefits
from the same warm :class:`~repro.serve.store.SuggestionStore`, the
same loaded models, and the same encode caches, instead of each
invocation paying model load + parse + forward from scratch.

Concurrency model: one thread per connection (the pipeline is
CPU-bound pure python, so threads are for *multiplexing*, not
speedup — per-request ``shards`` fan-out supplies the parallelism).
Each named service owns a lock serializing its compute; a request
that overlaps files another client just computed therefore hits the
warm store and performs zero parses and zero forwards.  Results
stream to the requesting client as the pipeline yields them.

Lifecycle: :meth:`SuggestServer.start` binds and serves on a
background thread (tests, embedding); :meth:`serve_forever` serves on
the calling thread (the CLI).  :meth:`shutdown` drains — new requests
are refused with a ``shutting-down`` error frame, in-flight replies
run to completion, idle connections close at the next poll tick —
then the listener closes.  A client that vanishes mid-stream only
loses its own connection; the pipeline generator is closed so shard
workers are reaped, and every other client keeps streaming.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
import traceback
from pathlib import Path

from repro.serve import protocol
from repro.serve.pipeline import ServeConfig, SuggestionService
from repro.serve.stream import merge_results

#: seconds between idle-connection polls (drain responsiveness)
_IDLE_POLL_S = 0.5
#: seconds a reply write may stall on client backpressure before the
#: client is considered gone
_WRITE_TIMEOUT_S = 30.0
#: total seconds of write stall one streaming request may accumulate
#: while holding its bundle's compute lock — a drip-feeding client
#: must not block every other client of the bundle forever
_REQUEST_WRITE_BUDGET_S = 120.0


class _FrameReader:
    """Frame assembly that survives idle-poll timeouts.

    The per-connection socket carries a short timeout so the drain
    loop stays live, but a timeout mid-frame must not corrupt the byte
    stream: a buffered ``makefile`` reader discards partial reads on
    timeout, turning a slow (not dead) client into a framing error.
    This reader accumulates into its own buffer instead — a
    ``socket.timeout`` propagates to the caller, the partial frame
    stays buffered, and the next call resumes exactly where it
    stopped.
    """

    def __init__(self, sock, max_bytes: int) -> None:
        self._sock = sock
        self._max = max_bytes
        self._buf = bytearray()
        self._eof = False

    def _fill(self, n: int) -> None:
        """Grow the buffer to ``n`` bytes, or record EOF; a stalled
        peer raises ``socket.timeout`` with the buffer intact."""
        while len(self._buf) < n and not self._eof:
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
                return
            self._buf.extend(chunk)

    def read_message(self):
        """One decoded message; ``None`` on clean EOF at a frame
        boundary; :class:`~repro.serve.protocol.ProtocolError` on a
        violation; ``socket.timeout`` while a frame is incomplete."""
        header_size = protocol.HEADER_SIZE
        self._fill(header_size)
        if len(self._buf) < header_size:
            if not self._buf:
                return None
            raise protocol.ProtocolError(
                "bad-frame", "connection closed mid-frame")
        length = protocol.parse_frame_length(
            bytes(self._buf[:header_size]), self._max)
        self._fill(header_size + length)
        if len(self._buf) < header_size + length:
            raise protocol.ProtocolError(
                "bad-frame",
                "connection closed between header and body")
        body = bytes(self._buf[header_size:header_size + length])
        del self._buf[:header_size + length]
        return protocol.decode_message(protocol.decode_frame_body(body))


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = False       # server_close() waits for handlers
    block_on_close = True
    owner: "SuggestServer"


if hasattr(socketserver, "ThreadingUnixStreamServer"):
    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = False
        block_on_close = True
        owner: "SuggestServer"
else:                      # platforms without AF_UNIX (Windows)
    _ThreadingUnixServer = None


class _Handler(socketserver.StreamRequestHandler):
    def setup(self) -> None:
        # Bounded reads keep the drain loop live: an idle connection
        # wakes every poll tick to check whether the server is closing.
        self.request.settimeout(_IDLE_POLL_S)
        if self.request.family != getattr(socket, "AF_UNIX", None):
            # small request/reply frames + Nagle + delayed ACK would
            # add ~40ms to every warm round trip
            self.request.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
        super().setup()

    def handle(self) -> None:
        self.server.owner._handle_connection(self.request, self.wfile)


class SuggestServer:
    """A network front over warm, name-addressed suggestion services.

    ``services`` maps bundle names to built
    :class:`SuggestionService` instances; ``default`` names the one a
    request without a ``bundle`` field is served from (defaults to the
    first entry).  Exactly one of ``host``/``port`` (TCP; ``port=0``
    binds an ephemeral port) or ``unix_path`` selects the transport.
    """

    def __init__(self, services: dict[str, SuggestionService], *,
                 default: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_path: str | Path | None = None,
                 local_roots: tuple | list | None = None,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                 server_id: str = "repro.serve") -> None:
        if not services:
            raise ValueError("a SuggestServer needs at least one service")
        self.services = dict(services)
        #: directories the server may read for ``paths``/``dir``
        #: requests; ``None`` (the default) disables server-side reads
        #: entirely — an open TCP daemon must not be a file-read
        #: oracle over its whole filesystem
        self.local_roots = (None if local_roots is None else
                            tuple(Path(r).resolve() for r in local_roots))
        self.default = default if default is not None \
            else next(iter(self.services))
        if self.default not in self.services:
            raise ValueError(f"default bundle {self.default!r} is not "
                             f"among {sorted(self.services)}")
        self.max_frame_bytes = max_frame_bytes
        self.server_id = server_id
        self._locks = {name: threading.Lock() for name in self.services}
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self.unix_path = None if unix_path is None else str(unix_path)
        if self.unix_path is not None:
            if _ThreadingUnixServer is None:
                raise ValueError(
                    "unix sockets are not supported on this platform; "
                    "use host/port")
            self._reclaim_stale_socket(self.unix_path)
            self._server = _ThreadingUnixServer(self.unix_path, _Handler)
        else:
            self._server = _ThreadingTCPServer((host, port), _Handler)
        self._server.owner = self

    @staticmethod
    def _reclaim_stale_socket(path: str) -> None:
        """Unlink a leftover socket file from a crashed daemon.

        A SIGKILLed server leaves its socket file behind and the next
        bind fails with EADDRINUSE.  Probe it first: a live listener
        accepts the connection and keeps its socket; only a dead one
        (connection refused) is reclaimed.
        """
        if not Path(path).is_socket():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(path)
        except (ConnectionRefusedError, socket.timeout, TimeoutError):
            try:
                Path(path).unlink()
            except OSError:
                pass
        except OSError:
            pass        # unreadable/odd socket: let bind report it
        else:
            raise OSError(
                f"a server is already listening on {path}")
        finally:
            probe.close()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound address: ``host:port`` or the unix socket path."""
        if self.unix_path is not None:
            return self.unix_path
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever(poll_interval=_IDLE_POLL_S)

    def start(self) -> "SuggestServer":
        """Serve on a background thread; returns once accepting."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve-accept",
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Drain and stop: refuse new requests, finish in-flight
        replies, close the listener.

        Safe to call from any thread (except the one running
        :meth:`serve_forever`) and from several at once: the first
        caller performs the drain, every other caller blocks until it
        has finished — so a signal handler's shutdown and a main
        loop's ``finally`` cannot race the process exit past a
        half-drained server.
        """
        with self._shutdown_lock:
            first = not self._draining.is_set()
            if first:
                self._draining.set()
        if not first:
            self._stopped.wait(timeout=60.0)
            return
        self._server.shutdown()          # stop accepting
        self._server.server_close()      # waits for handler threads
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        if self.unix_path is not None:
            try:
                Path(self.unix_path).unlink()
            except OSError:
                pass
        self._stopped.set()

    def __enter__(self) -> "SuggestServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_registry(cls, registry, config: ServeConfig | None = None,
                      cache_dir: str | Path | None = None,
                      **net) -> "SuggestServer":
        """One warm service per registered bundle, sharing one store."""
        from repro.serve.pipeline import build_service

        services = {
            name: build_service(registry.get(name), config,
                                cache_dir=cache_dir)
            for name in registry.names()
        }
        return cls(services, default=registry.default, **net)

    # -- capabilities --------------------------------------------------------

    def capabilities(self) -> dict:
        return {
            "bundles": sorted(self.services),
            "default_bundle": self.default,
            "clauses": {
                name: sorted(service.suggester.clause_models)
                for name, service in self.services.items()
            },
            "model_keys": {
                name: service._model_key
                for name, service in self.services.items()
            },
            "max_frame_bytes": self.max_frame_bytes,
            "streaming": True,
            "server_side_paths": self.local_roots is not None,
        }

    # -- connection protocol -------------------------------------------------

    def _send(self, sock, wfile, message) -> bool:
        """Write one frame; ``False`` when the client is gone.

        Writes get their own, much longer timeout: the 0.5s idle poll
        is drain bookkeeping, not a verdict on a client that applies a
        second of TCP backpressure.  A client still stalled after
        ``_WRITE_TIMEOUT_S`` is treated as gone.
        """
        try:
            sock.settimeout(_WRITE_TIMEOUT_S)
            try:
                protocol.write_message(wfile, message,
                                       self.max_frame_bytes)
            finally:
                sock.settimeout(_IDLE_POLL_S)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    def _read(self, reader: _FrameReader):
        """Read one message, riding out idle-poll timeouts.

        Returns the message, ``None`` on clean EOF, or raises
        :class:`~repro.serve.protocol.ProtocolError`.  The reader
        buffers partial frames across timeouts, so a slow sender is
        waited on, never misread.  During a drain, the connection
        closes at the next poll tick instead of waiting for its next
        request.
        """
        while True:
            try:
                return reader.read_message()
            except (socket.timeout, TimeoutError):
                if self._draining.is_set():
                    return None
            except (ConnectionResetError, BrokenPipeError):
                return None

    def _handle_connection(self, sock, wfile) -> None:
        reader = _FrameReader(sock, self.max_frame_bytes)
        # handshake: Hello in, HelloOk (or a refusal) out
        try:
            hello = self._read(reader)
        except protocol.ProtocolError as exc:
            self._send(sock, wfile, protocol.Error(code=exc.code,
                                                   message=str(exc)))
            return
        if hello is None:
            return
        if not isinstance(hello, protocol.Hello):
            self._send(sock, wfile, protocol.Error(
                code="bad-request",
                message=f"expected a hello frame first, "
                        f"got {hello.KIND!r}"))
            return
        if hello.protocol != protocol.PROTOCOL_VERSION:
            self._send(sock, wfile, protocol.Error(
                code="protocol-mismatch",
                message=f"server speaks protocol "
                        f"{protocol.PROTOCOL_VERSION}, client asked "
                        f"for {hello.protocol}"))
            return
        if not self._send(sock, wfile, protocol.HelloOk(
                server=self.server_id,
                capabilities=self.capabilities())):
            return

        while True:
            try:
                message = self._read(reader)
            except protocol.ProtocolError as exc:
                # framing/schema violations poison the byte stream:
                # report and close rather than guess at resync
                self._send(sock, wfile, protocol.Error(code=exc.code,
                                                 message=str(exc)))
                return
            if message is None or isinstance(message, protocol.Goodbye):
                return
            if not isinstance(message, protocol.SuggestRequest):
                self._send(sock, wfile, protocol.Error(
                    code="bad-request",
                    message=f"cannot handle {message.KIND!r} frames "
                            f"here"))
                return
            if not self._serve_request(message, sock, wfile):
                return

    def _check_local(self, path: Path) -> None:
        """Refuse server-side reads outside the allowed roots."""
        if self.local_roots is None:
            raise protocol.ProtocolError(
                "bad-request",
                "server-side paths are disabled on this daemon; send "
                "sources inline, or start it with --allow-local-dir")
        resolved = path.resolve()
        if not any(resolved.is_relative_to(root)
                   for root in self.local_roots):
            raise protocol.ProtocolError(
                "bad-request",
                f"server-side path {path} is outside the allowed "
                f"corpus roots")

    def _resolve_workload(self, request: protocol.SuggestRequest,
                          ) -> list[tuple[str, str]]:
        """The request's ``(name, source)`` workload, reading
        server-side paths/dirs when the request names them (and the
        daemon opted in via ``local_roots``)."""
        if request.dir is not None:
            root = Path(request.dir)
            self._check_local(root)
            if not root.is_dir():
                raise protocol.ProtocolError(
                    "bad-request",
                    f"server has no directory {request.dir!r}")
            paths = sorted(root.rglob(request.pattern))
        elif request.paths:
            paths = [Path(p) for p in request.paths]
        else:
            return list(request.sources)
        named = []
        for path in paths:
            self._check_local(path)
            try:
                named.append((str(path),
                              path.read_text(encoding="utf-8")))
            except (OSError, UnicodeDecodeError) as exc:
                raise protocol.ProtocolError(
                    "bad-request",
                    f"server cannot read {path}: {exc}") from exc
        return named

    def _serve_request(self, request: protocol.SuggestRequest,
                       sock, wfile) -> bool:
        """Answer one suggest request; ``False`` closes the connection
        (client vanished), request-level errors keep it open.

        Streaming replies interleave sends with compute under the
        bundle's lock — that is what delivers the first file before
        the last one computes, at the cost of head-of-line blocking
        behind a slow reader.  That blocking is bounded twice: per
        frame by ``_WRITE_TIMEOUT_S``, and per request by
        ``_REQUEST_WRITE_BUDGET_S`` of accumulated send stall, after
        which the drip-feeding client is dropped like a dead one.
        Batch replies release the lock before any reply bytes move.
        """
        if self._draining.is_set():
            return self._send(sock, wfile, protocol.Error(
                code="shutting-down",
                message="server is draining; retry elsewhere"))
        name = request.bundle if request.bundle is not None else self.default
        service = self.services.get(name)
        if service is None:
            return self._send(sock, wfile, protocol.Error(
                code="unknown-bundle",
                message=f"unknown bundle {name!r}; "
                        f"serving: {sorted(self.services)}"))
        try:
            named = self._resolve_workload(request)
        except protocol.ProtocolError as exc:
            return self._send(sock, wfile, protocol.Error(code=exc.code,
                                                    message=str(exc)))
        files = errors = 0
        batch: list[protocol.FileResult] = []
        write_budget = _REQUEST_WRITE_BUDGET_S
        with self._locks[name]:
            raw = service.stream_tagged(named, shards=request.shards)
            tagged = raw
            if request.ordered or not request.stream:
                tagged = enumerate(merge_results(raw, ordered=True))
            try:
                for index, fs in tagged:
                    files += 1
                    errors += fs.error is not None
                    frame = protocol.FileResult(
                        index=index, name=fs.name,
                        payload=fs.to_payload())
                    if not request.stream:
                        batch.append(frame)
                    else:
                        sent_at = time.perf_counter()
                        ok = self._send(sock, wfile, frame)
                        write_budget -= time.perf_counter() - sent_at
                        if not ok or write_budget <= 0:
                            return False   # gone, or drip-feeding
            except Exception:
                return self._send(sock, wfile, protocol.Error(
                    code="serve-error",
                    message=traceback.format_exc()))
            finally:
                close = getattr(raw, "close", None)
                if close is not None:   # reap shard workers on abort
                    close()
        if not request.stream:
            try:
                sent = self._send(sock, wfile,
                                  protocol.BatchResult(
                                      files=tuple(batch)))
            except protocol.ProtocolError as exc:
                # the whole reply exceeds one frame; nothing has hit
                # the wire (encode precedes write), so a clean error
                # frame can still follow
                return self._send(sock, wfile, protocol.Error(
                    code="serve-error",
                    message=f"batch reply too large for one frame "
                            f"({exc}); request stream=True instead"))
            if not sent:
                return False
        return self._send(sock, wfile, protocol.Done(
            files=files, errors=errors, stats=service.cache_stats()))
