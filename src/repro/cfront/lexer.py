"""A C lexer.

Turns C source text into a list of :class:`~repro.cfront.tokens.Token`.
Handles the full C89/C99 token set used by real-world loop code:

- line (``//``) and block (``/* */``) comments,
- integer constants (decimal / octal / hex, ``u``/``l`` suffixes),
- floating constants (decimal and exponent forms, ``f``/``l`` suffixes),
- character and string literals with escape sequences,
- all multi-character punctuators with maximal munch,
- preprocessor lines: ``#pragma`` lines become ``PRAGMA`` tokens (the
  OMP_Serial labeller reads them); ``#include``/``#define``/``#if`` etc.
  are consumed (simple object-like ``#define NAME value`` macros are
  recorded and substituted, which is enough for the constant-bound loops
  that dominate benchmark code).

The lexer never needs a symbol table; ``typedef`` disambiguation happens
in the parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.cfront.errors import LexError
from repro.cfront.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")
_WHITESPACE = frozenset(" \t\r\n")
_SIGNS = frozenset("+-")
_EXPONENT = frozenset("eE")
_NUM_SUFFIX = frozenset("uUlLfF")
_FLOAT_SUFFIX = frozenset("fF")

#: Master pattern for the fast scanning loop.  Alternatives mirror the
#: per-character scanners exactly; anything they cannot settle (pre-
#: processor lines, malformed literals, unknown characters) falls back
#: to the original routines so errors and edge semantics are unchanged.
_MASTER_RE = re.compile(
    r"(?P<ws>[ \t\r\n]+)"
    r"|(?P<lcomment>//[^\n]*)"
    r"|(?P<bcomment>/\*.*?\*/)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<num>"
    r"0[xX][0-9a-fA-F]*[uUlLfF]*"
    r"|(?:[0-9]+(?:\.(?!\.)[0-9]*)?|\.[0-9]+)"
    r"(?:[eE][+-][0-9]+|[eE][0-9]+)?[uUlLfF]*"
    r")"
    r'|(?P<string>"(?:\\[^\n]|[^"\\\n])*")'
    r"|(?P<char>'(?:\\[^\n]|[^'\\\n])')"
    r"|(?P<punct>"
    + "|".join(re.escape(p)
               for p in sorted(PUNCTUATORS, key=len, reverse=True))
    + r")",
    re.DOTALL,
)

#: number-text → float? (mirrors the suffix/shape rules of _lex_number)
def _num_is_float(text: str) -> bool:
    if text[:2] in ("0x", "0X"):
        rest = text[2:].lstrip("0123456789abcdefABCDEF")
        return "f" in rest or "F" in rest
    body = text.rstrip("uUlL")
    return "." in body or "e" in body or "E" in body or \
        body != body.rstrip("fF")


@dataclass
class LexResult:
    """Lexer output: the token stream plus extracted preprocessor facts."""

    tokens: list[Token]
    #: object-like macro definitions seen in ``#define`` lines
    defines: dict[str, str] = field(default_factory=dict)
    #: raw text of every ``#include`` line (kept for corpus statistics)
    includes: list[str] = field(default_factory=list)


class Lexer:
    """Single-pass scanner over C source text."""

    def __init__(self, source: str) -> None:
        # Line splicing (backslash-newline) happens before everything else,
        # matching translation phase 2 of the C standard.
        self.source = source.replace("\\\n", "")
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: list[Token] = []
        self.defines: dict[str, str] = {}
        self.includes: list[str] = []

    # -- character helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    # -- main loop ---------------------------------------------------------

    def lex(self) -> LexResult:
        """Scan the whole input and return the token stream.

        The hot loop matches one compiled master pattern per token
        (~5× faster than per-character scanning, which dominated file
        parsing); preprocessor lines and malformed input fall back to
        the per-character scanners so error reporting is unchanged.
        """
        src = self.source
        n = len(src)
        match = _MASTER_RE.match
        tokens = self.tokens
        while self.pos < n:
            m = match(src, self.pos)
            if m is None or src[self.pos] == "#" or (
                m.lastgroup != "bcomment" and src.startswith("/*", self.pos)
            ):
                # '#' lines, broken literals/comments, unknown chars
                self._lex_one_slow()
                continue
            text = m.group()
            kind = m.lastgroup
            line, col = self.line, self.col
            newlines = text.count("\n")
            if newlines:
                self.line += newlines
                self.col = len(text) - text.rfind("\n")
            else:
                self.col += len(text)
            self.pos = m.end()
            if kind == "ident":
                tokens.append(Token(
                    TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT,
                    text, line, col,
                ))
            elif kind == "punct":
                tokens.append(Token(TokenKind.PUNCT, text, line, col))
            elif kind == "num":
                tokens.append(Token(
                    TokenKind.FLOAT_CONST if _num_is_float(text)
                    else TokenKind.INT_CONST,
                    text, line, col,
                ))
            elif kind == "string":
                tokens.append(Token(TokenKind.STRING, text, line, col))
            elif kind == "char":
                tokens.append(Token(TokenKind.CHAR_CONST, text, line, col))
            # ws / lcomment / bcomment produce no token
        self._emit(TokenKind.EOF, "")
        self._substitute_defines()
        for i, tok in enumerate(self.tokens):
            tok.index = i
        return LexResult(self.tokens, self.defines, self.includes)

    def _lex_one_slow(self) -> None:
        """One token via the per-character scanners (rare cases)."""
        ch = self._peek()
        if ch in _WHITESPACE:
            self._advance()
        elif ch == "/" and self._peek(1) == "/":
            self._skip_line_comment()
        elif ch == "/" and self._peek(1) == "*":
            self._skip_block_comment()
        elif ch == "#":
            self._lex_preprocessor()
        elif ch in _IDENT_START:
            self._lex_ident()
        elif ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            self._lex_number()
        elif ch == '"':
            self._lex_string()
        elif ch == "'":
            self._lex_char()
        else:
            self._lex_punct()

    # -- emitters ----------------------------------------------------------

    def _emit(self, kind: TokenKind, text: str, line: int | None = None,
              col: int | None = None) -> None:
        self.tokens.append(
            Token(kind, text, line if line is not None else self.line,
                  col if col is not None else self.col)
        )

    # -- scanners ----------------------------------------------------------

    def _skip_line_comment(self) -> None:
        while not self._at_end() and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.col
        self._advance(2)
        while not self._at_end():
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start_line, start_col)

    def _lex_preprocessor(self) -> None:
        """Consume a full preprocessor line starting at ``#``."""
        line_no, col_no = self.line, self.col
        chars: list[str] = []
        self._advance()  # '#'
        while not self._at_end() and self._peek() != "\n":
            # Comments may appear inside directive lines.
            if self._peek() == "/" and self._peek(1) == "/":
                self._skip_line_comment()
                break
            if self._peek() == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                chars.append(" ")
                continue
            chars.append(self._advance())
        text = "".join(chars).strip()
        if text.startswith("pragma"):
            self._emit(TokenKind.PRAGMA, text, line_no, col_no)
        elif text.startswith("include"):
            self.includes.append(text)
        elif text.startswith("define"):
            self._record_define(text)
        # #if/#ifdef/#endif/#undef/... are dropped; conditional compilation
        # is outside scope and rare in loop bodies.

    def _record_define(self, text: str) -> None:
        body = text[len("define"):].strip()
        if not body:
            return
        i = 0
        while i < len(body) and body[i] in _IDENT_CONT:
            i += 1
        name, rest = body[:i], body[i:]
        if not name or name[0] not in _IDENT_START:
            return
        if rest.startswith("("):
            return  # function-like macros are not expanded
        value = rest.strip()
        if value:
            self.defines[name] = value

    def _lex_ident(self) -> None:
        line_no, col_no = self.line, self.col
        chars = [self._advance()]
        while self._peek() in _IDENT_CONT:
            chars.append(self._advance())
        text = "".join(chars)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        self._emit(kind, text, line_no, col_no)

    def _lex_number(self) -> None:
        line_no, col_no = self.line, self.col
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in _HEX_DIGITS:
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() in _EXPONENT and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in _SIGNS and self._peek(2) in _DIGITS)
            ):
                is_float = True
                self._advance()
                if self._peek() in _SIGNS:
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
        # Suffixes: uUlL for ints, fFlL for floats.
        while self._peek() in _NUM_SUFFIX:
            if self._peek() in _FLOAT_SUFFIX:
                is_float = True
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.FLOAT_CONST if is_float else TokenKind.INT_CONST
        self._emit(kind, text, line_no, col_no)

    def _lex_string(self) -> None:
        line_no, col_no = self.line, self.col
        start = self.pos
        self._advance()  # opening quote
        while not self._at_end() and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            if self._at_end():
                break
            if self._peek() == "\n":
                raise LexError("newline in string literal", line_no, col_no)
            self._advance()
        if self._at_end():
            raise LexError("unterminated string literal", line_no, col_no)
        self._advance()  # closing quote
        self._emit(TokenKind.STRING, self.source[start : self.pos], line_no, col_no)

    def _lex_char(self) -> None:
        line_no, col_no = self.line, self.col
        start = self.pos
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance()
        if self._at_end():
            raise LexError("unterminated char literal", line_no, col_no)
        self._advance()
        if self._peek() != "'":
            raise LexError("unterminated char literal", line_no, col_no)
        self._advance()
        self._emit(TokenKind.CHAR_CONST, self.source[start : self.pos], line_no, col_no)

    def _lex_punct(self) -> None:
        line_no, col_no = self.line, self.col
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                self._emit(TokenKind.PUNCT, punct, line_no, col_no)
                return
        raise LexError(f"unexpected character {self._peek()!r}", line_no, col_no)

    # -- macro substitution --------------------------------------------------

    def _substitute_defines(self) -> None:
        """Expand object-like macros whose bodies are single constants.

        This is the minimum needed for the ubiquitous ``#define N 1024``
        style of benchmark code.  Recursive or multi-token macros are left
        alone (their identifiers simply stay identifiers).
        """
        simple: dict[str, Token] = {}
        for name, value in self.defines.items():
            sub = Lexer(value)
            try:
                toks = [t for t in sub.lex().tokens if t.kind is not TokenKind.EOF]
            except LexError:
                continue
            if len(toks) == 1 and toks[0].kind in (
                TokenKind.INT_CONST,
                TokenKind.FLOAT_CONST,
                TokenKind.STRING,
                TokenKind.CHAR_CONST,
            ):
                simple[name] = toks[0]
        if not simple:
            return
        for i, tok in enumerate(self.tokens):
            if tok.kind is TokenKind.IDENT and tok.text in simple:
                repl = simple[tok.text]
                self.tokens[i] = Token(repl.kind, repl.text, tok.line, tok.col)


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` and return its tokens (including the EOF sentinel)."""
    return Lexer(source).lex().tokens
