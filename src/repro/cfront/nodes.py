"""AST node hierarchy for the C frontend.

Node kinds deliberately mirror Clang's (``ForStmt``, ``BinaryOperator``,
``CallExpr``, ``DeclRefExpr`` ...) because the paper's heterogeneous node
types are exactly these kind names: the aug-AST assigns each node a type
attribute equal to its AST kind (section 5.1.1).

Every node exposes:

- ``kind`` -- the Clang-style class name used as the heterogeneous type;
- ``children()`` -- ordered child nodes, left-to-right in source order,
  which defines both AST edges and the left/right positional attribute;
- ``walk()`` -- preorder traversal.

Leaf nodes (identifiers and literals) carry ``tok_i``, their index in the
token stream, so lexical (token-neighbour) edges can be laid in true
source order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar, Iterator


@dataclass(slots=True)
class Node:
    """Base class of every AST node."""

    #: names of child-bearing attributes, in source order (ClassVar so each
    #: subclass overrides it with a plain class attribute).
    _fields: ClassVar[tuple[str, ...]] = ()

    @property
    def kind(self) -> str:
        """Clang-style node kind; the heterogeneous node type."""
        return type(self).__name__

    def children(self) -> Iterator["Node"]:
        """Yield child nodes in source order."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Preorder traversal of the subtree rooted here.

        Iterative with an explicit stack: the naive recursive generator
        pays a frame per tree level per yielded node, which profiled as
        the hottest frontend function over corpus workloads.
        """
        stack = [self]
        pop = stack.pop
        while stack:
            node = pop()
            yield node
            children = list(node.children())
            children.reverse()
            stack.extend(children)

    def find_all(self, *kinds: type) -> Iterator["Node"]:
        """All descendants (including self) that are instances of ``kinds``."""
        for node in self.walk():
            if isinstance(node, kinds):
                yield node


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TypeSpec(Node):
    """A (simplified) C type: base name, pointer depth, array dimensions.

    ``base`` keeps the textual specifier (``"int"``, ``"unsigned long"``,
    ``"struct point"``, or a typedef name).  ``array_dims`` holds one entry
    per ``[]`` declarator; ``None`` marks an unsized dimension.
    """

    base: str = "int"
    pointers: int = 0
    array_dims: list["Expr | None"] = field(default_factory=list)
    qualifiers: frozenset[str] = frozenset()

    _fields = ("array_dims",)

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_floating(self) -> bool:
        return self.base.split()[-1] in ("float", "double")

    def __str__(self) -> str:
        text = " ".join(itertools.chain(sorted(self.qualifiers), [self.base]))
        return text + "*" * self.pointers


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Expr(Node):
    """Base class of all expressions."""


@dataclass(slots=True)
class IntegerLiteral(Expr):
    text: str = "0"
    tok_i: int = -1

    @property
    def value(self) -> int:
        return int(self.text.rstrip("uUlL"), 0)


@dataclass(slots=True)
class FloatingLiteral(Expr):
    text: str = "0.0"
    tok_i: int = -1

    @property
    def value(self) -> float:
        return float(self.text.rstrip("fFlL"))


@dataclass(slots=True)
class CharLiteral(Expr):
    text: str = "'x'"
    tok_i: int = -1

    @property
    def value(self) -> int:
        body = self.text[1:-1]
        table = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\'": "'", "\\\\": "\\"}
        return ord(table.get(body, body[-1]))


@dataclass(slots=True)
class StringLiteral(Expr):
    text: str = '""'
    tok_i: int = -1


@dataclass(slots=True)
class DeclRefExpr(Expr):
    """A reference to a named variable or function."""

    name: str = ""
    tok_i: int = -1


@dataclass(slots=True)
class ArraySubscriptExpr(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]

    _fields = ("base", "index")


@dataclass(slots=True)
class CallExpr(Expr):
    callee: Expr = None  # type: ignore[assignment]
    args: list[Expr] = field(default_factory=list)

    _fields = ("callee", "args")

    @property
    def name(self) -> str:
        """Called function name when the callee is a plain identifier."""
        return self.callee.name if isinstance(self.callee, DeclRefExpr) else ""


@dataclass(slots=True)
class MemberExpr(Expr):
    base: Expr = None  # type: ignore[assignment]
    member: str = ""
    is_arrow: bool = False

    _fields = ("base",)


@dataclass(slots=True)
class UnaryOperator(Expr):
    """Prefix or postfix unary operation (``-x``, ``!x``, ``*p``, ``i++``)."""

    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]
    prefix: bool = True

    _fields = ("operand",)

    @property
    def is_incdec(self) -> bool:
        return self.op in ("++", "--")


#: Operators that make a BinaryOperator an assignment.
ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>="}
)


@dataclass(slots=True)
class BinaryOperator(Expr):
    """Binary operation including assignments and the comma operator.

    Clang models ``x += e`` as ``CompoundAssignOperator``; we keep a single
    class and distinguish through :attr:`is_assignment` /
    :attr:`is_compound_assignment`, which is what the analyses key on.
    """

    op: str = "+"
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]

    _fields = ("lhs", "rhs")

    @property
    def is_assignment(self) -> bool:
        return self.op in ASSIGN_OPS

    @property
    def is_compound_assignment(self) -> bool:
        return self.op in ASSIGN_OPS and self.op != "="


@dataclass(slots=True)
class ConditionalOperator(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    els: Expr = None  # type: ignore[assignment]

    _fields = ("cond", "then", "els")


@dataclass(slots=True)
class CastExpr(Expr):
    to_type: TypeSpec = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]

    _fields = ("to_type", "operand")


@dataclass(slots=True)
class SizeofExpr(Expr):
    """``sizeof(expr)`` or ``sizeof(type)``."""

    arg: Node = None  # type: ignore[assignment]

    _fields = ("arg",)


@dataclass(slots=True)
class InitListExpr(Expr):
    items: list[Expr] = field(default_factory=list)

    _fields = ("items",)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt(Node):
    """Base class of all statements.

    ``pragmas`` holds the raw text of ``#pragma`` lines that immediately
    precede the statement; OMP_Serial labels come from parsing these with
    :mod:`repro.pragma`.
    """

    pragmas: list[str] = field(default_factory=list)


@dataclass(slots=True)
class CompoundStmt(Stmt):
    stmts: list[Stmt] = field(default_factory=list)

    _fields = ("stmts",)


@dataclass(slots=True)
class DeclStmt(Stmt):
    decls: list["VarDecl"] = field(default_factory=list)

    _fields = ("decls",)


@dataclass(slots=True)
class ExprStmt(Stmt):
    """An expression statement; ``expr is None`` is the null statement."""

    expr: Expr | None = None

    _fields = ("expr",)


@dataclass(slots=True)
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    els: Stmt | None = None

    _fields = ("cond", "then", "els")


@dataclass(slots=True)
class ForStmt(Stmt):
    """A ``for`` loop.  ``init`` is a DeclStmt, ExprStmt or None."""

    init: Stmt | None = None
    cond: Expr | None = None
    inc: Expr | None = None
    body: Stmt = None  # type: ignore[assignment]

    _fields = ("init", "cond", "inc", "body")


@dataclass(slots=True)
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]

    _fields = ("cond", "body")


@dataclass(slots=True)
class DoStmt(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]

    _fields = ("body", "cond")


@dataclass(slots=True)
class ReturnStmt(Stmt):
    value: Expr | None = None

    _fields = ("value",)


@dataclass(slots=True)
class BreakStmt(Stmt):
    pass


@dataclass(slots=True)
class ContinueStmt(Stmt):
    pass


@dataclass(slots=True)
class GotoStmt(Stmt):
    label: str = ""


@dataclass(slots=True)
class LabelStmt(Stmt):
    name: str = ""
    stmt: Stmt = None  # type: ignore[assignment]

    _fields = ("stmt",)


@dataclass(slots=True)
class SwitchStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]

    _fields = ("cond", "body")


@dataclass(slots=True)
class CaseStmt(Stmt):
    value: Expr = None  # type: ignore[assignment]
    stmt: Stmt | None = None

    _fields = ("value", "stmt")


@dataclass(slots=True)
class DefaultStmt(Stmt):
    stmt: Stmt | None = None

    _fields = ("stmt",)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Decl(Node):
    """Base class of declarations."""


@dataclass(slots=True)
class VarDecl(Decl):
    name: str = ""
    var_type: TypeSpec = field(default_factory=TypeSpec)
    init: Expr | None = None
    tok_i: int = -1

    _fields = ("var_type", "init")


@dataclass(slots=True)
class ParmDecl(Decl):
    name: str = ""
    var_type: TypeSpec = field(default_factory=TypeSpec)
    tok_i: int = -1

    _fields = ("var_type",)


@dataclass(slots=True)
class FieldDecl(Decl):
    name: str = ""
    var_type: TypeSpec = field(default_factory=TypeSpec)

    _fields = ("var_type",)


@dataclass(slots=True)
class StructDecl(Decl):
    name: str = ""
    fields_: list[FieldDecl] = field(default_factory=list)
    is_union: bool = False

    _fields = ("fields_",)


@dataclass(slots=True)
class EnumDecl(Decl):
    name: str = ""
    enumerators: list[str] = field(default_factory=list)


@dataclass(slots=True)
class TypedefDecl(Decl):
    name: str = ""
    aliased: TypeSpec = field(default_factory=TypeSpec)

    _fields = ("aliased",)


@dataclass(slots=True)
class FunctionDecl(Decl):
    name: str = ""
    ret_type: TypeSpec = field(default_factory=TypeSpec)
    params: list[ParmDecl] = field(default_factory=list)
    body: CompoundStmt | None = None
    is_variadic: bool = False

    _fields = ("params", "body")


@dataclass(slots=True)
class TranslationUnit(Node):
    """Root of a parsed source file."""

    decls: list[Decl] = field(default_factory=list)

    _fields = ("decls",)

    def functions(self) -> list[FunctionDecl]:
        return [d for d in self.decls if isinstance(d, FunctionDecl)]

    def function(self, name: str) -> FunctionDecl | None:
        for fn in self.functions():
            if fn.name == name and fn.body is not None:
                return fn
        return None


#: Loop statement kinds, used throughout the dataset and analysis layers.
LOOP_KINDS = (ForStmt, WhileStmt, DoStmt)


def loops_of(root: Node) -> list[Stmt]:
    """All loop statements in the subtree, in preorder."""
    return [n for n in root.walk() if isinstance(n, LOOP_KINDS)]
