"""Diagnostics for the C frontend."""

from __future__ import annotations


class FrontendError(Exception):
    """Base class for all frontend diagnostics."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        loc = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{loc}")


class LexError(FrontendError):
    """Raised on malformed input at the character level."""


class ParseError(FrontendError):
    """Raised when the token stream does not form a valid C construct.

    The dataset pipeline uses this the way the paper uses Clang's
    compilability check: sources that raise ``ParseError`` are dropped
    from OMP_Serial.
    """
