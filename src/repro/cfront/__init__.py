"""C frontend: lexer, parser, AST, unparser.

This package is the stand-in for the paper's Clang-based tooling (see
DESIGN.md, substitution table).  The AST node kinds intentionally match
Clang's so the heterogeneous node types of the aug-AST are the same labels
the paper shows in Figure 3.
"""

from repro.cfront.errors import FrontendError, LexError, ParseError
from repro.cfront.lexer import Lexer, LexResult, tokenize
from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CaseStmt,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    Decl,
    DeclRefExpr,
    DeclStmt,
    DefaultStmt,
    DoStmt,
    EnumDecl,
    Expr,
    ExprStmt,
    FieldDecl,
    FloatingLiteral,
    ForStmt,
    FunctionDecl,
    GotoStmt,
    IfStmt,
    InitListExpr,
    IntegerLiteral,
    LabelStmt,
    LOOP_KINDS,
    loops_of,
    MemberExpr,
    Node,
    ParmDecl,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDecl,
    SwitchStmt,
    TranslationUnit,
    TypedefDecl,
    TypeSpec,
    UnaryOperator,
    VarDecl,
    WhileStmt,
)
from repro.cfront.parser import Parser, parse_loop, parse_source, parse_statements
from repro.cfront.unparse import loc_of, unparse

__all__ = [
    "FrontendError",
    "LexError",
    "ParseError",
    "Lexer",
    "LexResult",
    "tokenize",
    "Parser",
    "parse_source",
    "parse_statements",
    "parse_loop",
    "unparse",
    "loc_of",
    "LOOP_KINDS",
    "loops_of",
    # node classes
    "Node", "Expr", "Stmt", "Decl",
    "IntegerLiteral", "FloatingLiteral", "CharLiteral", "StringLiteral",
    "DeclRefExpr", "ArraySubscriptExpr", "CallExpr", "MemberExpr",
    "UnaryOperator", "BinaryOperator", "ConditionalOperator", "CastExpr",
    "SizeofExpr", "InitListExpr",
    "CompoundStmt", "DeclStmt", "ExprStmt", "IfStmt", "ForStmt", "WhileStmt",
    "DoStmt", "ReturnStmt", "BreakStmt", "ContinueStmt", "GotoStmt",
    "LabelStmt", "SwitchStmt", "CaseStmt", "DefaultStmt",
    "VarDecl", "ParmDecl", "FieldDecl", "StructDecl", "EnumDecl",
    "TypedefDecl", "FunctionDecl", "TranslationUnit", "TypeSpec",
]
