"""Recursive-descent parser for the C subset exercised by OMP_Serial.

The grammar covers what loop-centric benchmark C actually uses:

- external declarations: functions, globals, ``struct``/``union``/``enum``
  and ``typedef`` declarations;
- the full statement set (``if``/``for``/``while``/``do``/``switch``/
  ``break``/``continue``/``return``/``goto``/labels/compounds);
- the full C expression grammar with correct precedence and
  associativity, including assignments, casts, ``sizeof``, the ternary and
  comma operators, pointer/array/member accesses and calls.

``#pragma`` lines are attached to the statement that follows them, which
is how OpenMP annotations reach the dataset labeller.

Parse failures raise :class:`~repro.cfront.errors.ParseError`; the dataset
pipeline treats that the way the paper treats Clang rejection (the source
file is dropped).
"""

from __future__ import annotations

from repro.cfront.errors import ParseError
from repro.cfront.lexer import Lexer
from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CaseStmt,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    Decl,
    DeclRefExpr,
    DeclStmt,
    DefaultStmt,
    DoStmt,
    EnumDecl,
    Expr,
    ExprStmt,
    FieldDecl,
    FloatingLiteral,
    ForStmt,
    FunctionDecl,
    GotoStmt,
    IfStmt,
    InitListExpr,
    IntegerLiteral,
    LabelStmt,
    MemberExpr,
    Node,
    ParmDecl,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDecl,
    SwitchStmt,
    TranslationUnit,
    TypedefDecl,
    TypeSpec,
    UnaryOperator,
    VarDecl,
    WhileStmt,
)
from repro.cfront.tokens import COMPOUND_ASSIGN_OPS, Token, TokenKind

#: Type-specifier keywords that can open a declaration.
_TYPE_SPECIFIERS = frozenset(
    """
    void char short int long float double signed unsigned _Bool
    struct union enum
    """.split()
)

#: Storage/qualifier keywords absorbed into TypeSpec.qualifiers.
_QUALIFIERS = frozenset(
    "const volatile restrict static extern register auto inline typedef".split()
)

#: Binary operator precedence (higher binds tighter).  Assignment and the
#: ternary are handled separately because they are right-associative.
_BINOP_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNARY_PREFIX_OPS = ("&", "*", "+", "-", "~", "!", "++", "--")


class Parser:
    """Token-stream → AST.  One instance per source file."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.typedefs: set[str] = set()
        self.struct_tags: set[str] = set()
        self.enum_constants: set[str] = set()
        #: struct/union/enum definitions parsed inside decl-specifiers,
        #: waiting to be attached to the surrounding declaration list.
        self._pending_tag_decls: list[Decl] = []

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        # Hottest function of the frontend: index directly and let the
        # (rare) past-the-end case fall back to the EOF sentinel.
        try:
            return self.tokens[self.pos + offset]
        except IndexError:
            return self.tokens[-1]

    def _next(self) -> Token:
        try:
            tok = self.tokens[self.pos]
        except IndexError:
            tok = self.tokens[-1]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        return self._next()

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    def _collect_pragmas(self) -> list[str]:
        pragmas: list[str] = []
        while self._peek().kind is TokenKind.PRAGMA:
            pragmas.append(self._next().text)
        return pragmas

    # -- type recognition ------------------------------------------------------

    def _starts_declaration(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind is TokenKind.KEYWORD:
            return tok.text in _TYPE_SPECIFIERS or tok.text in _QUALIFIERS
        if tok.kind is TokenKind.IDENT and tok.text in self.typedefs:
            # ``T * x`` is a declaration only if T is a known typedef and the
            # following token shape matches a declarator.
            nxt = self._peek(offset + 1)
            return nxt.kind is TokenKind.IDENT or nxt.is_punct("*")
        return False

    # -- entry points ------------------------------------------------------------

    def parse_translation_unit(self) -> TranslationUnit:
        decls: list[Decl] = []
        while self._peek().kind is not TokenKind.EOF:
            if self._peek().kind is TokenKind.PRAGMA:
                # A file-level pragma not attached to a loop (e.g. ``omp
                # declare``); consume and drop.
                self._next()
                continue
            if self._accept_punct(";"):
                continue
            decls.extend(self._parse_external_declaration())
        return TranslationUnit(decls=decls)

    # -- external declarations ----------------------------------------------------

    def _parse_external_declaration(self) -> list[Decl]:
        base, quals = self._parse_decl_specifiers()
        tag_decls: list[Decl] = list(self._pending_tag_decls)
        self._pending_tag_decls.clear()
        if "typedef" in quals:
            return tag_decls + [self._parse_typedef(base, quals - {"typedef"})]

        # ``struct S { ... };`` with no declarators.
        if self._accept_punct(";"):
            return tag_decls

        first_type, first_name, first_tok = self._parse_declarator(base, quals)

        # Function definition or prototype?
        if self._peek().is_punct("(") and first_name:
            return tag_decls + [self._parse_function(first_type, first_name)]

        decls: list[Decl] = tag_decls
        decls.append(self._finish_var_decl(first_type, first_name, first_tok))
        while self._accept_punct(","):
            var_type, name, tok = self._parse_declarator(base, quals)
            decls.append(self._finish_var_decl(var_type, name, tok))
        self._expect_punct(";")
        return decls

    def _parse_typedef(self, base: TypeSpec, quals: frozenset[str]) -> TypedefDecl:
        var_type, name, _ = self._parse_declarator(base, quals)
        if not name:
            tok = self._peek()
            raise ParseError("typedef requires a name", tok.line, tok.col)
        self._expect_punct(";")
        self.typedefs.add(name)
        return TypedefDecl(name=name, aliased=var_type)

    def _finish_var_decl(self, var_type: TypeSpec, name: str, tok_i: int) -> VarDecl:
        init: Expr | None = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        return VarDecl(name=name, var_type=var_type, init=init, tok_i=tok_i)

    def _parse_initializer(self) -> Expr:
        if self._peek().is_punct("{"):
            self._next()
            items: list[Expr] = []
            while not self._peek().is_punct("}"):
                items.append(self._parse_initializer())
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return InitListExpr(items=items)
        return self._parse_assignment_expr()

    def _parse_function(self, ret_type: TypeSpec, name: str) -> FunctionDecl:
        self._expect_punct("(")
        params: list[ParmDecl] = []
        variadic = False
        if not self._peek().is_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._next()
            else:
                while True:
                    if self._peek().is_punct("..."):
                        self._next()
                        variadic = True
                        break
                    params.append(self._parse_param())
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        body: CompoundStmt | None = None
        if self._peek().is_punct("{"):
            body = self._parse_compound()
        else:
            self._expect_punct(";")
        return FunctionDecl(
            name=name, ret_type=ret_type, params=params, body=body,
            is_variadic=variadic,
        )

    def _parse_param(self) -> ParmDecl:
        base, quals = self._parse_decl_specifiers()
        var_type, name, tok_i = self._parse_declarator(base, quals, allow_abstract=True)
        return ParmDecl(name=name, var_type=var_type, tok_i=tok_i)

    # -- declaration specifiers and declarators -------------------------------------

    def _parse_decl_specifiers(self) -> tuple[TypeSpec, frozenset[str]]:
        """Parse the type-specifier/qualifier prefix of a declaration."""
        quals: set[str] = set()
        base_words: list[str] = []
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in _QUALIFIERS:
                quals.add(self._next().text)
            elif tok.is_keyword("struct", "union"):
                struct_node, tag = self._parse_struct_or_union()
                if struct_node.fields_:
                    self._pending_tag_decls.append(struct_node)
                base_words = [("union " if struct_node.is_union else "struct ") + tag]
            elif tok.is_keyword("enum"):
                enum_node, tag = self._parse_enum()
                if enum_node.enumerators:
                    self._pending_tag_decls.append(enum_node)
                base_words = ["enum " + tag]
            elif tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_SPECIFIERS:
                base_words.append(self._next().text)
            elif (
                tok.kind is TokenKind.IDENT
                and tok.text in self.typedefs
                and not base_words
            ):
                base_words.append(self._next().text)
            else:
                break
        if not base_words:
            base_words = ["int"]  # implicit int (K&R style)
        base = TypeSpec(base=" ".join(base_words), qualifiers=frozenset(quals))
        return base, frozenset(quals)

    def _parse_struct_or_union(self) -> tuple[StructDecl, str]:
        kw = self._next()  # struct / union
        is_union = kw.text == "union"
        tag = ""
        if self._peek().kind is TokenKind.IDENT:
            tag = self._next().text
            self.struct_tags.add(tag)
        fields: list[FieldDecl] = []
        if self._accept_punct("{"):
            while not self._peek().is_punct("}"):
                base, quals = self._parse_decl_specifiers()
                while True:
                    var_type, name, _ = self._parse_declarator(base, quals)
                    # Bitfields: ``int x : 3;``
                    if self._accept_punct(":"):
                        self._parse_conditional_expr()
                    fields.append(FieldDecl(name=name, var_type=var_type))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            self._expect_punct("}")
        if not tag:
            tag = f"<anon{kw.line}>"
        return StructDecl(name=tag, fields_=fields, is_union=is_union), tag

    def _parse_enum(self) -> tuple[EnumDecl, str]:
        self._next()  # enum
        tag = ""
        if self._peek().kind is TokenKind.IDENT:
            tag = self._next().text
        names: list[str] = []
        if self._accept_punct("{"):
            while not self._peek().is_punct("}"):
                name = self._expect_ident().text
                names.append(name)
                self.enum_constants.add(name)
                if self._accept_punct("="):
                    self._parse_conditional_expr()
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
        if not tag:
            tag = "<anon-enum>"
        return EnumDecl(name=tag, enumerators=names), tag

    def _parse_declarator(
        self, base: TypeSpec, quals: frozenset[str], allow_abstract: bool = False
    ) -> tuple[TypeSpec, str, int]:
        """Parse ``* ... name [dims]`` and return (type, name, token index)."""
        pointers = 0
        while self._peek().is_punct("*"):
            self._next()
            pointers += 1
            while self._peek().is_keyword("const", "volatile", "restrict"):
                self._next()
        name = ""
        tok_i = -1
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            name = self._next().text
            tok_i = tok.index
        elif not allow_abstract:
            raise ParseError(
                f"expected declarator name, found {tok.text!r}", tok.line, tok.col
            )
        dims: list[Expr | None] = []
        while self._peek().is_punct("["):
            self._next()
            if self._peek().is_punct("]"):
                dims.append(None)
            else:
                dims.append(self._parse_assignment_expr())
            self._expect_punct("]")
        var_type = TypeSpec(
            base=base.base,
            pointers=base.pointers + pointers,
            array_dims=dims,
            qualifiers=base.qualifiers | quals,
        )
        return var_type, name, tok_i

    # -- statements ---------------------------------------------------------------

    def _parse_statement(self) -> Stmt:
        pragmas = self._collect_pragmas()
        stmt = self._parse_statement_inner()
        if pragmas:
            stmt.pragmas = pragmas + stmt.pragmas
        return stmt

    def _parse_statement_inner(self) -> Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_compound()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do()
        if tok.is_keyword("switch"):
            return self._parse_switch()
        if tok.is_keyword("case"):
            self._next()
            value = self._parse_conditional_expr()
            self._expect_punct(":")
            inner = None
            if not self._peek().is_punct("}"):
                inner = self._parse_statement()
            return CaseStmt(value=value, stmt=inner)
        if tok.is_keyword("default"):
            self._next()
            self._expect_punct(":")
            inner = None
            if not self._peek().is_punct("}"):
                inner = self._parse_statement()
            return DefaultStmt(stmt=inner)
        if tok.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return ReturnStmt(value=value)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return BreakStmt()
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ContinueStmt()
        if tok.is_keyword("goto"):
            self._next()
            label = self._expect_ident().text
            self._expect_punct(";")
            return GotoStmt(label=label)
        if tok.is_punct(";"):
            self._next()
            return ExprStmt(expr=None)
        if (
            tok.kind is TokenKind.IDENT
            and self._peek(1).is_punct(":")
            and not self._peek(2).is_punct(":")
        ):
            self._next()
            self._next()
            return LabelStmt(name=tok.text, stmt=self._parse_statement())
        if self._starts_declaration():
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self._expect_punct(";")
        return ExprStmt(expr=expr)

    def _parse_compound(self) -> CompoundStmt:
        self._expect_punct("{")
        stmts: list[Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                tok = self._peek()
                raise ParseError("unterminated compound statement", tok.line, tok.col)
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return CompoundStmt(stmts=stmts)

    def _parse_decl_stmt(self) -> DeclStmt:
        base, quals = self._parse_decl_specifiers()
        # Function-local struct/enum definitions are recorded only through
        # the type name; drop the pending tag node so it cannot leak into a
        # later external declaration.
        self._pending_tag_decls.clear()
        decls: list[VarDecl] = []
        while True:
            var_type, name, tok_i = self._parse_declarator(base, quals)
            decls.append(self._finish_var_decl(var_type, name, tok_i))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return DeclStmt(decls=decls)

    def _parse_if(self) -> IfStmt:
        self._next()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_statement()
        els = None
        if self._peek().is_keyword("else"):
            self._next()
            els = self._parse_statement()
        return IfStmt(cond=cond, then=then, els=els)

    def _parse_for(self) -> ForStmt:
        self._next()
        self._expect_punct("(")
        init: Stmt | None = None
        if not self._accept_punct(";"):
            if self._starts_declaration():
                init = self._parse_decl_stmt()
            else:
                expr = self._parse_expr()
                self._expect_punct(";")
                init = ExprStmt(expr=expr)
        cond: Expr | None = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";")
        inc: Expr | None = None
        if not self._peek().is_punct(")"):
            inc = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement()
        return ForStmt(init=init, cond=cond, inc=inc, body=body)

    def _parse_while(self) -> WhileStmt:
        self._next()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement()
        return WhileStmt(cond=cond, body=body)

    def _parse_do(self) -> DoStmt:
        self._next()
        body = self._parse_statement()
        tok = self._peek()
        if not tok.is_keyword("while"):
            raise ParseError("expected 'while' after do-body", tok.line, tok.col)
        self._next()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoStmt(body=body, cond=cond)

    def _parse_switch(self) -> SwitchStmt:
        self._next()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement()
        return SwitchStmt(cond=cond, body=body)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        """Full expression including the comma operator."""
        expr = self._parse_assignment_expr()
        while self._peek().is_punct(","):
            self._next()
            rhs = self._parse_assignment_expr()
            expr = BinaryOperator(op=",", lhs=expr, rhs=rhs)
        return expr

    def _parse_assignment_expr(self) -> Expr:
        lhs = self._parse_conditional_expr()
        tok = self._peek()
        if tok.is_punct("=") or (
            tok.kind is TokenKind.PUNCT and tok.text in COMPOUND_ASSIGN_OPS
        ):
            op = self._next().text
            rhs = self._parse_assignment_expr()  # right-associative
            return BinaryOperator(op=op, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_conditional_expr(self) -> Expr:
        cond = self._parse_binary_expr(1)
        if self._accept_punct("?"):
            then = self._parse_expr()
            self._expect_punct(":")
            els = self._parse_conditional_expr()
            return ConditionalOperator(cond=cond, then=then, els=els)
        return cond

    def _parse_binary_expr(self, min_prec: int) -> Expr:
        lhs = self._parse_cast_expr()
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.PUNCT:
                return lhs
            prec = _BINOP_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return lhs
            op = self._next().text
            rhs = self._parse_binary_expr(prec + 1)
            lhs = BinaryOperator(op=op, lhs=lhs, rhs=rhs)

    def _is_type_name_ahead(self) -> bool:
        """True when the token after an open paren begins a type name."""
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD and (
            tok.text in _TYPE_SPECIFIERS or tok.text in ("const", "volatile")
        ):
            return True
        return tok.kind is TokenKind.IDENT and tok.text in self.typedefs

    def _parse_type_name(self) -> TypeSpec:
        base, quals = self._parse_decl_specifiers()
        var_type, _, _ = self._parse_declarator(base, quals, allow_abstract=True)
        return var_type

    def _parse_cast_expr(self) -> Expr:
        if self._peek().is_punct("("):
            save = self.pos
            self._next()
            if self._is_type_name_ahead():
                to_type = self._parse_type_name()
                if self._peek().is_punct(")"):
                    self._next()
                    # ``(int){...}`` compound literals are not supported;
                    # treat what follows as the cast operand.
                    operand = self._parse_cast_expr()
                    return CastExpr(to_type=to_type, operand=operand)
            self.pos = save
        return self._parse_unary_expr()

    def _parse_unary_expr(self) -> Expr:
        tok = self._peek()
        if tok.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("("):
                save = self.pos
                self._next()
                if self._is_type_name_ahead():
                    arg: Node = self._parse_type_name()
                    self._expect_punct(")")
                    return SizeofExpr(arg=arg)
                self.pos = save
            return SizeofExpr(arg=self._parse_unary_expr())
        if tok.kind is TokenKind.PUNCT and tok.text in _UNARY_PREFIX_OPS:
            op = self._next().text
            operand = self._parse_cast_expr()
            return UnaryOperator(op=op, operand=operand, prefix=True)
        return self._parse_postfix_expr()

    def _parse_postfix_expr(self) -> Expr:
        expr = self._parse_primary_expr()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = ArraySubscriptExpr(base=expr, index=index)
            elif tok.is_punct("("):
                self._next()
                args: list[Expr] = []
                while not self._peek().is_punct(")"):
                    args.append(self._parse_assignment_expr())
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
                expr = CallExpr(callee=expr, args=args)
            elif tok.is_punct("."):
                self._next()
                member = self._expect_ident().text
                expr = MemberExpr(base=expr, member=member, is_arrow=False)
            elif tok.is_punct("->"):
                self._next()
                member = self._expect_ident().text
                expr = MemberExpr(base=expr, member=member, is_arrow=True)
            elif tok.is_punct("++", "--"):
                op = self._next().text
                expr = UnaryOperator(op=op, operand=expr, prefix=False)
            else:
                return expr

    def _parse_primary_expr(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_CONST:
            self._next()
            return IntegerLiteral(text=tok.text, tok_i=tok.index)
        if tok.kind is TokenKind.FLOAT_CONST:
            self._next()
            return FloatingLiteral(text=tok.text, tok_i=tok.index)
        if tok.kind is TokenKind.CHAR_CONST:
            self._next()
            return CharLiteral(text=tok.text, tok_i=tok.index)
        if tok.kind is TokenKind.STRING:
            self._next()
            # Adjacent string literals concatenate.
            text = tok.text
            while self._peek().kind is TokenKind.STRING:
                text = text[:-1] + self._next().text[1:]
            return StringLiteral(text=text, tok_i=tok.index)
        if tok.kind is TokenKind.IDENT:
            self._next()
            return DeclRefExpr(name=tok.text, tok_i=tok.index)
        if tok.is_punct("("):
            self._next()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_source(source: str) -> TranslationUnit:
    """Parse a complete C source file into a :class:`TranslationUnit`."""
    tokens = Lexer(source).lex().tokens
    return Parser(tokens).parse_translation_unit()


def parse_statements(source: str) -> CompoundStmt:
    """Parse a bare statement sequence (no enclosing function needed)."""
    tokens = Lexer("{" + source + "\n}").lex().tokens
    parser = Parser(tokens)
    block = parser._parse_compound()
    eof = parser._peek()
    if eof.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {eof.text!r}", eof.line, eof.col)
    return block


def parse_loop(source: str) -> Stmt:
    """Parse a snippet and return the first loop statement in it.

    Convenience for tests, examples, and the dataset loop extractor: the
    snippet may contain leading declarations and trailing statements.
    """
    from repro.cfront.nodes import loops_of

    block = parse_statements(source)
    loops = loops_of(block)
    if not loops:
        raise ParseError("no loop found in snippet")
    return loops[0]
