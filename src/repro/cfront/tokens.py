"""Token definitions for the C frontend.

The lexer produces a flat list of :class:`Token`.  Token kinds mirror the
classic C token classes (keyword, identifier, constant, string-literal,
punctuator) plus a ``PRAGMA`` kind: ``#pragma`` lines are kept as single
tokens so the parser can attach OpenMP pragmas to the statement that
follows them, which is how OMP_Serial labelling works.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenKind(enum.Enum):
    """Classes of C tokens."""

    KEYWORD = "keyword"
    IDENT = "ident"
    INT_CONST = "int"
    FLOAT_CONST = "float"
    CHAR_CONST = "char"
    STRING = "string"
    PUNCT = "punct"
    PRAGMA = "pragma"
    EOF = "eof"


#: C99 keywords (plus a few C11 ones seen in the wild).
KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool _Complex _Imaginary
    """.split()
)

#: Multi-character punctuators, longest first so maximal munch works by
#: scanning this list in order.
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
    "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
)

#: Assignment operators; ``=`` handled separately by the parser.
COMPOUND_ASSIGN_OPS = frozenset(
    {"+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>="}
)


@dataclass(slots=True)
class Token:
    """A single lexed token.

    Attributes
    ----------
    kind:
        Token class.
    text:
        Exact source spelling (for ``PRAGMA`` the full directive line
        without the leading ``#``).
    line, col:
        1-based source position of the first character.
    index:
        Position of the token in the token stream.  Leaf AST nodes keep
        this so lexical (token-neighbour) edges of the aug-AST can be
        ordered by true source order.
    """

    kind: TokenKind
    text: str
    line: int = 0
    col: int = 0
    index: int = field(default=-1, compare=False)

    def is_punct(self, *texts: str) -> bool:
        """True when this is a punctuator with one of the given spellings."""
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_keyword(self, *names: str) -> bool:
        """True when this is a keyword with one of the given names."""
        return self.kind is TokenKind.KEYWORD and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"
