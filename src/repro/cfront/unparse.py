"""AST → C source.

The paper notes that "an AST can be easily converted back to source code";
this module provides that inverse.  The dataset generator uses it to emit
loop snippets, and round-trip (parse → unparse → parse) equality is a
property test on the frontend.

Parenthesisation is reconstructed from operator precedence, so the output
is semantically identical to the input even though redundant parentheses
are dropped.
"""

from __future__ import annotations

from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CaseStmt,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    DeclRefExpr,
    DeclStmt,
    DefaultStmt,
    DoStmt,
    EnumDecl,
    Expr,
    ExprStmt,
    FloatingLiteral,
    ForStmt,
    FunctionDecl,
    GotoStmt,
    IfStmt,
    InitListExpr,
    IntegerLiteral,
    LabelStmt,
    MemberExpr,
    Node,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDecl,
    SwitchStmt,
    TranslationUnit,
    TypedefDecl,
    TypeSpec,
    UnaryOperator,
    VarDecl,
    WhileStmt,
)

#: Precedence levels for the unparser; mirrors the parser's table with
#: extra entries for assignment (lowest non-comma) and comma.
_PRECEDENCE = {
    ",": 0,
    "=": 1, "+=": 1, "-=": 1, "*=": 1, "/=": 1, "%=": 1,
    "&=": 1, "^=": 1, "|=": 1, "<<=": 1, ">>=": 1,
    "?:": 2,
    "||": 3,
    "&&": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "==": 8, "!=": 8,
    "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10,
    "+": 11, "-": 11,
    "*": 12, "/": 12, "%": 12,
}
_UNARY_PREC = 13
_POSTFIX_PREC = 14

_RIGHT_ASSOC = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>="}
)


class Unparser:
    """Stateful pretty-printer; one instance per emission."""

    def __init__(self, indent: str = "    ") -> None:
        self.indent_unit = indent
        self.lines: list[str] = []
        self.depth = 0

    # -- helpers -------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append(self.indent_unit * self.depth + text)

    def _type_prefix(self, t: TypeSpec) -> str:
        quals = " ".join(q for q in sorted(t.qualifiers) if q != "typedef")
        prefix = (quals + " " if quals else "") + t.base
        return prefix + " " + "*" * t.pointers if t.pointers else prefix

    def _declarator(self, t: TypeSpec, name: str) -> str:
        dims = "".join(
            "[" + (self.expr(d) if d is not None else "") + "]"
            for d in t.array_dims
        )
        stars = "*" * t.pointers
        quals = " ".join(q for q in sorted(t.qualifiers) if q != "typedef")
        lead = (quals + " " if quals else "") + t.base
        return f"{lead} {stars}{name}{dims}"

    # -- expressions ------------------------------------------------------------

    def expr(self, e: Expr, parent_prec: int = 0, side: str = "") -> str:
        """Render an expression, adding parens when precedence requires."""
        if isinstance(e, IntegerLiteral):
            return e.text
        if isinstance(e, FloatingLiteral):
            return e.text
        if isinstance(e, CharLiteral):
            return e.text
        if isinstance(e, StringLiteral):
            return e.text
        if isinstance(e, DeclRefExpr):
            return e.name
        if isinstance(e, ArraySubscriptExpr):
            base = self.expr(e.base, _POSTFIX_PREC, "l")
            return f"{base}[{self.expr(e.index)}]"
        if isinstance(e, CallExpr):
            callee = self.expr(e.callee, _POSTFIX_PREC, "l")
            args = ", ".join(self.expr(a, 1) for a in e.args)
            return f"{callee}({args})"
        if isinstance(e, MemberExpr):
            base = self.expr(e.base, _POSTFIX_PREC, "l")
            sep = "->" if e.is_arrow else "."
            return f"{base}{sep}{e.member}"
        if isinstance(e, UnaryOperator):
            inner = self.expr(e.operand, _UNARY_PREC, "r")
            if e.prefix:
                # `-(-x)` must not fuse into `--x` (predecrement), nor
                # `&(&x)` into `&&x`; a space keeps the lexemes apart.
                sep = " " if inner.startswith(e.op[-1]) else ""
                text = f"{e.op}{sep}{inner}"
            else:
                text = f"{inner}{e.op}"
            return f"({text})" if parent_prec > _UNARY_PREC else text
        if isinstance(e, BinaryOperator):
            prec = _PRECEDENCE[e.op]
            right_assoc = e.op in _RIGHT_ASSOC
            lhs = self.expr(e.lhs, prec + (1 if right_assoc else 0), "l")
            rhs = self.expr(e.rhs, prec + (0 if right_assoc else 1), "r")
            sep = f"{e.op} " if e.op == "," else f" {e.op} "
            text = f"{lhs}{sep}{rhs}"
            needs_parens = prec < parent_prec or (
                prec == parent_prec and (side == "r") != right_assoc
            )
            return f"({text})" if needs_parens else text
        if isinstance(e, ConditionalOperator):
            prec = _PRECEDENCE["?:"]
            text = (
                f"{self.expr(e.cond, prec + 1)} ? {self.expr(e.then)}"
                f" : {self.expr(e.els, prec)}"
            )
            return f"({text})" if parent_prec > prec else text
        if isinstance(e, CastExpr):
            inner = self.expr(e.operand, _UNARY_PREC, "r")
            text = f"({self._type_prefix(e.to_type)}){inner}"
            return f"({text})" if parent_prec > _UNARY_PREC else text
        if isinstance(e, SizeofExpr):
            if isinstance(e.arg, TypeSpec):
                return f"sizeof({self._type_prefix(e.arg)})"
            return f"sizeof({self.expr(e.arg)})"
        if isinstance(e, InitListExpr):
            return "{" + ", ".join(self.expr(i, 1) for i in e.items) + "}"
        raise TypeError(f"cannot unparse expression {e!r}")

    # -- statements ---------------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        for pragma in s.pragmas:
            self._emit(f"#{pragma}")
        if isinstance(s, CompoundStmt):
            self._emit("{")
            self.depth += 1
            for inner in s.stmts:
                self.stmt(inner)
            self.depth -= 1
            self._emit("}")
        elif isinstance(s, DeclStmt):
            parts = []
            for d in s.decls:
                text = self._declarator(d.var_type, d.name)
                if d.init is not None:
                    text += f" = {self.expr(d.init, 1)}"
                parts.append(text)
            # Multiple declarators share the specifier only when types
            # match exactly; emitting one statement per declarator is
            # always correct and simpler.
            for part in parts:
                self._emit(part + ";")
        elif isinstance(s, ExprStmt):
            self._emit((self.expr(s.expr) if s.expr is not None else "") + ";")
        elif isinstance(s, IfStmt):
            self._emit(f"if ({self.expr(s.cond)})")
            self._nested(s.then)
            if s.els is not None:
                self._emit("else")
                self._nested(s.els)
        elif isinstance(s, ForStmt):
            init = ""
            if isinstance(s.init, DeclStmt):
                d = s.init.decls[0]
                init = self._declarator(d.var_type, d.name)
                if d.init is not None:
                    init += f" = {self.expr(d.init, 1)}"
                for extra in s.init.decls[1:]:
                    init += f", {extra.name}"
                    if extra.init is not None:
                        init += f" = {self.expr(extra.init, 1)}"
            elif isinstance(s.init, ExprStmt) and s.init.expr is not None:
                init = self.expr(s.init.expr)
            cond = self.expr(s.cond) if s.cond is not None else ""
            inc = self.expr(s.inc) if s.inc is not None else ""
            self._emit(f"for ({init}; {cond}; {inc})")
            self._nested(s.body)
        elif isinstance(s, WhileStmt):
            self._emit(f"while ({self.expr(s.cond)})")
            self._nested(s.body)
        elif isinstance(s, DoStmt):
            self._emit("do")
            self._nested(s.body)
            self._emit(f"while ({self.expr(s.cond)});")
        elif isinstance(s, ReturnStmt):
            if s.value is not None:
                self._emit(f"return {self.expr(s.value)};")
            else:
                self._emit("return;")
        elif isinstance(s, BreakStmt):
            self._emit("break;")
        elif isinstance(s, ContinueStmt):
            self._emit("continue;")
        elif isinstance(s, GotoStmt):
            self._emit(f"goto {s.label};")
        elif isinstance(s, LabelStmt):
            self._emit(f"{s.name}:")
            self.stmt(s.stmt)
        elif isinstance(s, SwitchStmt):
            self._emit(f"switch ({self.expr(s.cond)})")
            self._nested(s.body)
        elif isinstance(s, CaseStmt):
            self._emit(f"case {self.expr(s.value)}:")
            if s.stmt is not None:
                self.depth += 1
                self.stmt(s.stmt)
                self.depth -= 1
        elif isinstance(s, DefaultStmt):
            self._emit("default:")
            if s.stmt is not None:
                self.depth += 1
                self.stmt(s.stmt)
                self.depth -= 1
        else:
            raise TypeError(f"cannot unparse statement {s!r}")

    def _nested(self, s: Stmt) -> None:
        if isinstance(s, CompoundStmt):
            self.stmt(s)
        else:
            self.depth += 1
            self.stmt(s)
            self.depth -= 1

    # -- declarations ------------------------------------------------------------

    def decl(self, d: Node) -> None:
        if isinstance(d, FunctionDecl):
            params = ", ".join(
                self._declarator(p.var_type, p.name).strip() for p in d.params
            )
            if d.is_variadic:
                params += ", ..." if params else "..."
            ret = self._type_prefix(d.ret_type)
            if d.body is None:
                self._emit(f"{ret} {d.name}({params or 'void'});")
            else:
                self._emit(f"{ret} {d.name}({params or 'void'})")
                self.stmt(d.body)
        elif isinstance(d, VarDecl):
            text = self._declarator(d.var_type, d.name)
            if d.init is not None:
                text += f" = {self.expr(d.init, 1)}"
            self._emit(text + ";")
        elif isinstance(d, StructDecl):
            kw = "union" if d.is_union else "struct"
            self._emit(f"{kw} {d.name} {{")
            self.depth += 1
            for f in d.fields_:
                self._emit(self._declarator(f.var_type, f.name) + ";")
            self.depth -= 1
            self._emit("};")
        elif isinstance(d, EnumDecl):
            self._emit(f"enum {d.name} {{ {', '.join(d.enumerators)} }};")
        elif isinstance(d, TypedefDecl):
            self._emit(f"typedef {self._declarator(d.aliased, d.name)};")
        else:
            raise TypeError(f"cannot unparse declaration {d!r}")


def unparse(node: Node) -> str:
    """Render any AST node back to C source text."""
    up = Unparser()
    if isinstance(node, TranslationUnit):
        for d in node.decls:
            up.decl(d)
    elif isinstance(node, Stmt):
        up.stmt(node)
    elif isinstance(node, Expr):
        return up.expr(node)
    else:
        up.decl(node)
    return "\n".join(up.lines)


def loc_of(node: Node) -> int:
    """Lines of code of a node when unparsed (the paper's Avg. LOC metric)."""
    return len([ln for ln in unparse(node).splitlines() if ln.strip()])
