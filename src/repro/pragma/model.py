"""Structured representation of OpenMP pragmas."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Reduction operators OpenMP 4.5 accepts (the paper's synthetic generator
#: uses only ``+`` and ``*`` because reductions must be associative and
#: commutative; crawled code may carry any of these).
REDUCTION_OPS = ("+", "*", "-", "&", "|", "^", "&&", "||", "min", "max")

#: The four pragma categories of Table 1 / Table 5 plus the catch-all for
#: plain ``parallel for`` without an interesting clause.
CATEGORIES = ("reduction", "private", "simd", "target", "parallel")


class PragmaError(ValueError):
    """Raised for malformed pragma text."""


@dataclass
class OmpClause:
    """A single OpenMP clause, e.g. ``reduction(+:sum)`` or ``private(i, j)``.

    ``args`` holds the raw comma-separated arguments; for ``reduction`` the
    operator is split off into :attr:`reduction_op` and ``args`` holds only
    the variable list.
    """

    name: str
    args: list[str] = field(default_factory=list)
    reduction_op: str | None = None

    def __str__(self) -> str:
        if not self.args and self.reduction_op is None:
            return self.name
        inner = ", ".join(self.args)
        if self.reduction_op is not None:
            inner = f"{self.reduction_op}:{inner}"
        return f"{self.name}({inner})"


@dataclass
class OmpPragma:
    """A parsed ``#pragma omp`` line.

    ``directives`` is the directive-name sequence (``["parallel", "for"]``,
    ``["target", "teams", "distribute"]``, ``["simd"]``, ...) and
    ``clauses`` the following clause list.
    """

    directives: list[str] = field(default_factory=list)
    clauses: list[OmpClause] = field(default_factory=list)
    raw: str = ""

    # -- clause queries ----------------------------------------------------

    def clause(self, name: str) -> OmpClause | None:
        for c in self.clauses:
            if c.name == name:
                return c
        return None

    def has_clause(self, name: str) -> bool:
        return self.clause(name) is not None

    def has_directive(self, name: str) -> bool:
        return name in self.directives

    @property
    def is_loop_directive(self) -> bool:
        """True for the worksharing-loop pragmas OMP_Serial labels from.

        The paper's crawl keeps loops under ``#pragma omp parallel for`` or
        ``#pragma omp for`` (section 4.1); ``simd``/``target`` variants of
        those count as well since they subsume the loop directive.
        """
        return "for" in self.directives or "simd" in self.directives

    @property
    def reductions(self) -> list[tuple[str, str]]:
        """``(operator, variable)`` pairs across all reduction clauses."""
        pairs: list[tuple[str, str]] = []
        for c in self.clauses:
            if c.name == "reduction" and c.reduction_op is not None:
                pairs.extend((c.reduction_op, v) for v in c.args)
        return pairs

    @property
    def private_vars(self) -> list[str]:
        out: list[str] = []
        for c in self.clauses:
            if c.name in ("private", "firstprivate", "lastprivate"):
                out.extend(c.args)
        return out

    def __str__(self) -> str:
        parts = ["omp", *self.directives, *map(str, self.clauses)]
        return "pragma " + " ".join(parts)
