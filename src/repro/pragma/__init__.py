"""OpenMP pragma parsing and classification.

OMP_Serial labels every loop from the pragma text that precedes it
(section 4.2 of the paper): loops under ``#pragma omp parallel for`` or
``#pragma omp for`` are *parallel*, and parallel loops are subdivided into
``private`` / ``reduction`` / ``simd`` / ``target`` categories by clause
and directive inspection.  This package turns raw pragma lines into
structured objects and implements that exact labelling rule.
"""

from repro.pragma.model import (
    CATEGORIES,
    OmpClause,
    OmpPragma,
    PragmaError,
    REDUCTION_OPS,
)
from repro.pragma.parser import parse_omp_pragma, pragma_category, loop_label

__all__ = [
    "OmpClause",
    "OmpPragma",
    "PragmaError",
    "parse_omp_pragma",
    "pragma_category",
    "loop_label",
    "CATEGORIES",
    "REDUCTION_OPS",
]
