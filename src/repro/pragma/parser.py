"""Parser for ``#pragma omp`` lines and the OMP_Serial labelling rule."""

from __future__ import annotations

import re

from repro.pragma.model import CATEGORIES, OmpClause, OmpPragma, PragmaError, REDUCTION_OPS

#: Directive words that may open an ``omp`` pragma, in composition order.
_DIRECTIVE_WORDS = frozenset(
    """
    parallel for simd target teams distribute sections section single task
    taskloop master critical atomic barrier taskwait flush ordered declare
    threadprivate
    """.split()
)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def parse_omp_pragma(text: str) -> OmpPragma | None:
    """Parse one pragma line.

    ``text`` is the pragma body with or without the leading ``#``
    (``"pragma omp parallel for reduction(+:sum)"``).  Returns ``None``
    when the pragma is not an OpenMP one (e.g. ``#pragma unroll``), raises
    :class:`PragmaError` when an ``omp`` pragma is malformed.
    """
    body = text.strip()
    if body.startswith("#"):
        body = body[1:].strip()
    if body.startswith("pragma"):
        body = body[len("pragma"):].strip()
    if not body.startswith("omp"):
        return None
    rest = body[len("omp"):].strip()

    directives: list[str] = []
    pos = 0
    while True:
        m = _IDENT_RE.match(rest, pos)
        if not m:
            break
        word = m.group(0)
        # A directive word followed by '(' is actually a clause (e.g. the
        # pathological ``omp parallel for private(i)``: 'private' is not in
        # _DIRECTIVE_WORDS so the loop stops there anyway).
        if word not in _DIRECTIVE_WORDS:
            break
        follow = rest[m.end():m.end() + 1]
        if follow == "(":
            break
        directives.append(word)
        pos = m.end()
        while pos < len(rest) and rest[pos] in " \t":
            pos += 1
    if not directives:
        raise PragmaError(f"no OpenMP directive in {text!r}")

    clauses = _parse_clauses(rest[pos:], text)
    return OmpPragma(directives=directives, clauses=clauses, raw=text)


def _parse_clauses(text: str, origin: str) -> list[OmpClause]:
    clauses: list[OmpClause] = []
    pos = 0
    n = len(text)
    while pos < n:
        while pos < n and text[pos] in " \t,":
            pos += 1
        if pos >= n:
            break
        m = _IDENT_RE.match(text, pos)
        if not m:
            raise PragmaError(f"malformed clause list in {origin!r}")
        name = m.group(0)
        pos = m.end()
        args: list[str] = []
        reduction_op: str | None = None
        if pos < n and text[pos] == "(":
            depth = 1
            start = pos + 1
            pos += 1
            while pos < n and depth:
                if text[pos] == "(":
                    depth += 1
                elif text[pos] == ")":
                    depth -= 1
                pos += 1
            if depth:
                raise PragmaError(f"unbalanced parens in {origin!r}")
            inner = text[start : pos - 1].strip()
            if name == "reduction":
                if ":" not in inner:
                    raise PragmaError(f"reduction clause missing ':' in {origin!r}")
                op, _, varlist = inner.partition(":")
                reduction_op = op.strip()
                if reduction_op not in REDUCTION_OPS:
                    raise PragmaError(
                        f"unknown reduction operator {reduction_op!r} in {origin!r}"
                    )
                args = [v.strip() for v in varlist.split(",") if v.strip()]
            else:
                args = [v.strip() for v in inner.split(",") if v.strip()]
        clauses.append(OmpClause(name=name, args=args, reduction_op=reduction_op))
    return clauses


def pragma_category(pragma: OmpPragma) -> str:
    """Map a pragma to its OMP_Serial category.

    Priority follows Table 1's partition: ``target`` and ``simd`` are
    directive-level properties and take precedence, then ``reduction`` and
    ``private`` clause presence, finally plain ``parallel``.
    """
    if pragma.has_directive("target"):
        return "target"
    if pragma.has_directive("simd"):
        return "simd"
    if pragma.has_clause("reduction"):
        return "reduction"
    if (
        pragma.has_clause("private")
        or pragma.has_clause("firstprivate")
        or pragma.has_clause("lastprivate")
    ):
        return "private"
    return "parallel"


def loop_label(pragmas: list[str]) -> tuple[bool, str | None]:
    """OMP_Serial labelling rule for a loop's attached pragma lines.

    Returns ``(parallel?, category)``.  A loop is *parallel* when any
    attached OpenMP pragma carries a worksharing-loop directive; its
    category is that of the first such pragma.  Loops without OpenMP
    pragmas are non-parallel (category ``None``).
    """
    for text in pragmas:
        try:
            parsed = parse_omp_pragma(text)
        except PragmaError:
            continue
        if parsed is None:
            continue
        if parsed.is_loop_directive:
            category = pragma_category(parsed)
            assert category in CATEGORIES
            return True, category
    return False, None
