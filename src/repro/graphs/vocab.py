"""Vocabularies mapping graph attributes to integer ids."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.graphs.hetgraph import HetGraph

UNK = "<unk>"
PAD = "<pad>"


@dataclass
class Vocab:
    """A frozen-able string → id mapping with an UNK fallback."""

    tokens: dict[str, int] = field(default_factory=dict)
    frozen: bool = False

    def __post_init__(self) -> None:
        if UNK not in self.tokens:
            # UNK must be id 0 so models can rely on it.
            self.tokens = {UNK: 0, **{
                t: i + 1 for t, i in sorted(self.tokens.items(), key=lambda kv: kv[1])
                if t != UNK
            }}

    def add(self, token: str) -> int:
        if token in self.tokens:
            return self.tokens[token]
        if self.frozen:
            return self.tokens[UNK]
        idx = len(self.tokens)
        self.tokens[token] = idx
        return idx

    def __getitem__(self, token: str) -> int:
        return self.tokens.get(token, self.tokens[UNK])

    def __contains__(self, token: str) -> bool:
        return token in self.tokens

    def __len__(self) -> int:
        return len(self.tokens)

    def freeze(self) -> "Vocab":
        self.frozen = True
        return self

    def to_dict(self) -> dict:
        return {"tokens": self.tokens, "frozen": self.frozen}

    def content_hash(self) -> str:
        """SHA-256 over the canonical token mapping.

        Stable across processes and (de)serialization round trips, so
        persisted artifacts can verify that a weight archive and a
        vocabulary were produced together.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "Vocab":
        v = cls(tokens=dict(data["tokens"]))
        v.frozen = bool(data.get("frozen", False))
        return v


@dataclass
class GraphVocab:
    """The pair of vocabularies a graph encoder needs.

    ``types`` maps heterogeneous node types (AST kinds) to ids — this is
    the type system A of the HGT.  ``texts`` maps node text attributes
    (normalised operands/operators) to ids.
    """

    types: Vocab = field(default_factory=Vocab)
    texts: Vocab = field(default_factory=Vocab)

    @property
    def num_types(self) -> int:
        return len(self.types)

    @property
    def num_texts(self) -> int:
        return len(self.texts)

    def freeze(self) -> "GraphVocab":
        self.types.freeze()
        self.texts.freeze()
        return self

    def to_dict(self) -> dict:
        return {"types": self.types.to_dict(), "texts": self.texts.to_dict()}

    def content_hash(self) -> str:
        """SHA-256 over both vocabularies' canonical content."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "GraphVocab":
        data = json.loads(Path(path).read_text())
        return cls(
            types=Vocab.from_dict(data["types"]),
            texts=Vocab.from_dict(data["texts"]),
        )


def build_graph_vocab(graphs: Iterable[HetGraph]) -> GraphVocab:
    """Collect type/text vocabularies over a graph corpus and freeze them."""
    vocab = GraphVocab()
    for graph in graphs:
        for t in graph.node_types:
            vocab.types.add(t)
        for t in graph.node_texts:
            if t:
                vocab.texts.add(t)
    return vocab.freeze()
