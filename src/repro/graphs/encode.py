"""Numeric encoding and batching of heterogeneous graphs.

:class:`EncodedGraph` holds integer arrays; :func:`collate` merges many
graphs into one :class:`GraphBatch` whose edge arrays are offset so a
single HGT forward pass covers the whole mini-batch (the standard
PyG-style block-diagonal batching, rebuilt on numpy).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.graphs.augast import build_aug_ast, build_vanilla_ast
from repro.graphs.hetgraph import EdgeType, HetGraph, RELATIONS
from repro.graphs.vocab import GraphVocab

#: graph builder per representation name (shared by trainers and caches)
REPRESENTATION_BUILDERS = {
    "aug": lambda loop: build_aug_ast(loop),
    "vanilla": lambda loop: build_vanilla_ast(loop),
    "aug-nocfg": lambda loop: build_aug_ast(loop, with_cfg=False),
    "aug-nolex": lambda loop: build_aug_ast(loop, with_lexical=False),
}


@dataclass
class EncodedGraph:
    """One graph as integer arrays.

    ``edges`` maps every relation in :data:`RELATIONS` to a ``(2, E_r)``
    array (possibly empty).
    """

    type_ids: np.ndarray          # (N,) int64
    text_ids: np.ndarray          # (N,) int64
    position_ids: np.ndarray     # (N,) int64
    is_leaf: np.ndarray           # (N,) bool
    edges: dict[EdgeType, np.ndarray] = field(default_factory=dict)
    label: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.type_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(sum(e.shape[1] for e in self.edges.values()))


def encode_graph(graph: HetGraph, vocab: GraphVocab, label: int = 0) -> EncodedGraph:
    """Map a :class:`HetGraph` onto integer arrays through ``vocab``."""
    type_ids = np.array([vocab.types[t] for t in graph.node_types], dtype=np.int64)
    text_ids = np.array([vocab.texts[t] for t in graph.node_texts], dtype=np.int64)
    position_ids = np.array(graph.node_positions, dtype=np.int64)
    is_leaf = np.array(graph.node_is_leaf, dtype=bool)
    edges: dict[EdgeType, np.ndarray] = {}
    for rel in RELATIONS:
        pairs = graph.edges_of_type(rel)
        if pairs:
            edges[rel] = np.array(pairs, dtype=np.int64).T
        else:
            edges[rel] = np.zeros((2, 0), dtype=np.int64)
    return EncodedGraph(
        type_ids=type_ids,
        text_ids=text_ids,
        position_ids=position_ids,
        is_leaf=is_leaf,
        edges=edges,
        label=label,
        meta=dict(graph.meta),
    )


class EncodeCache:
    """LRU memo of loop-source → :class:`EncodedGraph` for one vocab.

    Serving a corpus re-encodes the same loop once per model unless the
    encodings are shared; this cache keys on the SHA-1 of the loop source
    (plus the representation it was built with) so each distinct loop is
    parsed, graph-built and integer-encoded exactly once per vocabulary.

    Cached graphs carry ``label == 0``; callers needing labels should
    :func:`dataclasses.replace` the returned graph (the integer arrays
    are shared, the dataclass shell is cheap).
    """

    def __init__(self, vocab: GraphVocab, representation: str = "aug",
                 max_entries: int = 4096) -> None:
        if representation not in REPRESENTATION_BUILDERS:
            raise ValueError(
                f"unknown representation {representation!r}; "
                f"choose from {sorted(REPRESENTATION_BUILDERS)}"
            )
        self.vocab = vocab
        self.representation = representation
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[str, EncodedGraph] = OrderedDict()

    @staticmethod
    def key_of(loop_source: str) -> str:
        return hashlib.sha1(loop_source.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._store)

    def encode_loop(self, loop_source: str, loop=None,
                    label: int = 0) -> EncodedGraph:
        """Encode one loop, reusing a prior encoding of identical source.

        ``loop`` optionally passes a pre-parsed AST (e.g. a sample's
        cached one) to skip re-parsing on a cache miss.
        """
        key = self.key_of(loop_source)
        cached = self._store.get(key)
        if cached is not None:
            self._store.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
            if loop is None:
                from repro.cfront import parse_loop

                loop = parse_loop(loop_source)
            graph = REPRESENTATION_BUILDERS[self.representation](loop)
            cached = encode_graph(graph, self.vocab, label=0)
            self._store[key] = cached
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return cached if label == 0 else replace(cached, label=label)

    def stats(self) -> dict:
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}


@dataclass
class GraphBatch:
    """A block-diagonal merge of several :class:`EncodedGraph`.

    ``graph_ids`` assigns every node to its source graph, which the
    readout layer uses for per-graph mean pooling.  ``struct_cache``
    memoises purely structural derivations (type sort order, edge
    concatenation, destination sort) that every layer — and, when the
    batch itself is reused, every model — would otherwise recompute.
    """

    type_ids: np.ndarray
    text_ids: np.ndarray
    position_ids: np.ndarray
    is_leaf: np.ndarray
    edges: dict[EdgeType, np.ndarray]
    graph_ids: np.ndarray         # (N,) int64
    labels: np.ndarray            # (B,) int64
    num_graphs: int
    struct_cache: dict = field(default_factory=dict, repr=False,
                               compare=False)

    @property
    def num_nodes(self) -> int:
        return int(self.type_ids.shape[0])


class CollateCache:
    """LRU memo of graph-list → collated :class:`GraphBatch`.

    Training and evaluation revisit the same mini-batches — every
    epoch's validation pass slices the data identically, and serving
    runs every model over the same chunks.  Keyed by the identity of
    the graphs in order, a hit returns the previously collated batch,
    whose ``struct_cache`` (type sort, edge concatenation, destination
    sort) already carries the structural precomputation: only the
    float math reruns.  Entries pin their graph lists alive so ``id``
    keys can never be recycled while cached.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, tuple[list[EncodedGraph], GraphBatch]] \
            = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def collate(self, graphs: list[EncodedGraph]) -> GraphBatch:
        key = tuple(id(g) for g in graphs)
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        batch = collate(graphs)
        self._store[key] = (list(graphs), batch)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return batch

    def stats(self) -> dict:
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}

    def clear(self) -> None:
        """Release every cached batch (and the graphs they pin)."""
        self._store.clear()


def collate(graphs: list[EncodedGraph]) -> GraphBatch:
    """Merge graphs with node-index offsets into one batch."""
    if not graphs:
        raise ValueError("cannot collate an empty list of graphs")
    offsets = np.cumsum([0] + [g.num_nodes for g in graphs[:-1]])
    type_ids = np.concatenate([g.type_ids for g in graphs])
    text_ids = np.concatenate([g.text_ids for g in graphs])
    position_ids = np.concatenate([g.position_ids for g in graphs])
    is_leaf = np.concatenate([g.is_leaf for g in graphs])
    graph_ids = np.concatenate([
        np.full(g.num_nodes, i, dtype=np.int64) for i, g in enumerate(graphs)
    ])
    edges: dict[EdgeType, np.ndarray] = {}
    for rel in RELATIONS:
        parts = [
            g.edges[rel] + off
            for g, off in zip(graphs, offsets)
            if g.edges[rel].size
        ]
        edges[rel] = (
            np.concatenate(parts, axis=1) if parts else np.zeros((2, 0), dtype=np.int64)
        )
    labels = np.array([g.label for g in graphs], dtype=np.int64)
    return GraphBatch(
        type_ids=type_ids,
        text_ids=text_ids,
        position_ids=position_ids,
        is_leaf=is_leaf,
        edges=edges,
        graph_ids=graph_ids,
        labels=labels,
        num_graphs=len(graphs),
    )
