"""Numeric encoding and batching of heterogeneous graphs.

:class:`EncodedGraph` holds integer arrays; :func:`collate` merges many
graphs into one :class:`GraphBatch` whose edge arrays are offset so a
single HGT forward pass covers the whole mini-batch (the standard
PyG-style block-diagonal batching, rebuilt on numpy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.hetgraph import EdgeType, HetGraph, RELATIONS
from repro.graphs.vocab import GraphVocab


@dataclass
class EncodedGraph:
    """One graph as integer arrays.

    ``edges`` maps every relation in :data:`RELATIONS` to a ``(2, E_r)``
    array (possibly empty).
    """

    type_ids: np.ndarray          # (N,) int64
    text_ids: np.ndarray          # (N,) int64
    position_ids: np.ndarray     # (N,) int64
    is_leaf: np.ndarray           # (N,) bool
    edges: dict[EdgeType, np.ndarray] = field(default_factory=dict)
    label: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.type_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(sum(e.shape[1] for e in self.edges.values()))


def encode_graph(graph: HetGraph, vocab: GraphVocab, label: int = 0) -> EncodedGraph:
    """Map a :class:`HetGraph` onto integer arrays through ``vocab``."""
    type_ids = np.array([vocab.types[t] for t in graph.node_types], dtype=np.int64)
    text_ids = np.array([vocab.texts[t] for t in graph.node_texts], dtype=np.int64)
    position_ids = np.array(graph.node_positions, dtype=np.int64)
    is_leaf = np.array(graph.node_is_leaf, dtype=bool)
    edges: dict[EdgeType, np.ndarray] = {}
    for rel in RELATIONS:
        pairs = graph.edges_of_type(rel)
        if pairs:
            edges[rel] = np.array(pairs, dtype=np.int64).T
        else:
            edges[rel] = np.zeros((2, 0), dtype=np.int64)
    return EncodedGraph(
        type_ids=type_ids,
        text_ids=text_ids,
        position_ids=position_ids,
        is_leaf=is_leaf,
        edges=edges,
        label=label,
        meta=dict(graph.meta),
    )


@dataclass
class GraphBatch:
    """A block-diagonal merge of several :class:`EncodedGraph`.

    ``graph_ids`` assigns every node to its source graph, which the
    readout layer uses for per-graph mean pooling.
    """

    type_ids: np.ndarray
    text_ids: np.ndarray
    position_ids: np.ndarray
    is_leaf: np.ndarray
    edges: dict[EdgeType, np.ndarray]
    graph_ids: np.ndarray         # (N,) int64
    labels: np.ndarray            # (B,) int64
    num_graphs: int

    @property
    def num_nodes(self) -> int:
        return int(self.type_ids.shape[0])


def collate(graphs: list[EncodedGraph]) -> GraphBatch:
    """Merge graphs with node-index offsets into one batch."""
    if not graphs:
        raise ValueError("cannot collate an empty list of graphs")
    offsets = np.cumsum([0] + [g.num_nodes for g in graphs[:-1]])
    type_ids = np.concatenate([g.type_ids for g in graphs])
    text_ids = np.concatenate([g.text_ids for g in graphs])
    position_ids = np.concatenate([g.position_ids for g in graphs])
    is_leaf = np.concatenate([g.is_leaf for g in graphs])
    graph_ids = np.concatenate([
        np.full(g.num_nodes, i, dtype=np.int64) for i, g in enumerate(graphs)
    ])
    edges: dict[EdgeType, np.ndarray] = {}
    for rel in RELATIONS:
        parts = [
            g.edges[rel] + off
            for g, off in zip(graphs, offsets)
            if g.edges[rel].size
        ]
        edges[rel] = (
            np.concatenate(parts, axis=1) if parts else np.zeros((2, 0), dtype=np.int64)
        )
    labels = np.array([g.label for g in graphs], dtype=np.int64)
    return GraphBatch(
        type_ids=type_ids,
        text_ids=text_ids,
        position_ids=position_ids,
        is_leaf=is_leaf,
        edges=edges,
        graph_ids=graph_ids,
        labels=labels,
        num_graphs=len(graphs),
    )
