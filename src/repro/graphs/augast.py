"""Building the (augmented) heterogeneous AST of a loop.

Section 5.1 of the paper in three steps:

1. *Transforming the AST* — every AST node becomes a typed graph node;
   identifiers are alpha-renamed in first-occurrence order (``v0, v1,
   ...`` for variables, ``f0, f1, ...`` for called functions — the paper's
   Figure 3 shows exactly this ``v1/v2/f1`` normalisation), literals are
   bucketed, and each node carries its ordered-child position.
2. *Merging the CFG* — control-flow edges between the AST nodes that are
   shared by the AST and the CFG (statements, predicates, calls) are
   added as a distinct edge type.
3. *Texture token relations* — consecutive AST leaves in token order are
   linked with lexical edges so long-distance token proximity survives
   the tree structure (Zügner et al. 2021 motivates this).

``build_vanilla_ast`` performs step 1 only and is the paper's "AST" row
in Table 2.
"""

from __future__ import annotations

from repro.cfg import build_cfg
from repro.cfront.nodes import (
    BinaryOperator,
    CallExpr,
    CastExpr,
    CharLiteral,
    DeclRefExpr,
    FloatingLiteral,
    IntegerLiteral,
    MemberExpr,
    Node,
    ParmDecl,
    Stmt,
    StringLiteral,
    TypeSpec,
    UnaryOperator,
    VarDecl,
)
from repro.graphs.hetgraph import EdgeType, HetGraph

#: Literal buckets: small constants are semantically meaningful for
#: parallelisation (strides, bounds); everything else collapses.
_SMALL_INTS = frozenset(range(0, 9))


def _int_bucket(value: int) -> str:
    if value in _SMALL_INTS:
        return f"int:{value}"
    if value < 0:
        return "int:neg"
    if value < 256:
        return "int:medium"
    return "int:large"


def _float_bucket(value: float) -> str:
    if value == 0.0:
        return "float:zero"
    if value == 1.0:
        return "float:one"
    return "float:other"


class _Renamer:
    """First-occurrence alpha renaming of identifiers (Figure 3 style)."""

    def __init__(self) -> None:
        self.vars: dict[str, str] = {}
        self.funcs: dict[str, str] = {}

    def var(self, name: str) -> str:
        if name not in self.vars:
            self.vars[name] = f"v{len(self.vars)}"
        return self.vars[name]

    def func(self, name: str) -> str:
        if name not in self.funcs:
            self.funcs[name] = f"f{len(self.funcs)}"
        return self.funcs[name]


def _node_text(node: Node, renamer: _Renamer, called_names: set[str]) -> str:
    """The textual attribute μ_A(node) of section 5.1.1."""
    if isinstance(node, DeclRefExpr):
        if node.name in called_names:
            return renamer.func(node.name)
        return renamer.var(node.name)
    if isinstance(node, (VarDecl, ParmDecl)):
        return renamer.var(node.name)
    if isinstance(node, IntegerLiteral):
        return _int_bucket(node.value)
    if isinstance(node, FloatingLiteral):
        return _float_bucket(node.value)
    if isinstance(node, CharLiteral):
        return "char"
    if isinstance(node, StringLiteral):
        return "string"
    if isinstance(node, (BinaryOperator, UnaryOperator)):
        return node.op
    if isinstance(node, MemberExpr):
        return ("->" if node.is_arrow else ".") + node.member
    if isinstance(node, CastExpr):
        return node.to_type.base
    if isinstance(node, TypeSpec):
        return node.base + "*" * node.pointers
    return ""


def _is_leaf(node: Node) -> bool:
    return next(node.children(), None) is None


def build_vanilla_ast(loop: Stmt, meta: dict | None = None) -> HetGraph:
    """The plain heterogeneous AST (tree edges only): Table 2's "AST" row."""
    return _build(loop, with_cfg=False, with_lexical=False, meta=meta)


def build_aug_ast(
    loop: Stmt,
    with_cfg: bool = True,
    with_lexical: bool = True,
    meta: dict | None = None,
) -> HetGraph:
    """The heterogeneous augmented AST of a loop (paper section 5.1).

    ``with_cfg`` / ``with_lexical`` exist for the edge-type ablation
    bench; both default to the full aug-AST.
    """
    return _build(loop, with_cfg=with_cfg, with_lexical=with_lexical, meta=meta)


def _build(loop: Stmt, with_cfg: bool, with_lexical: bool,
           meta: dict | None) -> HetGraph:
    graph = HetGraph(meta=dict(meta or {}))
    renamer = _Renamer()

    # Functions are renamed into a separate namespace; collect call targets
    # first so a ``DeclRefExpr`` used as a callee maps to ``f<k>``.
    called_names = {
        c.name for c in loop.find_all(CallExpr) if c.name
    }

    node_ids: dict[int, int] = {}  # id(ast node) -> graph node id

    def add(node: Node, position: int) -> int:
        gid = graph.add_node(
            node_type=node.kind,
            text=_node_text(node, renamer, called_names),
            position=position,
            is_leaf=_is_leaf(node),
        )
        node_ids[id(node)] = gid
        for child_pos, child in enumerate(node.children()):
            cid = add(child, child_pos)
            graph.add_edge(gid, cid, EdgeType.AST, reverse=EdgeType.AST_REV)
        return gid

    add(loop, 0)

    if with_cfg:
        cfg = build_cfg(loop)
        for edge in cfg.edges:
            src_ast = cfg.nodes[edge.src].ast
            dst_ast = cfg.nodes[edge.dst].ast
            if src_ast is None or dst_ast is None:
                continue  # synthetic entry/exit
            src_gid = node_ids.get(id(src_ast))
            dst_gid = node_ids.get(id(dst_ast))
            if src_gid is None or dst_gid is None or src_gid == dst_gid:
                continue
            graph.add_edge(src_gid, dst_gid, EdgeType.CFG, reverse=EdgeType.CFG_REV)

    if with_lexical:
        leaves = sorted(
            (
                (node.tok_i, node_ids[id(node)])
                for node in loop.walk()
                if getattr(node, "tok_i", -1) >= 0 and id(node) in node_ids
            ),
        )
        for (_, a), (_, b) in zip(leaves, leaves[1:]):
            graph.add_edge(a, b, EdgeType.LEX, reverse=EdgeType.LEX_REV)

    return graph
