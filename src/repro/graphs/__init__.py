"""Heterogeneous augmented-AST code representation (paper section 5.1).

Pipeline: C loop AST → :class:`HetGraph` (typed nodes + typed edges:
AST / CFG / lexical) → :class:`EncodedGraph` (integer feature arrays the
HGT consumes).
"""

from repro.graphs.hetgraph import EdgeType, HetGraph, NODE_POSITIONS, RELATIONS
from repro.graphs.augast import build_aug_ast, build_vanilla_ast
from repro.graphs.vocab import Vocab, GraphVocab, build_graph_vocab
from repro.graphs.encode import (
    CollateCache,
    EncodeCache,
    EncodedGraph,
    GraphBatch,
    REPRESENTATION_BUILDERS,
    collate,
    encode_graph,
)

__all__ = [
    "HetGraph",
    "EdgeType",
    "RELATIONS",
    "NODE_POSITIONS",
    "build_aug_ast",
    "build_vanilla_ast",
    "Vocab",
    "GraphVocab",
    "build_graph_vocab",
    "CollateCache",
    "EncodeCache",
    "EncodedGraph",
    "GraphBatch",
    "REPRESENTATION_BUILDERS",
    "encode_graph",
    "collate",
]
