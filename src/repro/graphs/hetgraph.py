"""Heterogeneous graph container.

A :class:`HetGraph` is the G = (V, E, A, R) object of paper section 5.2:
``A`` is the set of node types (Clang-style AST kinds), ``R`` the set of
edge types.  Three forward edge types exist — AST tree edges, merged CFG
edges, and lexical token-neighbour edges — and each has a distinct
reverse type so message passing can flow both ways while the model still
knows the direction (HGT attention matrices are per edge type).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx


class EdgeType(str, enum.Enum):
    """The heterogeneous edge types R of the aug-AST."""

    AST = "ast"            # parent -> child tree edge
    AST_REV = "ast_rev"    # child -> parent
    CFG = "cfg"            # control may flow src -> dst
    CFG_REV = "cfg_rev"
    LEX = "lex"            # leaf -> next leaf in token order
    LEX_REV = "lex_rev"


#: Canonical relation order used by models for parameter indexing.
RELATIONS: tuple[EdgeType, ...] = (
    EdgeType.AST,
    EdgeType.AST_REV,
    EdgeType.CFG,
    EdgeType.CFG_REV,
    EdgeType.LEX,
    EdgeType.LEX_REV,
)

#: Positional attribute values: the left/right/ordered-child attribute of
#: section 5.1.1.  Child indices are clipped into this range.
NODE_POSITIONS = 8


@dataclass
class HetGraph:
    """A heterogeneous code graph for one loop.

    Attributes
    ----------
    node_types:
        Per node, the heterogeneous type (AST kind such as ``ForStmt``).
    node_texts:
        Per node, the textual attribute: normalised operand for leaves
        (``v0``/``f1``/literal bucket), operator spelling for operator
        nodes, ``""`` otherwise.
    node_positions:
        Per node, the clipped child index under its AST parent (the
        tree-order attribute); 0 for the root.
    node_is_leaf:
        Per node, whether the node is an AST leaf (carries a token).
    edges:
        ``(src, dst, EdgeType)`` triples.
    meta:
        Free-form provenance (category, source, etc.), carried through to
        training for bookkeeping only.
    """

    node_types: list[str] = field(default_factory=list)
    node_texts: list[str] = field(default_factory=list)
    node_positions: list[int] = field(default_factory=list)
    node_is_leaf: list[bool] = field(default_factory=list)
    edges: list[tuple[int, int, EdgeType]] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_node(
        self, node_type: str, text: str = "", position: int = 0,
        is_leaf: bool = False,
    ) -> int:
        nid = len(self.node_types)
        self.node_types.append(node_type)
        self.node_texts.append(text)
        self.node_positions.append(min(position, NODE_POSITIONS - 1))
        self.node_is_leaf.append(is_leaf)
        return nid

    def add_edge(self, src: int, dst: int, etype: EdgeType,
                 reverse: EdgeType | None = None) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise IndexError(f"edge ({src},{dst}) out of range")
        self.edges.append((src, dst, etype))
        if reverse is not None:
            self.edges.append((dst, src, reverse))

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_types)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edges_of_type(self, etype: EdgeType) -> list[tuple[int, int]]:
        return [(s, d) for s, d, t in self.edges if t is etype]

    def type_set(self) -> set[str]:
        return set(self.node_types)

    def validate(self) -> None:
        """Raise ``ValueError`` on structural inconsistencies."""
        n = self.num_nodes
        if not (
            len(self.node_texts) == len(self.node_positions)
            == len(self.node_is_leaf) == n
        ):
            raise ValueError("node attribute arrays disagree on length")
        for src, dst, etype in self.edges:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(f"edge ({src},{dst},{etype}) out of range")
        # Every non-root node must be reachable through AST edges: the AST
        # skeleton is a tree spanning all nodes.
        ast_children = {d for s, d, t in self.edges if t is EdgeType.AST}
        if n and len(ast_children) != n - 1:
            raise ValueError(
                f"AST edges must form a spanning tree: {len(ast_children)} "
                f"children for {n} nodes"
            )

    def to_networkx(self) -> nx.MultiDiGraph:
        g = nx.MultiDiGraph()
        for i in range(self.num_nodes):
            g.add_node(
                i,
                node_type=self.node_types[i],
                text=self.node_texts[i],
                position=self.node_positions[i],
                is_leaf=self.node_is_leaf[i],
            )
        for src, dst, etype in self.edges:
            g.add_edge(src, dst, etype=etype.value)
        return g

    def to_dot(self) -> str:
        """GraphViz rendering (used by examples/visualize_augast.py)."""
        colors = {
            EdgeType.AST: "black",
            EdgeType.CFG: "red",
            EdgeType.LEX: "orange",
        }
        lines = ["digraph augast {", "  rankdir=TB;"]
        for i in range(self.num_nodes):
            label = self.node_types[i]
            if self.node_texts[i]:
                label += f"\\n{self.node_texts[i]}"
            shape = "box" if self.node_is_leaf[i] else "ellipse"
            lines.append(f'  n{i} [label="{label}", shape={shape}];')
        for src, dst, etype in self.edges:
            color = colors.get(etype)
            if color is None:
                continue  # draw forward edges only
            style = "solid" if etype is EdgeType.AST else "dashed"
            lines.append(
                f"  n{src} -> n{dst} [color={color}, style={style}];"
            )
        lines.append("}")
        return "\n".join(lines)
