"""Experiment harness: one module per paper table/figure.

Every experiment is a function ``run(config) -> ExperimentResult`` whose
rows mirror the paper's table; ``paper_reference`` embeds the published
numbers so benches and EXPERIMENTS.md can print paper-vs-measured side
by side.  :class:`ExperimentContext` caches the generated dataset, tool
verdicts and trained models per configuration so the full suite reuses
work.
"""

from repro.eval.config import ExperimentConfig
from repro.eval.context import ExperimentContext, get_context
from repro.eval.result import ExperimentResult, render_table
from repro.eval import (
    table1,
    table2,
    table3,
    table4,
    table5,
    figure2,
    coverage,
    overhead,
    casestudy,
    ablation,
    generation,
    generalization,
    breakdown,
)
from repro.eval.runner import run_all

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "get_context",
    "ExperimentResult",
    "render_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure2",
    "coverage",
    "overhead",
    "casestudy",
    "ablation",
    "generation",
    "generalization",
    "breakdown",
    "run_all",
]
