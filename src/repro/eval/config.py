"""Experiment configuration profiles."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` multiplies the Table-1 dataset counts.  The ``fast``
    profile keeps the whole benchmark suite in CI-friendly time on the
    numpy substrate; ``standard`` is the default for the repro numbers
    in EXPERIMENTS.md; ``paper`` matches the full dataset size (slow —
    hours on CPU).
    """

    scale: float = 0.05
    seed: int = 7
    test_fraction: float = 0.2
    # model
    dim: int = 48
    heads: int = 4
    layers: int = 2
    dropout: float = 0.1
    # training
    epochs: int = 6
    batch_size: int = 32
    lr: float = 2e-3
    max_token_len: int = 128

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        return cls(scale=0.02, epochs=4, dim=32)

    @classmethod
    def standard(cls) -> "ExperimentConfig":
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        return cls(scale=1.0, epochs=12, dim=64)

    def with_(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)
