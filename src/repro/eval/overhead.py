"""§6.5: aug-AST construction overhead.

The paper reports that building the representation (Clang parse +
tree-sitter traversal) costs on the order of milliseconds per loop for
the ~7-LOC loops of OMP_Serial.  Here the pipeline is parse → CFG →
aug-AST → encode; we time each stage per loop.
"""

from __future__ import annotations

import time

from repro.cfront import parse_loop
from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult
from repro.graphs import build_aug_ast, build_graph_vocab, encode_graph

PAPER_OVERHEAD = [
    {"stage": "total per loop", "avg_ms": "order of milliseconds"},
]


def run(config: ExperimentConfig | None = None,
        max_loops: int = 200) -> ExperimentResult:
    ctx = get_context(config)
    samples = ctx.dataset.samples[:max_loops]

    t0 = time.perf_counter()
    loops = [parse_loop(s.source) for s in samples]
    t_parse = time.perf_counter() - t0

    t0 = time.perf_counter()
    graphs = [build_aug_ast(loop) for loop in loops]
    t_build = time.perf_counter() - t0

    vocab = build_graph_vocab(graphs)
    t0 = time.perf_counter()
    for g in graphs:
        encode_graph(g, vocab)
    t_encode = time.perf_counter() - t0

    n = len(samples)
    rows = [
        {"stage": "parse", "avg_ms": round(1000 * t_parse / n, 3)},
        {"stage": "aug-AST build (CFG + lexical)", "avg_ms": round(1000 * t_build / n, 3)},
        {"stage": "encode", "avg_ms": round(1000 * t_encode / n, 3)},
        {"stage": "total per loop",
         "avg_ms": round(1000 * (t_parse + t_build + t_encode) / n, 3)},
    ]
    return ExperimentResult(
        name="Overhead: aug-AST construction per loop",
        rows=rows,
        paper_reference=PAPER_OVERHEAD,
        notes=f"measured over {n} loops; expectation: a few ms per loop.",
    )
