"""Table 3: number of detected parallel loops per approach.

Counts, over the dataset's parallel-labelled loops, how many each
approach reports parallel: Graph2Par (aug-AST), HGT-AST (vanilla), and
the three algorithm-based tools.  ML predictions are made on the test
portion and extrapolated is NOT done — we report the raw counts over the
whole population for tools and over all loops for the models, like the
paper (which counts over the full OMP_Serial).
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult

PAPER_TABLE3 = [
    {"approach": "Graph2Par", "detected_parallel_loops": 17563},
    {"approach": "HGT-AST", "detected_parallel_loops": 16236},
    {"approach": "DiscoPoP", "detected_parallel_loops": 953},
    {"approach": "PLUTO", "detected_parallel_loops": 1759},
    {"approach": "autoPar", "detected_parallel_loops": 6391},
]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    dataset = ctx.dataset
    parallel_idx = [i for i, s in enumerate(dataset) if s.parallel]
    parallel_samples = [dataset[i] for i in parallel_idx]

    rows = []
    aug = ctx.graph_model(representation="aug", task="parallel")
    preds = aug.predict_samples(parallel_samples)
    rows.append({
        "approach": "Graph2Par",
        "detected_parallel_loops": int(preds.sum()),
    })
    vanilla = ctx.graph_model(representation="vanilla", task="parallel")
    preds = vanilla.predict_samples(parallel_samples)
    rows.append({
        "approach": "HGT-AST",
        "detected_parallel_loops": int(preds.sum()),
    })
    for tool_name, label in (("discopop", "DiscoPoP"), ("pluto", "PLUTO"),
                             ("autopar", "autoPar")):
        verdicts = ctx.tool_verdicts(tool_name)
        detected = sum(1 for i in parallel_idx if verdicts[i].parallel)
        rows.append({"approach": label, "detected_parallel_loops": detected})

    total = len(parallel_samples)
    return ExperimentResult(
        name="Table 3: detected parallel loops",
        rows=rows,
        paper_reference=PAPER_TABLE3,
        notes=(
            f"{total} parallel-labelled loops in the generated corpus "
            f"(paper: 18 998). Expected ordering: Graph2Par >= HGT-AST >> "
            f"autoPar > PLUTO > DiscoPoP."
        ),
    )
