"""§6.6 case study: the paper's listings and tools-miss-all loops.

Two parts:

1. the eight motivating listings — run all three tools on each, record
   who misses what, and compare against what the paper reports;
2. over the test split, count parallel loops missed by *all three* tools
   but detected by Graph2Par (the paper finds 48 such loops).
"""

from __future__ import annotations

from repro.cfront import parse_loop
from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult
from repro.tools import make_tool

#: The paper's listings (1–8).  ``paper_missed_by`` is who the paper says
#: fails on it; all eight are genuinely parallel.
LISTINGS = {
    "listing1": (
        "for (i = 0; i < 30000000; i++)\n"
        "    error = error + fabs(a[i] - a[i+1]);",
        {"pluto", "autopar", "discopop"},
    ),
    "listing2": (
        "for (int i = 0; i < num_pixels; i++) {\n"
        "    fitness += (abs(objetivo[i].r - individuo->imagen[i].r) +\n"
        "                abs(objetivo[i].g - individuo->imagen[i].g)) +\n"
        "                abs(objetivo[i].b - individuo->imagen[i].b);\n"
        "}",
        {"pluto"},
    ),
    "listing3": (
        "for (int i = 0; i < size; i++) {\n"
        "    vector[i] = square(vector[i]);\n"
        "}",
        {"autopar"},
    ),
    "listing4": (
        "for (int i = 0; i < N; i += step) {\n"
        "    v += 2;\n"
        "    v = v + step;\n"
        "}",
        {"discopop"},
    ),
    "listing5": (
        "for (j = 0; j < 4; j++)\n"
        "    for (i = 0; i < 5; i++)\n"
        "        for (k = 0; k < 6; k += 2)\n"
        "            l++;",
        {"discopop", "pluto"},
    ),
    "listing6": (
        "for (i = 0; i < 1000; i++) {\n"
        "    a[i] = i * 2;\n"
        "    sum += i;\n"
        "}",
        {"pluto", "autopar", "discopop"},
    ),
    "listing7": (
        "for (j = 0; j < 1000; j++) {\n"
        "    sum += a[i][j] * v[j];\n"
        "}",
        {"pluto", "autopar", "discopop"},
    ),
    "listing8": (
        "for (i = 0; i < 12; i++)\n"
        "    for (j = 0; j < 12; j++)\n"
        "        for (k = 0; k < 12; k++) {\n"
        "            tmp1 = 6.0 / m;\n"
        "            a[i][j][k] = tmp1 + 4;\n"
        "        }",
        {"pluto", "autopar", "discopop"},
    ),
}

TOOLS = ("pluto", "autopar", "discopop")


def run_listings() -> list[dict]:
    """Tool verdicts for the eight paper listings."""
    rows = []
    tools = {name: make_tool(name) for name in TOOLS}
    for name, (source, paper_missed) in LISTINGS.items():
        loop = parse_loop(source)
        missed = {
            t for t, tool in tools.items()
            if not tool.analyze_loop(loop).parallel
        }
        rows.append({
            "listing": name,
            "missed_by": ",".join(sorted(missed)) or "-",
            "paper_missed_by": ",".join(sorted(paper_missed)),
            "matches_paper": paper_missed <= missed,
        })
    return rows


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    rows = run_listings()

    # Part 2: loops missed by every tool but found by Graph2Par.
    _, test = ctx.split
    aug = ctx.graph_model(representation="aug", task="parallel")
    parallel_test = [s for s in test if s.parallel]
    if parallel_test:
        preds = aug.predict_samples(parallel_test)
        verdict_maps = {t: ctx.tool_verdict_map(t) for t in TOOLS}
        missed_by_all = [
            s for s in parallel_test
            if all(not verdict_maps[t][id(s)].parallel for t in TOOLS)
        ]
        found = sum(
            int(p) for s, p in zip(parallel_test, preds)
            if s in missed_by_all
        )
        rows.append({
            "listing": "test-set loops missed by all 3 tools",
            "missed_by": len(missed_by_all),
            "paper_missed_by": "48 found by Graph2Par",
            "matches_paper": f"Graph2Par recovers {found}",
        })
    return ExperimentResult(
        name="Case study: paper listings + tools-miss-all loops",
        rows=rows,
        paper_reference=[],
        notes=(
            "Listings 6/7 deviate: the paper's crawled context (pointer "
            "arrays, post-loop uses) defeats real autoPar/DiscoPoP there, "
            "while our isolated versions are within their simulated power. "
            "All other listings reproduce the reported misses."
        ),
    )
