"""Shared, cached experiment state.

Generating OMP_Serial, running the three tools over every loop, and
training models are the expensive steps; each is cached per
:class:`ExperimentConfig` so the whole table/figure suite reuses work
within a process (pytest-benchmark runs every bench in one process).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset import DatasetConfig, OMPSerial, generate_omp_serial
from repro.dataset.sample import LoopSample
from repro.eval.config import ExperimentConfig
from repro.models import (
    GCNBaseline,
    GCNConfig,
    Graph2Par,
    Graph2ParConfig,
    PragFormer,
    PragFormerConfig,
)
from repro.tools import ToolResult, make_tool
from repro.train import (
    GraphTrainer,
    TokenTrainer,
    TrainConfig,
    prepare_graph_data,
    prepare_token_data,
)

#: label functions per task name (clause tasks are Table 5)
LABEL_FNS = {
    "parallel": lambda s: int(s.parallel),
    "private": lambda s: int(s.category == "private"),
    "reduction": lambda s: int(s.category == "reduction"),
    "simd": lambda s: int(s.category == "simd"),
    "target": lambda s: int(s.category == "target"),
}


@dataclass
class TrainedGraphModel:
    trainer: GraphTrainer
    vocab: object
    representation: str
    task: str

    def predict_samples(self, samples: list[LoopSample],
                        cache=None) -> np.ndarray:
        """Batched predictions; ``cache`` optionally reuses encodings."""
        data, _ = prepare_graph_data(
            samples, representation=self.representation, vocab=self.vocab,
            label_fn=LABEL_FNS[self.task], cache=cache,
        )
        return self.trainer.predict(data)

    def predict_encoded(self, graphs: list,
                        batch_size: int | None = None,
                        collate_cache: dict | None = None) -> np.ndarray:
        """Predictions over pre-encoded graphs (the serving hot path).

        Skips parse/graph-build/encode entirely: one block-diagonal
        collate + forward per ``batch_size`` chunk.  ``collate_cache``
        (keyed by the chunk's graph identities) lets several models
        over the same workload share the collated batches.
        """
        from repro.graphs import collate
        from repro.nn import functional as F
        from repro.nn.tensor import no_grad

        if collate_cache is None:
            return self.trainer.predict(graphs, batch_size=batch_size)
        bs = batch_size or self.trainer.config.batch_size
        model = self.trainer.model
        model.eval()
        preds = []
        with no_grad():
            for start in range(0, len(graphs), bs):
                chunk = graphs[start: start + bs]
                key = tuple(id(g) for g in chunk)
                # The entry pins the chunk's graphs alive alongside the
                # batch: id() keys are only valid while the objects are,
                # and encode-cache eviction could otherwise free them
                # mid-workload and recycle the addresses.
                entry = collate_cache.get(key)
                if entry is None:
                    entry = collate_cache[key] = (chunk, collate(chunk))
                preds.append(F.predict_classes(model(entry[1])))
        return np.concatenate(preds) if preds else np.zeros(0, dtype=int)

    def encode_cache(self, max_entries: int = 4096):
        """A fresh :class:`~repro.graphs.encode.EncodeCache` for this
        model's vocab/representation."""
        from repro.graphs.encode import EncodeCache

        return EncodeCache(self.vocab, representation=self.representation,
                           max_entries=max_entries)

    def encoder_key(self) -> tuple:
        """Hashable identity of (representation, vocab content).

        Models trained separately on the same data build equal vocabs;
        the serve pipeline uses this key to share one encode pass across
        all models that agree on it.
        """
        return (
            self.representation,
            tuple(sorted(self.vocab.types.tokens.items())),
            tuple(sorted(self.vocab.texts.tokens.items())),
        )

    def fingerprint(self) -> str:
        """SHA-256 identity of (architecture, task, vocab, weights).

        Two models with the same fingerprint produce the same
        predictions, so the persistent suggestion store keys cached
        results on it: retraining or swapping a bundle changes the
        fingerprint and invalidates stale suggestions.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(f"{type(self.trainer.model).__qualname__}:"
                 f"{self.representation}:{self.task}:".encode("utf-8"))
        h.update(self.vocab.content_hash().encode("utf-8"))
        for name, arr in sorted(self.trainer.model.state_dict().items()):
            h.update(name.encode("utf-8"))
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def evaluate_samples(self, samples: list[LoopSample]) -> dict:
        data, _ = prepare_graph_data(
            samples, representation=self.representation, vocab=self.vocab,
            label_fn=LABEL_FNS[self.task],
        )
        return self.trainer.evaluate(data)


@dataclass
class TrainedTokenModel:
    trainer: TokenTrainer
    vocab: object
    task: str
    max_len: int

    def predict_samples(self, samples: list[LoopSample]) -> np.ndarray:
        ids, mask, _, _ = prepare_token_data(
            samples, vocab=self.vocab, max_len=self.max_len,
            label_fn=LABEL_FNS[self.task],
        )
        return self.trainer.predict(ids, mask)

    def evaluate_samples(self, samples: list[LoopSample]) -> dict:
        ids, mask, labels, _ = prepare_token_data(
            samples, vocab=self.vocab, max_len=self.max_len,
            label_fn=LABEL_FNS[self.task],
        )
        return self.trainer.evaluate(ids, mask, labels)


class ExperimentContext:
    """All cached state for one configuration."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._dataset: OMPSerial | None = None
        self._split: tuple[list, list] | None = None
        self._tool_verdicts: dict[str, list[ToolResult]] = {}
        self._graph_models: dict[tuple[str, str], TrainedGraphModel] = {}
        self._token_models: dict[str, TrainedTokenModel] = {}

    # -- dataset ------------------------------------------------------------

    @property
    def dataset(self) -> OMPSerial:
        if self._dataset is None:
            self._dataset = generate_omp_serial(DatasetConfig(
                scale=self.config.scale,
                seed=self.config.seed,
                test_fraction=self.config.test_fraction,
            ))
        return self._dataset

    @property
    def split(self) -> tuple[list[LoopSample], list[LoopSample]]:
        if self._split is None:
            self._split = self.dataset.train_test_split(
                test_fraction=self.config.test_fraction,
                seed=self.config.seed,
            )
        return self._split

    # -- tools ---------------------------------------------------------------

    def tool_verdicts(self, tool_name: str) -> list[ToolResult]:
        """Tool verdict per dataset sample (aligned with dataset order).

        Tools receive the declaration context the real toolchain would
        see: pointer-parameter arrays (aliasing hazards for the static
        tools) and the file metadata (execution gate for the dynamic
        tool).
        """
        if tool_name not in self._tool_verdicts:
            tool = make_tool(tool_name)
            self._tool_verdicts[tool_name] = [
                tool.analyze_loop(
                    s.ast(),
                    pointer_arrays=frozenset(s.pointer_arrays),
                    file_meta=s.file_meta,
                )
                for s in self.dataset
            ]
        return self._tool_verdicts[tool_name]

    def tool_verdict_map(self, tool_name: str) -> dict[int, ToolResult]:
        """id(sample) → verdict, for subset lookups."""
        verdicts = self.tool_verdicts(tool_name)
        return {id(s): v for s, v in zip(self.dataset, verdicts)}

    # -- models ----------------------------------------------------------------

    def _train_config(self) -> TrainConfig:
        cfg = self.config
        return TrainConfig(
            epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr,
            seed=cfg.seed,
        )

    def graph_model(self, representation: str = "aug",
                    task: str = "parallel") -> TrainedGraphModel:
        key = (representation, task)
        if key not in self._graph_models:
            train, _ = self.split
            label_fn = LABEL_FNS[task]
            data, vocab = prepare_graph_data(
                train, representation=representation, label_fn=label_fn,
            )
            cfg = self.config
            model = Graph2Par(vocab, Graph2ParConfig(
                dim=cfg.dim, heads=cfg.heads, layers=cfg.layers,
                dropout=cfg.dropout, seed=cfg.seed,
            ))
            trainer = GraphTrainer(model, self._train_config())
            trainer.fit(data)
            self._graph_models[key] = TrainedGraphModel(
                trainer=trainer, vocab=vocab, representation=representation,
                task=task,
            )
        return self._graph_models[key]

    def gcn_model(self, task: str = "parallel") -> TrainedGraphModel:
        key = ("gcn", task)
        if key not in self._graph_models:
            train, _ = self.split
            data, vocab = prepare_graph_data(
                train, representation="aug", label_fn=LABEL_FNS[task],
            )
            cfg = self.config
            model = GCNBaseline(vocab, GCNConfig(
                dim=cfg.dim, layers=cfg.layers, dropout=cfg.dropout,
                seed=cfg.seed,
            ))
            trainer = GraphTrainer(model, self._train_config())
            trainer.fit(data)
            self._graph_models[key] = TrainedGraphModel(
                trainer=trainer, vocab=vocab, representation="aug", task=task,
            )
        return self._graph_models[key]

    def rgcn_model(self, task: str = "parallel") -> TrainedGraphModel:
        key = ("rgcn", task)
        if key not in self._graph_models:
            from repro.models import RGCNBaseline, RGCNConfig

            train, _ = self.split
            data, vocab = prepare_graph_data(
                train, representation="aug", label_fn=LABEL_FNS[task],
            )
            cfg = self.config
            model = RGCNBaseline(vocab, RGCNConfig(
                dim=cfg.dim, layers=cfg.layers, dropout=cfg.dropout,
                seed=cfg.seed,
            ))
            trainer = GraphTrainer(model, self._train_config())
            trainer.fit(data)
            self._graph_models[key] = TrainedGraphModel(
                trainer=trainer, vocab=vocab, representation="aug", task=task,
            )
        return self._graph_models[key]

    def token_model(self, task: str = "parallel") -> TrainedTokenModel:
        if task not in self._token_models:
            train, _ = self.split
            cfg = self.config
            ids, mask, labels, vocab = prepare_token_data(
                train, max_len=cfg.max_token_len, label_fn=LABEL_FNS[task],
            )
            model = PragFormer(vocab, PragFormerConfig(
                dim=cfg.dim, heads=cfg.heads, layers=cfg.layers,
                dropout=cfg.dropout, max_len=cfg.max_token_len, seed=cfg.seed,
            ))
            trainer = TokenTrainer(model, self._train_config())
            trainer.fit(ids, mask, labels)
            self._token_models[task] = TrainedTokenModel(
                trainer=trainer, vocab=vocab, task=task,
                max_len=cfg.max_token_len,
            )
        return self._token_models[task]


_CONTEXTS: dict[ExperimentConfig, ExperimentContext] = {}


def get_context(config: ExperimentConfig | None = None) -> ExperimentContext:
    """Process-wide context cache, keyed by the (frozen) config."""
    config = config or ExperimentConfig.standard()
    if config not in _CONTEXTS:
        _CONTEXTS[config] = ExperimentContext(config)
    return _CONTEXTS[config]
