"""Table 5: per-clause pragma prediction (private/reduction/simd/target).

Four binary tasks over the whole dataset: "does this loop take clause
X".  Graph2Par handles all four; PragFormer is evaluated on private and
reduction only (the paper reports N/A for simd/target because the
original PragFormer does not model them).
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult

PAPER_TABLE5 = [
    {"pragma": "private", "approach": "Graph2Par", "precision": 0.88,
     "recall": 0.87, "f1": 0.87, "accuracy": 0.89},
    {"pragma": "private", "approach": "PragFormer", "precision": 0.86,
     "recall": 0.85, "f1": 0.86, "accuracy": 0.85},
    {"pragma": "reduction", "approach": "Graph2Par", "precision": 0.90,
     "recall": 0.89, "f1": 0.91, "accuracy": 0.91},
    {"pragma": "reduction", "approach": "PragFormer", "precision": 0.89,
     "recall": 0.87, "f1": 0.87, "accuracy": 0.87},
    {"pragma": "simd", "approach": "Graph2Par", "precision": 0.79,
     "recall": 0.76, "f1": 0.77, "accuracy": 0.77},
    {"pragma": "simd", "approach": "PragFormer", "precision": None,
     "recall": None, "f1": None, "accuracy": None},
    {"pragma": "target", "approach": "Graph2Par", "precision": 0.75,
     "recall": 0.74, "f1": 0.74, "accuracy": 0.74},
    {"pragma": "target", "approach": "PragFormer", "precision": None,
     "recall": None, "f1": None, "accuracy": None},
]

CLAUSES = ("private", "reduction", "simd", "target")


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    _, test = ctx.split
    rows = []
    for clause in CLAUSES:
        model = ctx.graph_model(representation="aug", task=clause)
        rows.append({
            "pragma": clause, "approach": "Graph2Par",
            **model.evaluate_samples(test),
        })
        if clause in ("private", "reduction"):
            token_model = ctx.token_model(task=clause)
            rows.append({
                "pragma": clause, "approach": "PragFormer",
                **token_model.evaluate_samples(test),
            })
        else:
            rows.append({
                "pragma": clause, "approach": "PragFormer",
                "precision": None, "recall": None, "f1": None,
                "accuracy": None,
            })
    return ExperimentResult(
        name="Table 5: four-pragma clause prediction",
        rows=rows,
        paper_reference=PAPER_TABLE5,
        notes=(
            "Expected shape: private/reduction strong, simd/target weaker "
            "(their labels depend on information the loop body only "
            "partially carries); Graph2Par >= PragFormer where both run."
        ),
    )
