"""Edge-type ablation on the aug-AST (DESIGN.md extension).

Trains the same HGT on four representation variants — full aug-AST,
without CFG edges, without lexical edges, and tree-only — plus the
homogeneous GCN over the full aug-AST, quantifying where the
representation's value comes from (heterogeneity vs connectivity).
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult

VARIANTS = (
    ("aug", "aug-AST (full)"),
    ("aug-nocfg", "aug-AST minus CFG edges"),
    ("aug-nolex", "aug-AST minus lexical edges"),
    ("vanilla", "AST only"),
)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    _, test = ctx.split
    rows = []
    for rep, label in VARIANTS:
        model = ctx.graph_model(representation=rep, task="parallel")
        rows.append({"variant": label, **model.evaluate_samples(test)})
    rgcn = ctx.rgcn_model(task="parallel")
    rows.append({
        "variant": "R-GCN (typed edges, untyped nodes)",
        **rgcn.evaluate_samples(test),
    })
    gcn = ctx.gcn_model(task="parallel")
    rows.append({
        "variant": "homogeneous GCN on full aug-AST",
        **gcn.evaluate_samples(test),
    })
    return ExperimentResult(
        name="Ablation: aug-AST edge types and heterogeneity",
        rows=rows,
        paper_reference=[],
        notes=(
            "Ladder: HGT (typed nodes+edges, attention) vs R-GCN (typed "
            "edges only) vs GCN (untyped). Expected: full aug-AST >= "
            "single-augmentation variants >= AST-only; HGT >= R-GCN >= GCN."
        ),
    )
