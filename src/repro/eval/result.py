"""Experiment result container and text-table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Rows (list of dicts) plus provenance for one table/figure."""

    name: str
    rows: list[dict] = field(default_factory=list)
    paper_reference: list[dict] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        parts = [f"== {self.name} =="]
        if self.rows:
            parts.append(render_table(self.rows))
        if self.paper_reference:
            parts.append("-- paper reported --")
            parts.append(render_table(self.paper_reference))
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]

    def row_for(self, **match) -> dict | None:
        """First row whose items include all of ``match``."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        return None


def render_table(rows: list[dict]) -> str:
    """Fixed-width text table over a list of uniform dicts."""
    if not rows:
        return "(empty)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    sep = "-+-".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for row in rows:
        lines.append(" | ".join(
            str(row.get(c, "")).ljust(widths[c]) for c in columns
        ))
    return "\n".join(lines)
