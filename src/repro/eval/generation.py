"""Extension experiment: complete pragma generation (paper §8).

The paper's stated future work — going from clause *prediction* to
emitting a complete pragma.  We measure, over annotated test loops,
how often the composed pragma agrees with the developer's one at the
directive level and on the reduction variable set.
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult
from repro.suggest import PragmaSuggester, agreement


def build_suggester(ctx) -> PragmaSuggester:
    return PragmaSuggester(
        ctx.graph_model(representation="aug", task="parallel"),
        {
            clause: ctx.graph_model(representation="aug", task=clause)
            for clause in ("reduction", "private", "simd", "target")
        },
    )


def run(config: ExperimentConfig | None = None,
        max_loops: int = 150) -> ExperimentResult:
    ctx = get_context(config)
    _, test = ctx.split
    annotated = [s for s in test if s.parallel and s.pragma][:max_loops]
    suggester = build_suggester(ctx)

    n = len(annotated)
    suggested_parallel = 0
    directive_ok = 0
    reduction_ok = 0
    for sample in annotated:
        suggestion = suggester.suggest_loop(sample.source)
        if not suggestion.parallel:
            continue
        suggested_parallel += 1
        scores = agreement(suggestion.pragma, "#" + sample.pragma
                           if not sample.pragma.startswith("#")
                           else sample.pragma)
        directive_ok += int(scores["directive_match"])
        reduction_ok += int(scores["reduction_match"])

    rows = [{
        "loops": n,
        "suggested_parallel": suggested_parallel,
        "directive_agreement": round(directive_ok / n, 4) if n else 0.0,
        "reduction_var_agreement": round(reduction_ok / n, 4) if n else 0.0,
    }]
    return ExperimentResult(
        name="Extension: complete pragma generation vs developer pragmas",
        rows=rows,
        paper_reference=[],
        notes=(
            "No paper numbers exist (this is their future work); the bench "
            "records how far prediction + analysis composition gets."
        ),
    )
