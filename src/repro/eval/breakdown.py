"""Per-category error breakdown of Graph2Par's parallelism detection.

Not a paper table, but the natural diagnostic behind Tables 2–4: which
OMP_Serial categories does the model get right, and where do its false
positives/negatives concentrate?  The paper's §6.4 discussion predicts
false positives cluster on tool-resistant patterns whose twins carry no
pragma — this table makes that visible.
"""

from __future__ import annotations

from collections import defaultdict

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    _, test = ctx.split
    model = ctx.graph_model(representation="aug", task="parallel")
    preds = model.predict_samples(test)

    buckets: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for sample, pred in zip(test, preds):
        key = sample.category if sample.parallel else "non-parallel"
        buckets[key].append((int(pred), sample.label))

    rows = []
    for category in ("reduction", "private", "simd", "target", "parallel",
                     "non-parallel"):
        pairs = buckets.get(category, [])
        if not pairs:
            continue
        correct = sum(1 for p, y in pairs if p == y)
        rows.append({
            "category": category,
            "loops": len(pairs),
            "accuracy": round(correct / len(pairs), 4),
            "predicted_parallel": sum(p for p, _ in pairs),
        })
    return ExperimentResult(
        name="Breakdown: Graph2Par accuracy per OMP_Serial category",
        rows=rows,
        paper_reference=[],
        notes=(
            "Errors on 'non-parallel' are dominated by unannotated-but-"
            "parallelisable loops (the §6.4 false-positive story); clause "
            "categories track Table 5's ordering."
        ),
    )
