"""Table 1: OMP_Serial statistics summary."""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult

#: The published Table 1 (counts at scale 1.0).
PAPER_TABLE1 = [
    {"source": "github", "type": "parallel", "pragma_type": "reduction",
     "loops": 3705, "function_call": 279, "nested_loops": 887, "avg_loc": 6.35},
    {"source": "github", "type": "parallel", "pragma_type": "private",
     "loops": 6278, "function_call": 680, "nested_loops": 2589, "avg_loc": 8.51},
    {"source": "github", "type": "parallel", "pragma_type": "simd",
     "loops": 3574, "function_call": 42, "nested_loops": 201, "avg_loc": 2.65},
    {"source": "github", "type": "parallel", "pragma_type": "target",
     "loops": 2155, "function_call": 99, "nested_loops": 191, "avg_loc": 3.04},
    {"source": "github", "type": "non-parallel", "pragma_type": "-",
     "loops": 13972, "function_call": 3043, "nested_loops": 5931, "avg_loc": 8.59},
    {"source": "synthetic", "type": "parallel", "pragma_type": "reduction",
     "loops": 200, "function_call": 200, "nested_loops": 100, "avg_loc": 31.59},
    {"source": "synthetic", "type": "parallel", "pragma_type": "private (do-all)",
     "loops": 200, "function_call": 200, "nested_loops": 100, "avg_loc": 28.26},
    {"source": "synthetic", "type": "non-parallel", "pragma_type": "-",
     "loops": 700, "function_call": 0, "nested_loops": 0, "avg_loc": 6.43},
]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the dataset-statistics table from the generated corpus."""
    ctx = get_context(config)
    rows = ctx.dataset.stats()
    return ExperimentResult(
        name="Table 1: OMP_Serial statistic summary",
        rows=rows,
        paper_reference=PAPER_TABLE1,
        notes=(
            f"generated at scale={ctx.config.scale}; paper counts are "
            "full-scale (scale=1.0). Category proportions, call/nest rates "
            "and LOC averages are the comparable quantities."
        ),
    )
