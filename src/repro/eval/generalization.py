"""Generalization experiment: corpus-trained models on fixed benchmark kernels.

Brauckmann et al. (cited in the paper's introduction) argue that
graph-based representations "generalize to never-seen-before examples"
better than token models.  This experiment tests exactly that: models
train on the generated corpus and predict on the hand-written NPB /
PolyBench / BOTS / Starbench-style kernels of
:mod:`repro.dataset.benchsuite`, which share no generator with the
training data.
"""

from __future__ import annotations

from repro.dataset.benchsuite import benchmark_suite_samples
from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    suite = benchmark_suite_samples()
    rows = []
    for label, model in (
        ("Graph2Par (aug-AST)", ctx.graph_model("aug", "parallel")),
        ("HGT-AST", ctx.graph_model("vanilla", "parallel")),
        ("PragFormer", ctx.token_model("parallel")),
    ):
        metrics = model.evaluate_samples(suite)
        preds = model.predict_samples(suite)
        rows.append({
            "approach": label,
            "kernels": len(suite),
            "predicted_parallel": int(preds.sum()),
            **metrics,
        })
    return ExperimentResult(
        name="Generalization: fixed benchmark kernels (out-of-distribution)",
        rows=rows,
        paper_reference=[],
        notes=(
            "Fixed NPB/PolyBench/BOTS/Starbench-style kernels, never seen "
            "by the generator. Expected shape: graph models transfer at "
            "least as well as the token baseline (Brauckmann et al.'s "
            "generalization argument, echoed in the paper's intro)."
        ),
    )
