"""Table 4: Graph2Par vs each tool on the tool's processable subset.

Subset_X = test-set loops the tool X can process.  Accounting follows
the paper exactly:

- for the *tool*, only parallel-labelled loops enter its confusion
  counts (a conservative tool is never credited with true negatives, so
  TN = FP = 0 and accuracy == recall — that is how PLUTO shows 100 %
  precision at 39.5 % accuracy);
- Graph2Par is scored on the whole subset, positives and negatives.
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult
from repro.train.metrics import BinaryMetrics, confusion_counts

PAPER_TABLE4 = [
    {"subset": "PLUTO", "approach": "PLUTO", "TP": 1593, "TN": 0, "FP": 0,
     "FN": 2439, "precision": 1.0, "recall": 0.3951, "f1": 0.5664,
     "accuracy": 0.3951},
    {"subset": "PLUTO", "approach": "Graph2Par", "TP": 2860, "TN": 617,
     "FP": 356, "FN": 199, "precision": 0.8893, "recall": 0.9349,
     "f1": 0.9116, "accuracy": 0.8624},
    {"subset": "autoPar", "approach": "autoPar", "TP": 345, "TN": 952,
     "FP": 0, "FN": 2059, "precision": 1.0, "recall": 0.1435, "f1": 0.2510,
     "accuracy": 0.3865},
    {"subset": "autoPar", "approach": "Graph2Par", "TP": 1800, "TN": 897,
     "FP": 187, "FN": 472, "precision": 0.9059, "recall": 0.7923,
     "f1": 0.8453, "accuracy": 0.8036},
    {"subset": "DiscoPoP", "approach": "DiscoPoP", "TP": 541, "TN": 240,
     "FP": 0, "FN": 445, "precision": 1.0, "recall": 0.5487, "f1": 0.7086,
     "accuracy": 0.6370},
    {"subset": "DiscoPoP", "approach": "Graph2Par", "TP": 635, "TN": 366,
     "FP": 64, "FN": 161, "precision": 0.9084, "recall": 0.7977,
     "f1": 0.8495, "accuracy": 0.8165},
]


def _tool_confusion(verdicts, samples) -> BinaryMetrics:
    """Tool confusion with the paper's accounting (positives only)."""
    tp = sum(1 for v, s in zip(verdicts, samples) if s.parallel and v.parallel)
    fn = sum(1 for v, s in zip(verdicts, samples) if s.parallel and not v.parallel)
    # Sound tools never claim parallelism falsely; still, count any FP so
    # a regression would be visible rather than hidden.
    fp = sum(1 for v, s in zip(verdicts, samples) if not s.parallel and v.parallel)
    return BinaryMetrics(tp=tp, tn=0, fp=fp, fn=fn)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    _, test = ctx.split
    aug = ctx.graph_model(representation="aug", task="parallel")
    rows = []
    for tool_name, label in (("pluto", "PLUTO"), ("autopar", "autoPar"),
                             ("discopop", "DiscoPoP")):
        verdict_map = ctx.tool_verdict_map(tool_name)
        subset = [s for s in test if id(s) in verdict_map
                  and verdict_map[id(s)].processable]
        if not subset:
            continue
        verdicts = [verdict_map[id(s)] for s in subset]
        tool_metrics = _tool_confusion(verdicts, subset)
        rows.append({"subset": label, "approach": label,
                     **tool_metrics.as_row()})
        preds = aug.predict_samples(subset)
        labels = [s.label for s in subset]
        model_metrics = confusion_counts(preds, labels)
        rows.append({"subset": label, "approach": "Graph2Par",
                     **model_metrics.as_row()})
    return ExperimentResult(
        name="Table 4: tool-subset comparison (parallelism detection)",
        rows=rows,
        paper_reference=PAPER_TABLE4,
        notes=(
            "Expected shape: tools show precision 1.0 with low recall; "
            "Graph2Par beats each tool's accuracy/F1 on its own subset. "
            "The paper retrains per-subset with the subset excluded; at "
            "repro scale we score the jointly-trained model on each subset."
        ),
    )
