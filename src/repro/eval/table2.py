"""Table 2: pragma-existence prediction across code representations.

Compares the vanilla heterogeneous AST, the token-based PragFormer, and
Graph2Par's aug-AST on the binary "does this loop take a worksharing
pragma" task.  The expected shape: Graph2Par > PragFormer > AST.
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult

PAPER_TABLE2 = [
    {"approach": "AST", "precision": 0.74, "recall": 0.73, "f1": 0.74,
     "accuracy": 0.74},
    {"approach": "PragFormer", "precision": 0.81, "recall": 0.81, "f1": 0.80,
     "accuracy": 0.80},
    {"approach": "Graph2Par", "precision": 0.92, "recall": 0.82, "f1": 0.87,
     "accuracy": 0.85},
]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    _, test = ctx.split
    rows = []

    vanilla = ctx.graph_model(representation="vanilla", task="parallel")
    rows.append({"approach": "AST", **vanilla.evaluate_samples(test)})

    tokens = ctx.token_model(task="parallel")
    rows.append({"approach": "PragFormer", **tokens.evaluate_samples(test)})

    aug = ctx.graph_model(representation="aug", task="parallel")
    rows.append({"approach": "Graph2Par", **aug.evaluate_samples(test)})

    return ExperimentResult(
        name="Table 2: pragma existence prediction",
        rows=rows,
        paper_reference=PAPER_TABLE2,
        notes=(
            "Paper ordering: Graph2Par > PragFormer > AST (85/80/74). "
            "Finding at repro scale: all three representations reach the "
            "label-ambiguity ceiling of the generated corpus (~86 %, "
            "matching the paper's absolute Graph2Par accuracy) and the "
            "gaps compress to seed-level ties — the paper's margins stem "
            "from real-crawl messiness (and PragFormer's pretrained "
            "encoder) that a synthetic corpus cannot fully reproduce. "
            "The bench asserts Graph2Par stays within tolerance of the "
            "best representation and above the paper's absolute level."
        ),
    )
