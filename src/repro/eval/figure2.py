"""Figure 2: category-wise loops missed by the algorithm-based tools.

A parallel-labelled loop is *missed* by a tool when the tool does not
report it parallel (whether because analysis failed or because the tool
could not process it).  Categories follow the paper: loops with
reduction, with function calls, with both, nested loops, and others.
"""

from __future__ import annotations

from repro.dataset.sample import LoopSample
from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult

CATEGORIES = (
    "loops_with_reduction",
    "loops_with_function_call",
    "loops_with_reduction_and_function_call",
    "nested_loops",
    "others",
)

#: Figure 2 values from the paper (bar heights).  The published figure is
#: a chart; these numbers are read off its labels (the arXiv text renders
#: them run together), so treat them as close approximations.
PAPER_FIGURE2 = [
    {"tool": "pluto", "loops_with_reduction": 1019,
     "loops_with_function_call": 825, "loops_with_reduction_and_function_call": 597,
     "nested_loops": 2525, "others": 360},
    {"tool": "autopar", "loops_with_reduction": 1035,
     "loops_with_function_call": 94, "loops_with_reduction_and_function_call": 253,
     "nested_loops": 948, "others": 489},
    {"tool": "discopop", "loops_with_reduction": 393, "loops_with_function_call": 83,
     "loops_with_reduction_and_function_call": 9, "nested_loops": 38,
     "others": 1},
]


def classify(sample: LoopSample) -> str:
    """Paper's category partition for a parallel loop."""
    is_reduction = sample.category == "reduction"
    if is_reduction and sample.has_call:
        return "loops_with_reduction_and_function_call"
    if is_reduction:
        return "loops_with_reduction"
    if sample.has_call:
        return "loops_with_function_call"
    if sample.nested:
        return "nested_loops"
    return "others"


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    parallel = [
        (i, s) for i, s in enumerate(ctx.dataset) if s.parallel
    ]
    rows = []
    for tool_name in ("pluto", "autopar", "discopop"):
        verdicts = ctx.tool_verdicts(tool_name)
        counts = {c: 0 for c in CATEGORIES}
        for i, sample in parallel:
            if not verdicts[i].parallel:
                counts[classify(sample)] += 1
        rows.append({"tool": tool_name, **counts})
    return ExperimentResult(
        name="Figure 2: category-wise loops missed by tools",
        rows=rows,
        paper_reference=PAPER_FIGURE2,
        notes=(
            "Shape expectations: reduction and nested loops dominate the "
            "misses of the static tools; DiscoPoP misses fewer in absolute "
            "terms only because it processes far fewer loops."
        ),
    )
