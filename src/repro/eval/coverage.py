"""§2 coverage: fraction of OMP_Serial each tool can process.

Two levels, matching how the paper's numbers arise:

- *file level* — can the toolchain even ingest the file (ROSE frontend,
  instrumentation + link + run)?  This is what limits autoPar to 10.3 %
  and DiscoPoP to 3.7 % of loops in the paper.
- *loop level* — of the loops in ingestible files, which does the
  analysis itself handle (canonical/affine/executable)?
"""

from __future__ import annotations

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context
from repro.eval.result import ExperimentResult
from repro.tools import make_tool

PAPER_COVERAGE = [
    {"tool": "autopar", "file_gated_loop_coverage": 0.103},
    {"tool": "discopop", "file_gated_loop_coverage": 0.037},
    # PrograML (not built here) processed 31.2 % — listed for context.
]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    ctx = get_context(config)
    dataset = ctx.dataset
    total = len(dataset)
    rows = []
    for tool_name in ("pluto", "autopar", "discopop"):
        tool = make_tool(tool_name)
        verdicts = ctx.tool_verdicts(tool_name)
        file_ok = [tool.can_process_file(s.file_meta) for s in dataset]
        loop_ok = [v.processable for v in verdicts]
        both = [f and l for f, l in zip(file_ok, loop_ok)]
        rows.append({
            "tool": tool_name,
            "file_gated_loop_coverage": round(sum(both) / total, 4),
            "file_level_only": round(sum(file_ok) / total, 4),
            "loop_level_only": round(sum(loop_ok) / total, 4),
        })
    return ExperimentResult(
        name="Coverage: fraction of loops each tool can process",
        rows=rows,
        paper_reference=PAPER_COVERAGE,
        notes=(
            "Expected shape: DiscoPoP (needs runnable programs) << autoPar "
            "(needs ROSE-compilable files) < Pluto (parses source)."
        ),
    )
