"""Pragma suggestion and generation.

Section 8 of the paper names "generating complete OpenMP pragmas" as the
future-work step beyond clause-presence prediction.  This module builds
that: the trained models decide *whether* a loop parallelises and which
clause families apply, then the static dependence machinery fills in the
concrete clause arguments (reduction operator + variable, private list),
yielding a full pragma string.

The two layers deliberately mirror §6.4's deployment story: the learned
model proposes, the analysis grounds the proposal in variables the loop
actually uses, and the developer stays in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfront import ParseError
from repro.cfront.nodes import Stmt
from repro.dataset.extract import extract_loops_from_source
from repro.dataset.sample import LoopSample
from repro.tools.deps import analyze_loop


@dataclass
class Suggestion:
    """One loop's suggestion."""

    loop_source: str
    parallel: bool
    pragma: str | None = None
    clause_families: list[str] = field(default_factory=list)
    rationale: str = ""

    def render(self) -> str:
        if not self.parallel:
            return f"// keep sequential: {self.rationale}\n{self.loop_source}"
        return f"{self.pragma}\n{self.loop_source}"


class PragmaSuggester:
    """Composes complete pragmas from model predictions + static analysis.

    ``parallel_model`` and ``clause_models`` are
    :class:`repro.eval.context.TrainedGraphModel`-like objects exposing
    ``predict_samples``; any drop-in with that interface works.
    """

    def __init__(self, parallel_model, clause_models: dict) -> None:
        self.parallel_model = parallel_model
        self.clause_models = dict(clause_models)

    # -- single loop ---------------------------------------------------------

    def suggest_loop(self, loop_source: str,
                     live_out: frozenset[str] = frozenset()) -> Suggestion:
        """Suggestion for one loop.

        ``live_out`` lists scalars read after the loop in its enclosing
        function (when known): privatized scalars in that set must be
        ``lastprivate`` for correctness.
        """
        sample = LoopSample(source=loop_source, parallel=False)
        try:
            loop = sample.ast()
        except ParseError as exc:
            return Suggestion(loop_source=loop_source, parallel=False,
                              rationale=f"unparseable loop: {exc}")
        is_parallel = bool(self.parallel_model.predict_samples([sample])[0])
        if not is_parallel:
            return Suggestion(
                loop_source=loop_source, parallel=False,
                rationale="model predicts loop-carried dependence",
            )
        families = [
            clause for clause, model in self.clause_models.items()
            if bool(model.predict_samples([sample])[0])
        ]
        pragma, rationale = self._compose(loop, families, live_out)
        return Suggestion(
            loop_source=loop_source, parallel=True, pragma=pragma,
            clause_families=families, rationale=rationale,
        )

    # -- composition -----------------------------------------------------------

    def _compose(self, loop: Stmt, families: list[str],
                 live_out: frozenset[str] = frozenset()) -> tuple[str, str]:
        """Ground predicted clause families in the loop's actual variables."""
        deps = analyze_loop(loop, conditional_reductions=True)
        parts: list[str] = []
        notes: list[str] = []

        if "target" in families:
            parts.append("target teams distribute")
            notes.append("offload-style kernel")
        parts.append("parallel for")
        if "simd" in families and "target" not in families:
            parts.append("simd")
            notes.append("vectorisable body")

        clauses: list[str] = []
        if "reduction" in families or deps.reductions:
            if deps.reductions:
                ops: dict[str, list[str]] = {}
                for r in deps.reductions:
                    ops.setdefault(r.op, []).append(r.var)
                for op, variables in sorted(ops.items()):
                    clauses.append(f"reduction({op}:{', '.join(sorted(variables))})")
                notes.append(
                    "reduction variables grounded by dependence analysis"
                )
            else:
                notes.append(
                    "model suggests a reduction but analysis found no "
                    "accumulator; emitting plain parallel for"
                )
        private_vars = sorted(deps.privatizable - deps.summary.local_decls)
        if private_vars and ("private" in families or deps.privatizable):
            escaping = [v for v in private_vars if v in live_out]
            plain = [v for v in private_vars if v not in live_out]
            if plain:
                clauses.append(f"private({', '.join(plain)})")
            if escaping:
                # The scalar's final value is consumed after the loop:
                # plain privatization would drop it.
                clauses.append(f"lastprivate({', '.join(escaping)})")
                notes.append("post-loop reads require lastprivate")
            notes.append("privatizable scalars from write-before-read analysis")

        pragma = "#pragma omp " + " ".join(parts)
        if clauses:
            pragma += " " + " ".join(clauses)
        return pragma, "; ".join(notes) or "independent iterations"

    # -- whole files ---------------------------------------------------------------

    def suggest_file(self, source: str) -> list[Suggestion]:
        """Suggestions for every outermost loop of a C file.

        File context enables liveness: scalars consumed after a loop are
        suggested as ``lastprivate`` rather than ``private``.
        """
        from repro.cfg.analysis import scalars_read_after
        from repro.cfront import parse_source
        from repro.cfront.nodes import LOOP_KINDS
        from repro.dataset.extract import _outermost_loops

        samples = extract_loops_from_source(source)
        tu = parse_source(source)
        live_outs: list[frozenset[str]] = []
        for fn in tu.functions():
            if fn.body is None:
                continue
            for loop in _outermost_loops(fn.body):
                live_outs.append(frozenset(scalars_read_after(fn.body, loop)))
        if len(live_outs) != len(samples):   # defensive: keep them aligned
            live_outs = [frozenset()] * len(samples)
        return [
            self.suggest_loop(s.source, live_out=lo)
            for s, lo in zip(samples, live_outs)
        ]


def agreement(suggested: str | None, original: str | None) -> dict:
    """Clause-level agreement between a suggested and an original pragma.

    Returns directive/reduction/private agreement flags used by the
    pragma-generation bench.
    """
    from repro.pragma import parse_omp_pragma

    if suggested is None or original is None:
        return {"both_present": suggested is None and original is None,
                "directive_match": False, "reduction_match": False}
    sp = parse_omp_pragma(suggested)
    op = parse_omp_pragma(original)
    if sp is None or op is None:
        return {"both_present": False, "directive_match": False,
                "reduction_match": False}
    return {
        "both_present": True,
        "directive_match": ("for" in sp.directives) == ("for" in op.directives)
        and sp.has_directive("target") == op.has_directive("target"),
        "reduction_match": {v for _, v in sp.reductions}
        == {v for _, v in op.reductions},
    }
