"""Pragma suggestion and generation.

Section 8 of the paper names "generating complete OpenMP pragmas" as the
future-work step beyond clause-presence prediction.  This module builds
that: the trained models decide *whether* a loop parallelises and which
clause families apply, then the static dependence machinery fills in the
concrete clause arguments (reduction operator + variable, private list),
yielding a full pragma string.

The two layers deliberately mirror §6.4's deployment story: the learned
model proposes, the analysis grounds the proposal in variables the loop
actually uses, and the developer stays in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.analysis import scalars_read_after
from repro.cfront import ParseError
from repro.cfront.nodes import Stmt
from repro.dataset.extract import _outermost_loops, extract_loops_by_function
from repro.dataset.sample import LoopSample
from repro.pragma.model import PragmaError
from repro.tools.deps import analyze_loop


@dataclass
class Suggestion:
    """One loop's suggestion."""

    loop_source: str
    parallel: bool
    pragma: str | None = None
    clause_families: list[str] = field(default_factory=list)
    rationale: str = ""

    def render(self) -> str:
        if not self.parallel:
            return f"// keep sequential: {self.rationale}\n{self.loop_source}"
        return f"{self.pragma}\n{self.loop_source}"

    def to_dict(self) -> dict:
        """JSON-safe payload (CLI output and the persistent store)."""
        return {
            "loop_source": self.loop_source,
            "parallel": self.parallel,
            "pragma": self.pragma,
            "clause_families": list(self.clause_families),
            "rationale": self.rationale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Suggestion":
        return cls(
            loop_source=data["loop_source"],
            parallel=bool(data["parallel"]),
            pragma=data.get("pragma"),
            clause_families=list(data.get("clause_families") or []),
            rationale=data.get("rationale", ""),
        )


@dataclass(frozen=True)
class LoopRequest:
    """One loop queued for suggestion.

    ``live_out`` lists scalars read after the loop in its enclosing
    function (when known): privatized scalars in that set must be
    ``lastprivate`` for correctness.  ``ast`` optionally carries the
    already-parsed loop statement so batch consumers skip a re-parse;
    it is advisory (never part of equality) and is dropped when a
    request is pickled — shard workers and parse pools exchange plain
    sources and re-parse lazily, which keeps the wire payload small and
    the suggestions identical either way.
    """

    source: str
    live_out: frozenset[str] = frozenset()
    ast: Stmt | None = field(default=None, compare=False, repr=False)

    def __getstate__(self) -> dict:
        return {"source": self.source, "live_out": self.live_out}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "source", state["source"])
        object.__setattr__(self, "live_out", state["live_out"])
        object.__setattr__(self, "ast", None)


class PragmaSuggester:
    """Composes complete pragmas from model predictions + static analysis.

    ``parallel_model`` and ``clause_models`` are
    :class:`repro.eval.context.TrainedGraphModel`-like objects exposing
    ``predict_samples``; any drop-in with that interface works.
    """

    def __init__(self, parallel_model, clause_models: dict) -> None:
        self.parallel_model = parallel_model
        self.clause_models = dict(clause_models)

    # -- single loop ---------------------------------------------------------

    def suggest_loop(self, loop_source: str,
                     live_out: frozenset[str] = frozenset()) -> Suggestion:
        """Suggestion for one loop (thin wrapper over the batch path)."""
        return self.suggest_batch(
            [LoopRequest(source=loop_source, live_out=live_out)]
        )[0]

    # -- batched -------------------------------------------------------------

    def suggest_batch(
        self, requests: list[LoopRequest | str],
    ) -> list[Suggestion]:
        """Suggestions for many loops with one model call per task.

        The per-loop path costs ``L×(C+1)`` single-graph forward passes
        for L loops and C clause families; here the parallel model sees
        all parseable loops in one ``predict_samples`` call and each
        clause model sees the predicted-parallel subset in one call, so
        every model runs a single batched (block-diagonal) forward.
        Results are order-aligned with ``requests``.

        Duplicate requests — ubiquitous in crawled corpora, which is
        why the paper deduplicated its dataset — are computed once and
        fanned back out to every occurrence.
        """
        all_reqs = [
            r if isinstance(r, LoopRequest) else LoopRequest(source=r)
            for r in requests
        ]
        unique_index: dict[LoopRequest, int] = {}
        positions: list[int] = []
        reqs: list[LoopRequest] = []
        for req in all_reqs:
            j = unique_index.get(req)
            if j is None:
                j = unique_index[req] = len(reqs)
                reqs.append(req)
            positions.append(j)
        suggestions: list[Suggestion | None] = [None] * len(reqs)
        parseable: list[int] = []
        samples: list[LoopSample] = []
        for i, req in enumerate(reqs):
            sample = LoopSample(source=req.source, parallel=False)
            if req.ast is not None:
                sample._ast_cache = req.ast
            try:
                sample.ast()
            except ParseError as exc:
                suggestions[i] = Suggestion(
                    loop_source=req.source, parallel=False,
                    rationale=f"unparseable loop: {exc}",
                )
                continue
            parseable.append(i)
            samples.append(sample)

        if samples:
            is_parallel = self.parallel_model.predict_samples(samples)
        else:
            is_parallel = []
        par_idx = [i for i, p in zip(parseable, is_parallel) if bool(p)]
        par_samples = [s for s, p in zip(samples, is_parallel) if bool(p)]
        for i, p in zip(parseable, is_parallel):
            if not bool(p):
                suggestions[i] = Suggestion(
                    loop_source=reqs[i].source, parallel=False,
                    rationale="model predicts loop-carried dependence",
                )

        families_per_loop: dict[int, list[str]] = {i: [] for i in par_idx}
        if par_samples:
            for clause, model in self.clause_models.items():
                votes = model.predict_samples(par_samples)
                for i, vote in zip(par_idx, votes):
                    if bool(vote):
                        families_per_loop[i].append(clause)
        for i, sample in zip(par_idx, par_samples):
            families = families_per_loop[i]
            pragma, rationale = self._compose(
                sample.ast(), families, reqs[i].live_out,
            )
            suggestions[i] = Suggestion(
                loop_source=reqs[i].source, parallel=True, pragma=pragma,
                clause_families=families, rationale=rationale,
            )
        return [suggestions[j] for j in positions]

    # -- composition -----------------------------------------------------------

    def _compose(self, loop: Stmt, families: list[str],
                 live_out: frozenset[str] = frozenset()) -> tuple[str, str]:
        """Ground predicted clause families in the loop's actual variables."""
        deps = analyze_loop(loop, conditional_reductions=True)
        parts: list[str] = []
        notes: list[str] = []

        if "target" in families:
            parts.append("target teams distribute")
            notes.append("offload-style kernel")
        parts.append("parallel for")
        if "simd" in families and "target" not in families:
            parts.append("simd")
            notes.append("vectorisable body")

        clauses: list[str] = []
        if "reduction" in families or deps.reductions:
            if deps.reductions:
                ops: dict[str, list[str]] = {}
                for r in deps.reductions:
                    ops.setdefault(r.op, []).append(r.var)
                for op, variables in sorted(ops.items()):
                    clauses.append(f"reduction({op}:{', '.join(sorted(variables))})")
                notes.append(
                    "reduction variables grounded by dependence analysis"
                )
            else:
                notes.append(
                    "model suggests a reduction but analysis found no "
                    "accumulator; emitting plain parallel for"
                )
        private_vars = sorted(deps.privatizable - deps.summary.local_decls)
        if private_vars and ("private" in families or deps.privatizable):
            escaping = [v for v in private_vars if v in live_out]
            plain = [v for v in private_vars if v not in live_out]
            if plain:
                clauses.append(f"private({', '.join(plain)})")
            if escaping:
                # The scalar's final value is consumed after the loop:
                # plain privatization would drop it.
                clauses.append(f"lastprivate({', '.join(escaping)})")
                notes.append("post-loop reads require lastprivate")
            notes.append("privatizable scalars from write-before-read analysis")

        pragma = "#pragma omp " + " ".join(parts)
        if clauses:
            pragma += " " + " ".join(clauses)
        return pragma, "; ".join(notes) or "independent iterations"

    # -- whole files ---------------------------------------------------------------

    def suggest_file(self, source: str) -> list[Suggestion]:
        """Suggestions for every outermost loop of a C file.

        File context enables liveness: scalars consumed after a loop are
        suggested as ``lastprivate`` rather than ``private``.  Parsing
        errors propagate — callers drop uncompilable files.
        """
        return self.suggest_batch(file_requests(source))


def file_requests(source: str, with_asts: bool = True) -> list[LoopRequest]:
    """Every outermost loop of a C file as a :class:`LoopRequest`.

    Loops are paired with per-function liveness so suggestion paths
    (single-file and batched serving) share one extraction/alignment
    rule: when a function's loop count disagrees with its extracted
    samples, liveness falls back to empty sets for *that function
    only* — a mismatch must not drop ``lastprivate`` correctness for
    every other loop in the file.

    ``with_asts`` threads the already-parsed loop statements into the
    requests (skipping a re-parse downstream); pass ``False`` when the
    requests must cross a process boundary.
    """
    requests: list[LoopRequest] = []
    for fn, samples in extract_loops_by_function(source):
        loops = _outermost_loops(fn.body)
        aligned = len(loops) == len(samples)
        for i, sample in enumerate(samples):
            live_out = (
                frozenset(scalars_read_after(fn.body, loops[i]))
                if aligned else frozenset()   # defensive: per-function
            )
            requests.append(LoopRequest(
                source=sample.source, live_out=live_out,
                ast=loops[i] if aligned and with_asts else None,
            ))
    return requests


def agreement(suggested: str | None, original: str | None) -> dict:
    """Clause-level agreement between a suggested and an original pragma.

    Returns directive/reduction/private agreement flags used by the
    pragma-generation bench.
    """
    from repro.pragma import parse_omp_pragma

    if suggested is None or original is None:
        return {"both_present": suggested is None and original is None,
                "directive_match": False, "reduction_match": False}
    try:
        sp = parse_omp_pragma(suggested)
        op = parse_omp_pragma(original)
    except PragmaError:
        # Malformed omp pragmas (clause-only like "omp private(t)", junk
        # clause lists) count as no usable pragma, not a crash.
        sp = op = None
    if sp is None or op is None:
        return {"both_present": False, "directive_match": False,
                "reduction_match": False}
    return {
        "both_present": True,
        "directive_match": ("for" in sp.directives) == ("for" in op.directives)
        and sp.has_directive("target") == op.has_directive("target"),
        "reduction_match": {v for _, v in sp.reductions}
        == {v for _, v in op.reductions},
    }
