"""Trainers for the graph models and the token baseline.

Mini-batched Adam with cosine decay, gradient clipping, class-weighted
cross-entropy (OMP_Serial is imbalanced), and early stopping on
validation F1.  Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.sample import LoopSample
from repro.graphs import (
    CollateCache,
    GraphVocab,
    REPRESENTATION_BUILDERS,
    build_graph_vocab,
    collate,
    encode_graph,
)
from repro.graphs.encode import EncodeCache, EncodedGraph
from repro.models.pragformer import build_token_vocab, encode_tokens, tokenize_loop
from repro.nn import Adam, clip_grad_norm, cosine_schedule, functional as F
from repro.nn.tensor import fast_math_enabled, no_grad
from repro.train.metrics import classification_metrics


@dataclass
class TrainConfig:
    epochs: int = 8
    batch_size: int = 32
    lr: float = 2e-3
    weight_decay: float = 1e-4
    warmup_fraction: float = 0.1
    grad_clip: float = 1.0
    class_weights: bool = True
    early_stop_patience: int = 0      # 0 = disabled
    seed: int = 0
    verbose: bool = False


# ---------------------------------------------------------------------------
# Data preparation
# ---------------------------------------------------------------------------


def prepare_graph_data(
    samples: list[LoopSample],
    representation: str = "aug",
    vocab: GraphVocab | None = None,
    label_fn=None,
    cache: EncodeCache | None = None,
) -> tuple[list[EncodedGraph], GraphVocab]:
    """Samples → encoded graphs (+ the vocabulary used).

    ``representation``: ``"aug"`` (full aug-AST), ``"vanilla"`` (tree
    only), ``"aug-nocfg"`` / ``"aug-nolex"`` (ablations).
    ``label_fn(sample) -> int`` defaults to the parallel/non-parallel
    label.  Passing an :class:`EncodeCache` (bound to a frozen vocab)
    reuses encodings of previously seen loop sources — the serving path
    over a corpus hits the same loops once per model otherwise.
    """
    label_fn = label_fn or (lambda s: s.label)
    if cache is not None:
        if vocab is not None and vocab is not cache.vocab:
            raise ValueError("cache is bound to a different vocab")
        if representation != cache.representation:
            raise ValueError(
                f"cache built for {cache.representation!r}, "
                f"got {representation!r}"
            )
        encoded = [
            cache.encode_loop(s.source, loop=s.ast(), label=label_fn(s))
            for s in samples
        ]
        return encoded, cache.vocab
    try:
        builder = REPRESENTATION_BUILDERS[representation]
    except KeyError:
        raise ValueError(
            f"unknown representation {representation!r}; "
            f"choose from {sorted(REPRESENTATION_BUILDERS)}"
        )
    graphs = [builder(s.ast()) for s in samples]
    if vocab is None:
        vocab = build_graph_vocab(graphs)
    encoded = [
        encode_graph(g, vocab, label=label_fn(s))
        for g, s in zip(graphs, samples)
    ]
    return encoded, vocab


def prepare_token_data(
    samples: list[LoopSample],
    vocab=None,
    max_len: int = 128,
    label_fn=None,
):
    """Samples → (ids, mask, labels) for PragFormer (+ vocabulary)."""
    label_fn = label_fn or (lambda s: s.label)
    seqs = [tokenize_loop(s.source, max_len) for s in samples]
    if vocab is None:
        vocab = build_token_vocab(seqs)
    ids, mask = encode_tokens(seqs, vocab, max_len)
    labels = np.array([label_fn(s) for s in samples], dtype=np.int64)
    return ids, mask, labels, vocab


def _class_weights(labels: np.ndarray, num_classes: int) -> np.ndarray:
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    weights = counts.sum() / (num_classes * counts)
    return weights.astype(np.float32)


# ---------------------------------------------------------------------------
# Graph trainer
# ---------------------------------------------------------------------------


class GraphTrainer:
    """Trains a Graph2Par/GCN model on encoded graphs.

    Also the inference shell around bundle-loaded models: the Adam
    state (two moment buffers per parameter) only materialises when
    something actually optimises, so predict-only trainers never pay
    for it.
    """

    def __init__(self, model, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self._opt: Adam | None = None
        self._batches = CollateCache()
        self._cache_collate = False
        self.history: list[dict] = []

    @property
    def opt(self) -> Adam:
        if self._opt is None:
            self._opt = Adam(self.model.parameters(), lr=self.config.lr,
                             weight_decay=self.config.weight_decay)
        return self._opt

    def _collate(self, graphs: list[EncodedGraph]):
        """Epoch-persistent collation, scoped to ``fit``'s evaluations.

        Inside ``fit`` the per-epoch validation pass slices the same
        data identically every epoch, so each distinct mini-batch
        collates once and its cached :class:`GraphBatch` returns with
        structural precomputation (type sort, edge structure, scatter
        rounds) intact.  Everything else bypasses the cache: shuffled
        training batches and one-shot external predictions can never
        hit, so caching them would only pin memory and churn the LRU.
        """
        if self._cache_collate and fast_math_enabled():
            return self._batches.collate(graphs)
        return collate(graphs)

    def __getstate__(self) -> dict:
        # the collate cache is pure memoisation and can be large (every
        # batch pins its graphs); shard workers receiving pickled
        # models rebuild it on demand instead of paying for the bytes
        state = dict(self.__dict__)
        state["_batches"] = CollateCache(self._batches.max_entries)
        return state

    def fit(self, train_data: list[EncodedGraph],
            val_data: list[EncodedGraph] | None = None) -> list[dict]:
        self._cache_collate = True
        try:
            return self._fit(train_data, val_data)
        finally:
            self._cache_collate = False
            # nothing can hit these entries after fit — release the
            # collated val batches and the graph lists they pin
            self._batches.clear()

    def _fit(self, train_data: list[EncodedGraph],
             val_data: list[EncodedGraph] | None) -> list[dict]:
        cfg = self.config
        if val_data is not None:
            # every epoch's validation pass must fit in the collate
            # cache, or the LRU churns without a single hit
            needed = -(-len(val_data) // cfg.batch_size)
            self._batches.max_entries = max(self._batches.max_entries,
                                            needed)
        rng = np.random.default_rng(cfg.seed)
        labels = np.array([g.label for g in train_data])
        num_classes = self.model.config.num_classes
        weights = _class_weights(labels, num_classes) if cfg.class_weights else None
        steps_per_epoch = max(1, len(train_data) // cfg.batch_size)
        total_steps = cfg.epochs * steps_per_epoch
        warmup = int(total_steps * cfg.warmup_fraction)
        step = 0
        best_f1, best_state, patience_left = -1.0, None, cfg.early_stop_patience
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(train_data))
            self.model.train()
            epoch_loss, n_batches = 0.0, 0
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start: start + cfg.batch_size]
                batch = collate([train_data[i] for i in idx])
                self.opt.lr = cosine_schedule(step, total_steps, cfg.lr,
                                              warmup=warmup)
                self.opt.zero_grad()
                logits = self.model(batch)
                loss = F.cross_entropy(logits, batch.labels, weight=weights)
                loss.backward()
                clip_grad_norm(self.opt.params, cfg.grad_clip)
                self.opt.step()
                epoch_loss += loss.item()
                n_batches += 1
                step += 1
            record = {"epoch": epoch, "loss": epoch_loss / max(n_batches, 1)}
            if val_data is not None:
                record.update(
                    {f"val_{k}": v for k, v in self.evaluate(val_data).items()}
                )
                if cfg.early_stop_patience:
                    f1 = record["val_f1"]
                    if f1 > best_f1:
                        best_f1, best_state = f1, self.model.state_dict()
                        patience_left = cfg.early_stop_patience
                    else:
                        patience_left -= 1
                        if patience_left <= 0:
                            self.history.append(record)
                            break
            self.history.append(record)
            if cfg.verbose:
                print(record)
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history

    def predict(self, data: list[EncodedGraph],
                batch_size: int | None = None) -> np.ndarray:
        bs = batch_size or self.config.batch_size
        self.model.eval()
        preds: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(data), bs):
                batch = self._collate(data[start: start + bs])
                preds.append(F.predict_classes(self.model(batch)))
        return np.concatenate(preds) if preds else np.zeros(0, dtype=int)

    def evaluate(self, data: list[EncodedGraph]) -> dict:
        preds = self.predict(data)
        labels = np.array([g.label for g in data])
        return classification_metrics(preds, labels)


# ---------------------------------------------------------------------------
# Token trainer
# ---------------------------------------------------------------------------


class TokenTrainer:
    """Trains PragFormer on (ids, mask, labels) arrays.

    Like :class:`GraphTrainer`, the optimizer state is lazy so
    inference-only (bundle-loaded) trainers never allocate it.
    """

    def __init__(self, model, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self._opt: Adam | None = None
        self.history: list[dict] = []

    @property
    def opt(self) -> Adam:
        if self._opt is None:
            self._opt = Adam(self.model.parameters(), lr=self.config.lr,
                             weight_decay=self.config.weight_decay)
        return self._opt

    def fit(self, ids: np.ndarray, mask: np.ndarray, labels: np.ndarray,
            val: tuple | None = None) -> list[dict]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        num_classes = self.model.config.num_classes
        weights = _class_weights(labels, num_classes) if cfg.class_weights else None
        steps_per_epoch = max(1, len(labels) // cfg.batch_size)
        total_steps = cfg.epochs * steps_per_epoch
        warmup = int(total_steps * cfg.warmup_fraction)
        step = 0
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(labels))
            self.model.train()
            epoch_loss, n_batches = 0.0, 0
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start: start + cfg.batch_size]
                self.opt.lr = cosine_schedule(step, total_steps, cfg.lr,
                                              warmup=warmup)
                self.opt.zero_grad()
                logits = self.model(ids[idx], mask[idx])
                loss = F.cross_entropy(logits, labels[idx], weight=weights)
                loss.backward()
                clip_grad_norm(self.opt.params, cfg.grad_clip)
                self.opt.step()
                epoch_loss += loss.item()
                n_batches += 1
                step += 1
            record = {"epoch": epoch, "loss": epoch_loss / max(n_batches, 1)}
            if val is not None:
                v_ids, v_mask, v_labels = val
                record.update({
                    f"val_{k}": v
                    for k, v in self.evaluate(v_ids, v_mask, v_labels).items()
                })
            self.history.append(record)
            if cfg.verbose:
                print(record)
        return self.history

    def predict(self, ids: np.ndarray, mask: np.ndarray,
                batch_size: int | None = None) -> np.ndarray:
        bs = batch_size or self.config.batch_size
        self.model.eval()
        preds: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(ids), bs):
                logits = self.model(ids[start: start + bs],
                                    mask[start: start + bs])
                preds.append(F.predict_classes(logits))
        return np.concatenate(preds) if preds else np.zeros(0, dtype=int)

    def evaluate(self, ids: np.ndarray, mask: np.ndarray,
                 labels: np.ndarray) -> dict:
        preds = self.predict(ids, mask)
        return classification_metrics(preds, labels)
