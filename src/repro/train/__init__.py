"""Training loop, metrics, and experiment plumbing."""

from repro.train.metrics import (
    BinaryMetrics,
    classification_metrics,
    confusion_counts,
)
from repro.train.trainer import (
    GraphTrainer,
    TokenTrainer,
    TrainConfig,
    prepare_graph_data,
    prepare_token_data,
)

__all__ = [
    "BinaryMetrics",
    "confusion_counts",
    "classification_metrics",
    "TrainConfig",
    "GraphTrainer",
    "TokenTrainer",
    "prepare_graph_data",
    "prepare_token_data",
]
