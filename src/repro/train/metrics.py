"""Classification metrics in the exact form the paper's tables use."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BinaryMetrics:
    """TP/TN/FP/FN and derived scores for one binary task."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.tn + self.fp + self.fn
        return (self.tp + self.tn) / total if total else 0.0

    def as_row(self) -> dict:
        """Table-4 style row."""
        return {
            "TP": self.tp, "TN": self.tn, "FP": self.fp, "FN": self.fn,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "accuracy": round(self.accuracy, 4),
        }


def confusion_counts(preds: np.ndarray, labels: np.ndarray) -> BinaryMetrics:
    preds = np.asarray(preds).astype(int)
    labels = np.asarray(labels).astype(int)
    return BinaryMetrics(
        tp=int(((preds == 1) & (labels == 1)).sum()),
        tn=int(((preds == 0) & (labels == 0)).sum()),
        fp=int(((preds == 1) & (labels == 0)).sum()),
        fn=int(((preds == 0) & (labels == 1)).sum()),
    )


def classification_metrics(preds: np.ndarray, labels: np.ndarray) -> dict:
    """Macro-averaged P/R/F1 plus accuracy (Table 2/5 format).

    For binary tasks the paper reports macro averages of the per-class
    scores; this mirrors that so numbers are comparable.
    """
    preds = np.asarray(preds).astype(int)
    labels = np.asarray(labels).astype(int)
    classes = sorted(set(labels.tolist()) | set(preds.tolist()))
    per_class = []
    for c in classes:
        m = confusion_counts((preds == c).astype(int), (labels == c).astype(int))
        per_class.append((m.precision, m.recall, m.f1))
    p = float(np.mean([x[0] for x in per_class])) if per_class else 0.0
    r = float(np.mean([x[1] for x in per_class])) if per_class else 0.0
    f = float(np.mean([x[2] for x in per_class])) if per_class else 0.0
    acc = float((preds == labels).mean()) if labels.size else 0.0
    return {
        "precision": round(p, 4),
        "recall": round(r, 4),
        "f1": round(f, 4),
        "accuracy": round(acc, 4),
    }
