"""Dynamic verification of pragma rewrites.

A rewrite is only trustworthy if the transformed loop computes the same
thing the original did.  This module checks that *dynamically*: execute
the loop sequentially with :class:`repro.tools.interp.Interpreter` over
deterministic synthesized inputs, then re-execute it under *simulated
parallel schedules* — the iteration space enumerated up front (as
OpenMP fixes it at region entry), iterations run in permuted or blocked
order across simulated threads, every clause of the
:class:`~repro.rewrite.clauses.ClausePlan` honoured with per-thread
privatized copies (poison-initialized ``private``, entry-valued
``firstprivate``, identity-seeded ``reduction`` copies combined in
thread order, ``lastprivate`` taken from the logically last iteration).
Any observable difference in post-loop memory refuses the transform.

Refusal codes are stable strings shared with the engine and the wire:

- ``divergence`` — sequential and simulated-parallel executions
  disagree on observable state (or on the executed iteration count);
- ``unsupported-construct`` — the interpreter cannot execute the loop;
- ``budget-exceeded`` — the step budget ran out;
- ``non-canonical`` — the iteration space cannot be enumerated;
- ``no-iterations`` — every run executed zero iterations, so nothing
  was verified (a zero-trip loop proves nothing about the transform).

The whole procedure is a pure function of ``(loop, plan, config)``:
fixed seeds, seeded permutations, deterministic input synthesis — so
the daemon and the in-process path produce byte-identical verdicts.

**Fast path.**  Verification cost used to be ~7× the unverified
pipeline; three structural changes close most of that gap without
moving a single observable bit:

- loops execute through :func:`repro.tools.compile.compile_loop` —
  one lowering shared by the sequential reference and every simulated
  run — falling back to the tree-walker whenever compilation is
  unavailable (``config.compiled=False``, ``REPRO_NO_LOOP_COMPILE``,
  or an uncompilable shape);
- simulated-parallel runs only compare observable end-state, so they
  run the *trace-elided* compiled body (no per-access bookkeeping);
  the sequential reference keeps exact trip accounting, and
  :meth:`Interpreter.run_loop` still produces full traces for the
  dependence analyses;
- input synthesis and iteration-space enumeration happen once per
  seed; every run restores a :meth:`Memory.checkpoint` instead of
  re-preparing a fresh interpreter.

``verdict_key`` fingerprints ``(loop source, plan, config,
VERIFIER_VERSION)`` for the persistent verdict cache; bump
:data:`VERIFIER_VERSION` whenever verification semantics change so
stale verdicts self-invalidate.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, fields

from repro.cfront.nodes import Stmt
from repro.rewrite.clauses import ClausePlan
from repro.tools.canonical import recognize_canonical
from repro.tools.compile import CompileUnavailable, compile_loop
from repro.tools.interp import (
    ExecutionBudgetExceeded,
    Interpreter,
    UnsupportedConstruct,
    _ContinueSignal,
)

#: bumped whenever a change alters what (or how) verification computes;
#: part of every verdict-cache key, so stale entries miss
VERIFIER_VERSION = 2

#: reduction identity per operator (the value each thread copy starts
#: from; ``-=`` accumulates negated contributions under op ``+``, so
#: the additive identity is correct for it too)
_IDENTITY = {"+": 0, "*": 1, "&": -1, "|": 0, "^": 0}

_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class VerifyConfig:
    """Budgets and schedules of one verification run.

    Defaults are CI-safe: ~10 executions of a ≤10-iteration loop.  The
    array extent deliberately exceeds ``max_trip`` so the interpreter's
    index wrap-around cannot manufacture order dependences that the
    real (unbounded) loop does not have.

    ``compiled`` toggles the compiled fast path; verdicts are
    byte-identical either way (the parity suite enforces it), so it is
    excluded from the cache fingerprint.
    """

    seeds: tuple[int, ...] = (0, 1)
    schedules: tuple[str, ...] = ("permuted", "blocked")
    threads: tuple[int, ...] = (2, 4)
    array_extent: int = 16
    max_trip: int = 10
    max_steps: int = 60_000
    rel_tol: float = 1e-6
    abs_tol: float = 1e-9
    compiled: bool = True


@dataclass(frozen=True)
class Verdict:
    """The outcome of verifying one rewrite."""

    ok: bool
    code: str           # "verified" or a refusal code
    detail: str = ""

    def to_dict(self) -> dict:
        return {"ok": self.ok, "code": self.code, "detail": self.detail}


DEFAULT_CONFIG = VerifyConfig()


def config_fingerprint(config: VerifyConfig) -> str:
    """Deterministic fingerprint of every verdict-affecting knob.

    ``compiled`` is excluded: both execution paths produce identical
    verdicts, so they share cache entries.
    """
    return ";".join(
        f"{f.name}={getattr(config, f.name)!r}"
        for f in fields(config) if f.name != "compiled")


def verdict_key(loop_source: str, plan: ClausePlan,
                config: VerifyConfig) -> str:
    """Content key of one verification outcome, for the persistent
    verdict cache: loop structure (its unparsed source), the complete
    clause plan, the config fingerprint and the verifier version."""
    blob = "\n".join([
        f"verifier-v{VERIFIER_VERSION}",
        loop_source,
        repr(plan),                     # sorted tuples: deterministic
        config_fingerprint(config),
    ])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def revive_verdict(payload: object) -> Verdict | None:
    """Rebuild a cached verdict; ``None`` (a cache miss) on anything
    malformed — a torn or stale entry must never decide a rewrite."""
    if not isinstance(payload, dict):
        return None
    ok, code = payload.get("ok"), payload.get("code")
    detail = payload.get("detail", "")
    if not isinstance(ok, bool) or not isinstance(code, str) \
            or not isinstance(detail, str):
        return None
    return Verdict(ok, code, detail)


def _bump(stats: dict | None, key: str, n: int = 1) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + n


def _interp(config: VerifyConfig, seed: int) -> Interpreter:
    return Interpreter(max_steps=config.max_steps,
                       array_extent=config.array_extent,
                       max_trip=config.max_trip, seed=seed)


def _snapshot(memory, exclude: frozenset[str]) -> dict[str, list]:
    """Observable post-loop memory: every cell of every non-excluded
    variable, in allocation layout order."""
    out: dict[str, list] = {}
    for name, (base, shape) in memory.bases.items():
        if name in exclude:
            continue
        count = 1
        for dim in shape:
            count *= dim
        out[name] = [memory.cells[base + off].value
                     for off in range(max(count, 1))]
    return out


def _values_close(a, b, config: VerifyConfig) -> bool:
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=config.rel_tol,
                            abs_tol=config.abs_tol)
    return a == b


def _first_divergence(ref: dict, got: dict,
                      config: VerifyConfig) -> str | None:
    """Human-readable description of the first mismatch, or ``None``."""
    for name in sorted(set(ref) | set(got)):
        if name not in ref or name not in got:
            return f"variable {name!r} exists in only one execution"
        rv, gv = ref[name], got[name]
        if len(rv) != len(gv):
            return f"{name}: shape mismatch ({len(rv)} vs {len(gv)} cells)"
        for off, (x, y) in enumerate(zip(rv, gv)):
            if not _values_close(x, y, config):
                where = f"{name}[{off}]" if len(rv) > 1 else name
                return f"{where}: sequential {x!r} vs parallel {y!r}"
    return None


def _iteration_order(n: int, schedule: str, nthreads: int,
                     seed: int) -> tuple[list[int], list[int]]:
    """``(execution order, thread of each iteration)`` for a schedule.

    ``permuted`` runs a seeded shuffle of the whole iteration space
    with cyclic thread assignment; ``blocked`` mimics a static
    schedule — contiguous per-thread chunks executed round-robin
    across threads, so chunk-boundary neighbours run far apart in
    time.  Both are pure functions of their arguments.
    """
    if schedule == "permuted":
        import numpy as np

        rng = np.random.default_rng(1_000_003 * seed + 101 * nthreads + 17)
        order = [int(k) for k in rng.permutation(n)]
        thread_of = [k % nthreads for k in range(n)]
        return order, thread_of
    if schedule == "blocked":
        chunk = max(1, -(-n // nthreads))      # ceil division
        thread_of = [min(k // chunk, nthreads - 1) for k in range(n)]
        order = [b * chunk + j
                 for j in range(chunk)
                 for b in range(nthreads)
                 if b * chunk + j < n]
        return order, thread_of
    raise ValueError(f"unknown schedule {schedule!r}")


def _enumerate_iterations(interp: Interpreter, loop, canonical,
                          config: VerifyConfig) -> list:
    """The induction-variable values OpenMP would fix at region entry.

    Executes the loop's init clause, reads the induction variable,
    evaluates the bound and step *once*, and walks the iteration space
    — capped at ``max_trip`` exactly like the interpreter's sequential
    trace, so both executions see the same trip count.
    """
    if loop.init is not None:
        interp.exec_stmt(loop.init)
    if canonical.var not in interp.memory.bases:
        interp.memory.allocate(canonical.var)
    lower = interp.memory.read(interp.memory.address_of(canonical.var))
    upper = interp.eval(canonical.upper)
    step = canonical.step
    if step == 0:
        if canonical.step_expr is None:
            raise UnsupportedConstruct("loop step is unrecognisable")
        step = interp.eval(canonical.step_expr)
        if not isinstance(step, (int, float)) or step == 0:
            raise UnsupportedConstruct(f"loop step evaluates to {step!r}")
        ascending = canonical.cmp_op in ("<", "<=")
        if (step > 0) != ascending:
            raise UnsupportedConstruct("loop step diverges from its bound")
    cmp = _CMP[canonical.cmp_op]
    values = []
    v = lower
    while cmp(v, upper) and len(values) < config.max_trip:
        values.append(v)
        v += step
    return values, step


def _poison(thread: int) -> float:
    """Deterministic garbage a ``private`` copy starts from: if the
    body ever reads it before writing (a misclassification), the value
    flows into observable state and the divergence check refuses."""
    return -10_000_007.0 - 7.0 * thread


def _run_reference(interp: Interpreter, loop, compiled,
                   stats: dict | None) -> int:
    """The sequential reference over an already-prepared interpreter;
    returns the executed trip count.  Uses the trace-elided compiled
    run when available (end-state and step accounting are identical;
    nothing reads the reference trace here)."""
    if compiled is not None:
        try:
            trips = compiled.run(interp, traced=False)
            _bump(stats, "compiled_runs")
            return trips
        except CompileUnavailable:
            pass
    _bump(stats, "interpreted_runs")
    interp._target_loop = loop
    interp._exec_loop(loop, traced=True)
    return interp.trace.iterations


def _simulate(interp: Interpreter, loop, plan: ClausePlan, canonical,
              values: list, step, seed: int, schedule: str,
              nthreads: int, config: VerifyConfig, compiled,
              stats: dict | None) -> tuple[dict, int]:
    """One simulated-parallel execution → (observable snapshot, trips).

    ``interp`` arrives restored to the post-enumeration checkpoint, so
    this runs exactly what a fresh prepare-and-enumerate would."""
    _bump(stats, "simulations")
    mem = interp.memory

    def addr(name: str) -> int:
        if name not in mem.bases:
            mem.allocate(name)
        return mem.address_of(name)

    var_addr = addr(canonical.var)
    lower = mem.read(var_addr)
    local = set(plan.local_decls)
    priv_names = ((set(plan.private) | set(plan.firstprivate)
                   | set(plan.lastprivate) | set(plan.reduction_vars)
                   | set(plan.inner_vars) | {canonical.var}) - local)
    addrs = {name: addr(name) for name in priv_names}
    entry = {name: mem.read(a) for name, a in addrs.items()}

    # per-thread privatized copies
    state: list[dict] = []
    reduction_ops = dict((var, op) for op, var in plan.reductions)
    for t in range(nthreads):
        copies = {}
        for name in priv_names:
            if name in plan.firstprivate:
                copies[name] = entry[name]
            elif name in reduction_ops:
                copies[name] = _IDENTITY[reduction_ops[name]]
            else:
                copies[name] = _poison(t)
        state.append(copies)

    order, thread_of = _iteration_order(len(values), schedule,
                                        nthreads, seed)
    last_idx = len(values) - 1
    last_vals: dict[str, object] = {}
    lastprivate = [n for n in plan.lastprivate if n != canonical.var]
    # the trace-elided fast path: one compiled body execution per
    # iteration, no per-access bookkeeping (only end-state is compared)
    run_body = compiled.run_body if compiled is not None else None
    for k in order:
        t = thread_of[k]
        for name, a in addrs.items():
            mem.write(a, state[t][name])
        mem.write(var_addr, values[k])
        if run_body is not None:
            try:
                run_body(interp)
            except CompileUnavailable:
                run_body = None     # state untouched; same iteration
        if run_body is None:
            try:
                interp.exec_stmt(loop.body)
            except _ContinueSignal:
                pass
        if k == last_idx and lastprivate:
            last_vals = {name: mem.read(addrs[name])
                         for name in lastprivate}
        for name, a in addrs.items():
            state[t][name] = mem.read(a)
    _bump(stats,
          "compiled_runs" if run_body is not None else "interpreted_runs")

    # region exit: originals restored, reductions combined in thread
    # order, lastprivate values from the logically last iteration
    for name, a in addrs.items():
        mem.write(a, entry[name])
    for var, op in reduction_ops.items():
        total = entry[var]
        for t in range(nthreads):
            total = Interpreter._apply(op, total, state[t][var])
        mem.write(addrs[var], total)
    for name, value in last_vals.items():
        mem.write(addrs[name], value)
    if values and canonical.var in plan.lastprivate:
        # matches the sequential loop's exit value: one increment per
        # executed iteration (the trip cap breaks after the increment)
        mem.write(var_addr, lower + len(values) * step)
    exclude = _observable_exclusions(plan, canonical.var)
    return _snapshot(mem, exclude), len(values)


def _observable_exclusions(plan: ClausePlan, var: str) -> frozenset[str]:
    """Variables whose post-loop value is not observable.

    ``private`` copies and inner induction variables are dead after
    the region (liveness put everything live-out in ``lastprivate``),
    block-scoped declarations are out of scope, and the induction
    variable is implicitly private — observable only when the plan
    carries it as ``lastprivate``.
    """
    exclude = (set(plan.private) | set(plan.inner_vars)
               | set(plan.local_decls))
    if var not in plan.lastprivate:
        exclude.add(var)
    return frozenset(exclude)


def verify_loop(loop: Stmt, plan: ClausePlan,
                config: VerifyConfig | None = None,
                stats: dict | None = None) -> Verdict:
    """Differentially verify one planned rewrite.

    Runs the loop sequentially and under every configured
    ``(seed, schedule, thread-count)`` simulated-parallel combination,
    comparing observable post-loop memory.  Returns a
    :class:`Verdict` — never raises for interpreter-level failures;
    those become stable refusal codes.

    ``stats`` (optional) accumulates fast-path counters in place:
    ``simulations``, ``compiled_runs``, ``interpreted_runs``.
    """
    config = config or DEFAULT_CONFIG
    canonical = recognize_canonical(loop)
    if canonical is None:
        return Verdict(False, "non-canonical",
                       "cannot enumerate the iteration space of a "
                       "non-canonical loop")
    compiled = compile_loop(loop) if config.compiled else None
    exclude = _observable_exclusions(plan, canonical.var)
    total_trips = 0
    runs = 0
    for seed in config.seeds:
        interp = _interp(config, seed)
        try:
            interp.prepare(loop)
            prepared = interp.memory.checkpoint()
            ref_iterations = _run_reference(interp, loop, compiled, stats)
            ref = _snapshot(interp.memory, exclude)
            interp.memory.restore(prepared)
            interp.steps = 0
            values, step = _enumerate_iterations(interp, loop,
                                                 canonical, config)
        except UnsupportedConstruct as exc:
            return Verdict(False, "unsupported-construct", str(exc))
        except ExecutionBudgetExceeded as exc:
            return Verdict(False, "budget-exceeded", str(exc))
        enumerated = interp.memory.checkpoint()
        enumerated_steps = interp.steps
        first = True
        for schedule in config.schedules:
            for nthreads in config.threads:
                if not first:
                    interp.memory.restore(enumerated)
                    interp.steps = enumerated_steps
                first = False
                try:
                    got, trips = _simulate(interp, loop, plan,
                                           canonical, values, step,
                                           seed, schedule, nthreads,
                                           config, compiled, stats)
                except UnsupportedConstruct as exc:
                    return Verdict(False, "unsupported-construct",
                                   str(exc))
                except ExecutionBudgetExceeded as exc:
                    return Verdict(False, "budget-exceeded", str(exc))
                runs += 1
                total_trips += trips
                if trips != ref_iterations:
                    return Verdict(
                        False, "divergence",
                        f"sequential execution ran "
                        f"{ref_iterations} iterations but the "
                        f"enumerated schedule has {trips} (seed "
                        f"{seed}): the iteration space is not fixed "
                        f"at region entry")
                diff = _first_divergence(ref, got, config)
                if diff is not None:
                    return Verdict(
                        False, "divergence",
                        f"{diff} ({schedule} schedule, {nthreads} "
                        f"threads, seed {seed})")
    if total_trips == 0:
        return Verdict(False, "no-iterations",
                       "every run executed zero iterations; nothing "
                       "was verified")
    return Verdict(True, "verified",
                   f"{runs} simulated-parallel executions matched the "
                   f"sequential reference")
