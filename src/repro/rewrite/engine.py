"""The rewrite pass: suggestions in, verified transformed C out.

:func:`rewrite_file` consumes one file's :class:`FileSuggestions` (from
any serving path — in-process, sharded, daemon), re-parses the file,
aligns every suggestion with its outermost loop (the same
function-by-function walk :func:`repro.suggest.file_requests` uses),
and for each predicted-parallel loop: synthesizes the clause plan
(:mod:`repro.rewrite.clauses`), verifies it against the interpreter
(:mod:`repro.rewrite.verify`), and — only on acceptance — attaches the
pragma to the AST.  The result carries per-loop outcomes plus the
whole transformed file unparsed as round-trippable C.

Every outcome has a stable ``code``:

===================== =====================================================
``verified``          accepted; sequential and simulated-parallel agree
``unverified``        accepted without verification (``verify=False``)
``not-parallel``      the model kept the loop sequential (not a refusal)
``unparseable``       the snippet does not parse (bare-loop path)
``misaligned``        suggestions do not line up with the file's loops
``non-canonical``     no enumerable iteration space
``shared-scalar``     a scalar write no clause can legalise
``divergence``        observable state differs across schedules
``unsupported-construct`` the interpreter cannot execute the loop
``budget-exceeded``   the execution budget ran out
``no-iterations``     zero-trip runs verified nothing
===================== =====================================================

The pass is deterministic end to end (fixed seeds, sorted clause
lists), so daemon-served rewrites are byte-identical to in-process
ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cfg.analysis import scalars_read_after
from repro.cfront import LexError, ParseError, parse_source, unparse
from repro.cfront.parser import parse_loop
from repro.dataset.extract import _outermost_loops
from repro.rewrite.clauses import PlanError, plan_clauses
from repro.rewrite.verify import (
    DEFAULT_CONFIG,
    VerifyConfig,
    revive_verdict,
    verdict_key,
    verify_loop,
)

#: codes of accepted rewrites
ACCEPT_CODES = ("verified", "unverified")
#: stable refusal codes (shared with the verifier and the wire)
REFUSAL_CODES = ("not-parallel", "unparseable", "misaligned",
                 "non-canonical", "shared-scalar", "divergence",
                 "unsupported-construct", "budget-exceeded",
                 "no-iterations")


@dataclass
class LoopRewrite:
    """The outcome of rewriting one loop."""

    loop_source: str
    accepted: bool
    code: str
    pragma: str | None = None
    rewritten: str | None = None      # pragma + loop, round-trippable C
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "loop_source": self.loop_source,
            "accepted": self.accepted,
            "code": self.code,
            "pragma": self.pragma,
            "rewritten": self.rewritten,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopRewrite":
        return cls(
            loop_source=data["loop_source"],
            accepted=bool(data["accepted"]),
            code=data["code"],
            pragma=data.get("pragma"),
            rewritten=data.get("rewritten"),
            detail=data.get("detail", ""),
        )


@dataclass
class FileRewrite:
    """All rewrite outcomes for one file (or its frontend error)."""

    name: str
    rewrites: list[LoopRewrite] = field(default_factory=list)
    rewritten_source: str | None = None
    error: str | None = None
    #: per-file verifier counters (simulations, compiled vs interpreted
    #: runs, cached verdicts, elapsed seconds) — local observability
    #: only: excluded from equality and from the wire payload, so the
    #: byte-identity contracts with PR 7 outputs hold
    verifier: dict | None = field(default=None, compare=False,
                                  repr=False)

    @property
    def n_accepted(self) -> int:
        return sum(r.accepted for r in self.rewrites)

    @property
    def n_refused(self) -> int:
        return sum(not r.accepted and r.code != "not-parallel"
                   for r in self.rewrites)

    def to_payload(self) -> dict:
        """JSON-safe payload (minus the name, matching the
        :class:`~repro.serve.pipeline.FileSuggestions` convention)."""
        return {
            "error": self.error,
            "rewritten_source": self.rewritten_source,
            "rewrites": [r.to_dict() for r in self.rewrites],
        }

    @classmethod
    def from_payload(cls, name: str, payload: dict) -> "FileRewrite":
        return cls(
            name=name,
            rewrites=[LoopRewrite.from_dict(d)
                      for d in payload["rewrites"]],
            rewritten_source=payload["rewritten_source"],
            error=payload["error"],
        )


def _strip_unparse(loop) -> str:
    """The loop's source without its pragmas — the form suggestions
    (and the dataset extractor) describe loops in."""
    saved = loop.pragmas
    loop.pragmas = []
    try:
        return unparse(loop)
    finally:
        loop.pragmas = saved


def _verdict_for(loop, loop_source: str, plan, config, store,
                 stats: dict | None):
    """The verdict for one planned loop: persistent cache first (keyed
    by loop source, plan, config fingerprint and verifier version),
    simulation only on a miss.  ``store`` is duck-typed — anything with
    ``get_verdict``/``put_verdict`` (the serve layer's
    ``SuggestionStore``) or ``None``."""
    key = None
    if store is not None and hasattr(store, "get_verdict"):
        key = verdict_key(loop_source, plan, config or DEFAULT_CONFIG)
        verdict = revive_verdict(store.get_verdict(key))
        if verdict is not None:
            if stats is not None:
                stats["cached_verdicts"] = \
                    stats.get("cached_verdicts", 0) + 1
            return verdict
    verdict = verify_loop(loop, plan, config, stats=stats)
    if key is not None:
        store.put_verdict(key, verdict.to_dict())
    return verdict


def _attempt(loop, loop_source: str, live_out: frozenset[str],
             verify: bool, config: VerifyConfig | None,
             store=None, stats: dict | None = None) -> LoopRewrite:
    """Plan, verify, and (on acceptance) attach the pragma to ``loop``."""
    t0 = time.perf_counter()
    try:
        plan = plan_clauses(loop, live_out)
    except PlanError as exc:
        return LoopRewrite(loop_source=loop_source, accepted=False,
                           code=exc.code, detail=exc.detail)
    if verify:
        verdict = _verdict_for(loop, loop_source, plan, config, store,
                               stats)
        if stats is not None:
            stats["elapsed_s"] = (stats.get("elapsed_s", 0.0)
                                  + time.perf_counter() - t0)
        if not verdict.ok:
            return LoopRewrite(loop_source=loop_source, accepted=False,
                               code=verdict.code, detail=verdict.detail)
        code, detail = "verified", verdict.detail
    else:
        code, detail = "unverified", "verification disabled"
    pragma = plan.pragma()
    # replace any pre-existing pragma: the rewrite owns this loop now
    loop.pragmas = [pragma.lstrip("#")]
    return LoopRewrite(loop_source=loop_source, accepted=True, code=code,
                       pragma=pragma, rewritten=unparse(loop),
                       detail=detail)


def rewrite_loop(loop_source: str,
                 live_out: frozenset[str] = frozenset(), *,
                 verify: bool = True,
                 config: VerifyConfig | None = None,
                 store=None, stats: dict | None = None) -> LoopRewrite:
    """Rewrite one bare loop snippet (no model in the loop: the caller
    asserts parallel intent; analysis and the verifier gate it)."""
    try:
        loop = parse_loop(loop_source)
    except (LexError, ParseError) as exc:
        return LoopRewrite(loop_source=loop_source, accepted=False,
                           code="unparseable", detail=str(exc))
    loop.pragmas = []
    return _attempt(loop, loop_source, frozenset(live_out),
                    verify=verify, config=config, store=store,
                    stats=stats)


def rewrite_file(name: str, source: str, file_suggestions, *,
                 verify: bool = True,
                 config: VerifyConfig | None = None,
                 store=None, stats: dict | None = None) -> FileRewrite:
    """Apply one file's suggestions as verified AST rewrites.

    ``file_suggestions`` is a
    :class:`~repro.serve.pipeline.FileSuggestions` (or anything with
    ``suggestions`` / ``error``).  Suggestions align with the file's
    outermost loops in extraction order; a mismatch refuses with
    ``misaligned`` rather than guessing.  The returned
    ``rewritten_source`` is the whole file with accepted pragmas
    attached — refused and sequential loops keep their original text.

    ``store`` (optional, duck-typed) serves cached verdicts; ``stats``
    (optional dict) accumulates the verifier counters also attached to
    the result as ``FileRewrite.verifier``.
    """
    error = getattr(file_suggestions, "error", None)
    suggestions = getattr(file_suggestions, "suggestions",
                          file_suggestions)
    if error is not None:
        return FileRewrite(name=name, error=error)
    try:
        tu = parse_source(source)
    except (LexError, ParseError) as exc:
        return FileRewrite(name=name, error=str(exc))
    located: list[tuple[object, object]] = []      # (function, loop)
    for fn in tu.functions():
        if fn.body is None:
            continue
        for loop in _outermost_loops(fn.body):
            located.append((fn, loop))
    if len(located) != len(suggestions):
        detail = (f"file has {len(located)} outermost loops but "
                  f"{len(suggestions)} suggestions")
        return FileRewrite(
            name=name,
            rewrites=[LoopRewrite(loop_source=s.loop_source,
                                  accepted=False, code="misaligned",
                                  detail=detail)
                      for s in suggestions],
            rewritten_source=unparse(tu),
        )
    fstats = {"simulations": 0, "compiled_runs": 0,
              "interpreted_runs": 0, "cached_verdicts": 0,
              "elapsed_s": 0.0}
    rewrites: list[LoopRewrite] = []
    for (fn, loop), suggestion in zip(located, suggestions):
        if not suggestion.parallel:
            rewrites.append(LoopRewrite(
                loop_source=suggestion.loop_source, accepted=False,
                code="not-parallel", detail=suggestion.rationale))
            continue
        if _strip_unparse(loop) != suggestion.loop_source:
            rewrites.append(LoopRewrite(
                loop_source=suggestion.loop_source, accepted=False,
                code="misaligned",
                detail="suggestion does not describe the loop at this "
                       "position"))
            continue
        live_out = frozenset(scalars_read_after(fn.body, loop))
        rewrites.append(_attempt(loop, suggestion.loop_source, live_out,
                                 verify=verify, config=config,
                                 store=store, stats=fstats))
    if stats is not None:
        for key, value in fstats.items():
            stats[key] = stats.get(key, 0) + value
    return FileRewrite(name=name, rewrites=rewrites,
                       rewritten_source=unparse(tu), verifier=fstats)
