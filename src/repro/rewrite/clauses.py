"""Clause synthesis for pragma rewriting.

The serving stack predicts *clause families* ("this loop wants a
reduction"); the rewriter needs *clause lists* ("``reduction(+:total)
firstprivate(alpha)``").  :func:`plan_clauses` grounds a loop in the
static analyses — :func:`repro.tools.deps.analyze_loop` for the scalar
classification, :func:`repro.tools.canonical.recognize_canonical` for
the iteration space — and emits a :class:`ClausePlan`: the complete,
deterministic data-sharing story the verifier simulates and the pragma
renders.

Synthesis is refused (``PlanError``) when no legal clause list exists:

- ``non-canonical`` — not a canonical ``for`` loop (OpenMP worksharing
  requires one, and the verifier could not enumerate iterations);
- ``shared-scalar`` — a scalar is written in a way that is neither a
  recognised reduction nor privatizable; every iteration order would
  race on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfront.nodes import Stmt
from repro.tools.canonical import CanonicalLoop, recognize_canonical
from repro.tools.deps import LoopDeps, _inner_loop_vars, analyze_loop


class PlanError(Exception):
    """No legal clause list exists for this loop.

    ``code`` is a stable refusal code (``non-canonical`` /
    ``shared-scalar``) that flows unchanged to CLI output and the wire.
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class ClausePlan:
    """The complete data-sharing plan for one ``parallel for`` rewrite.

    Every list is sorted and deduplicated, so two parses of the same
    loop produce byte-identical pragmas.  ``local_decls`` and
    ``inner_vars`` are not clauses (block-scoped declarations are
    implicitly private; inner induction variables land in ``private``)
    but the verifier needs them to decide what is observable after the
    region.
    """

    var: str                                   # induction variable
    reductions: tuple[tuple[str, str], ...]    # (op, var) pairs
    private: tuple[str, ...]
    firstprivate: tuple[str, ...]
    lastprivate: tuple[str, ...]
    local_decls: tuple[str, ...]
    inner_vars: tuple[str, ...]

    def clauses(self) -> list[str]:
        """The rendered clause list, in canonical order."""
        out: list[str] = []
        by_op: dict[str, list[str]] = {}
        for op, var in self.reductions:
            by_op.setdefault(op, []).append(var)
        for op in sorted(by_op):
            out.append(f"reduction({op}:{', '.join(sorted(by_op[op]))})")
        if self.private:
            out.append(f"private({', '.join(self.private)})")
        if self.firstprivate:
            out.append(f"firstprivate({', '.join(self.firstprivate)})")
        if self.lastprivate:
            out.append(f"lastprivate({', '.join(self.lastprivate)})")
        return out

    def pragma(self) -> str:
        """The full ``#pragma omp parallel for ...`` line."""
        parts = ["#pragma omp parallel for"] + self.clauses()
        return " ".join(parts)

    @property
    def reduction_vars(self) -> tuple[str, ...]:
        return tuple(var for _, var in self.reductions)


def plan_clauses(loop: Stmt, live_out: frozenset[str] = frozenset(),
                 deps: LoopDeps | None = None) -> ClausePlan:
    """Synthesize the clause plan for one loop, or raise :class:`PlanError`.

    ``live_out`` lists scalars read after the loop in its enclosing
    function: privatizable scalars in that set become ``lastprivate``
    (plain privatization would drop their final value), and a live-out
    induction variable — implicitly private under OpenMP, its original
    unspecified after the region — must be ``lastprivate`` too.

    ``deps`` may carry a precomputed analysis (it is memoized anyway);
    conditional reductions are accepted, matching the suggester's
    idealised-oracle composition path.
    """
    if deps is None:
        deps = analyze_loop(loop, conditional_reductions=True)
    canonical: CanonicalLoop | None = deps.canonical
    if canonical is None:
        # the memoized deps must stay read-only, but canonical caches the
        # analyzed loop object; recompute for the exact statement given
        canonical = recognize_canonical(loop)
    if canonical is None:
        raise PlanError("non-canonical",
                        "loop is not in canonical form "
                        "(for (i = lb; i < ub; i += step) with an "
                        "unmodified induction variable)")
    if deps.shared_scalar_writes:
        shared = ", ".join(sorted(deps.shared_scalar_writes))
        raise PlanError("shared-scalar",
                        f"scalar write(s) to {shared} are neither a "
                        f"reduction nor privatizable")

    body = getattr(loop, "body", loop)
    local_decls = frozenset(deps.summary.local_decls)
    inner_vars = frozenset(_inner_loop_vars(body)) - {canonical.var}
    reduction_vars = {r.var for r in deps.reductions}

    # Privatizable scalars declared outside the loop; inner induction
    # variables reusing outer declarations must be privatized too.
    privatizable = (deps.privatizable - local_decls) | (inner_vars
                                                       - local_decls)
    lastprivate = sorted(privatizable & live_out)
    private = sorted(privatizable - live_out)
    if canonical.var in live_out:
        lastprivate = sorted(set(lastprivate) | {canonical.var})

    # Read-only scalars referenced in the body: every access is a
    # scalar read — array bases, written names and anything already
    # claimed by another clause are excluded.
    claimed = (set(private) | set(lastprivate) | reduction_vars
               | local_decls | inner_vars | {canonical.var})
    firstprivate = sorted(
        name for name in deps.summary.bases()
        if name not in claimed
        and all(a.is_scalar and not a.is_write
                for a in deps.summary.accesses if a.base == name)
    )
    return ClausePlan(
        var=canonical.var,
        reductions=tuple(sorted((r.op, r.var) for r in deps.reductions)),
        private=tuple(private),
        firstprivate=tuple(firstprivate),
        lastprivate=tuple(lastprivate),
        local_decls=tuple(sorted(local_decls)),
        inner_vars=tuple(sorted(inner_vars)),
    )
