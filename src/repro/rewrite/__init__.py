"""From advice to transformation: verified OpenMP pragma rewriting.

``repro.rewrite`` turns the serving stack's :class:`~repro.suggest.Suggestion`s
into applied source-to-source transforms.  :mod:`clauses` grounds each
predicted-parallel loop in the dependence analyses and synthesizes the
complete clause list; :mod:`verify` differentially executes the loop —
sequentially and under simulated-parallel schedules with per-thread
privatized state — and refuses on any observable divergence; and
:mod:`engine` applies accepted pragmas to the AST and unparses
round-trippable C.
"""

from repro.rewrite.clauses import ClausePlan, PlanError, plan_clauses
from repro.rewrite.engine import (
    ACCEPT_CODES,
    REFUSAL_CODES,
    FileRewrite,
    LoopRewrite,
    rewrite_file,
    rewrite_loop,
)
from repro.rewrite.verify import (
    DEFAULT_CONFIG,
    VERIFIER_VERSION,
    Verdict,
    VerifyConfig,
    verdict_key,
    verify_loop,
)

__all__ = [
    "ACCEPT_CODES",
    "REFUSAL_CODES",
    "VERIFIER_VERSION",
    "ClausePlan",
    "DEFAULT_CONFIG",
    "FileRewrite",
    "LoopRewrite",
    "PlanError",
    "Verdict",
    "VerifyConfig",
    "plan_clauses",
    "rewrite_file",
    "rewrite_loop",
    "verdict_key",
    "verify_loop",
]
