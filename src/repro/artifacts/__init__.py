"""Persistent trained-model artifacts.

The paper's §6.4 deployment story assumes a *trained* model advising
developers; this package makes that real by persisting suggesters as
versioned on-disk bundles instead of retraining per invocation:

- :func:`save_trained` / :func:`load_trained` round-trip one trained
  model (any family: HGT/Graph2Par, RGCN, GCN, PragFormer) together
  with its config, train config and vocabulary,
- :class:`SuggesterBundle` captures a whole suggester — the parallel
  model plus every clause-family model and their shared vocabulary —
  in one directory that ``repro train --bundle-out`` writes and
  ``repro suggest-dir --bundle`` serves with zero training steps.

Every artifact records a format version and the SHA-256 of its
vocabulary; loading a bundle whose version or vocab hash disagrees
fails loudly rather than predicting garbage.
"""

from repro.artifacts.model_io import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    family_of,
    load_trained,
    save_trained,
)
from repro.artifacts.bundle import (
    BundleError,
    SuggesterBundle,
    pack_bundle,
    unpack_bundle,
)
from repro.artifacts.registry import (
    BundleRegistry,
    archive_sha256,
    bundle_name_from_path,
    parse_bundle_spec,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "BundleError",
    "BundleRegistry",
    "SuggesterBundle",
    "archive_sha256",
    "bundle_name_from_path",
    "family_of",
    "load_trained",
    "pack_bundle",
    "parse_bundle_spec",
    "save_trained",
    "unpack_bundle",
]
