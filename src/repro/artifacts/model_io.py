"""Single-model artifact (de)serialization.

One trained model persists as a directory:

``model.json``
    format version, model family, task, architecture config, train
    config, and the SHA-256 of the vocabulary it was trained with.
``weights.npz``
    the parameter state dict (strictly checked on load).
``vocab.json``
    the vocabulary, unless the caller shares one externally (the
    bundle layout stores a single vocab for all its models).

Loading reconstructs the exact architecture from the recorded family +
config, verifies the vocabulary hash, and strict-loads the weights, so
``save → load → predict`` is byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.graphs.vocab import GraphVocab, Vocab
from repro.models import (
    GCNBaseline,
    GCNConfig,
    Graph2Par,
    Graph2ParConfig,
    PragFormer,
    PragFormerConfig,
    RGCNBaseline,
    RGCNConfig,
)
from repro.nn.serialize import load_state, save_state

#: bump when the on-disk layout changes incompatibly
ARTIFACT_FORMAT_VERSION = 1

#: family name → (model class, config class) for graph models
GRAPH_FAMILIES = {
    "graph2par": (Graph2Par, Graph2ParConfig),
    "gcn": (GCNBaseline, GCNConfig),
    "rgcn": (RGCNBaseline, RGCNConfig),
}

#: family name → (model class, config class) for token models
TOKEN_FAMILIES = {
    "pragformer": (PragFormer, PragFormerConfig),
}


class ArtifactError(RuntimeError):
    """An artifact directory is missing, incompatible, or inconsistent."""


def family_of(model) -> str:
    """The registry name of a model instance's exact class."""
    for registry in (GRAPH_FAMILIES, TOKEN_FAMILIES):
        for name, (cls, _) in registry.items():
            if type(model) is cls:
                return name
    raise ArtifactError(
        f"model class {type(model).__qualname__} has no artifact family; "
        f"known: {sorted(GRAPH_FAMILIES) + sorted(TOKEN_FAMILIES)}"
    )


def _write_json(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def _read_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ArtifactError(f"not a model artifact: missing {path}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt artifact metadata {path}: {exc}") from exc


def _check_version(meta: dict, path: Path) -> None:
    version = meta.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"{path} has format version {version!r}; this build reads "
            f"version {ARTIFACT_FORMAT_VERSION}. Re-save the artifact "
            f"with the current code."
        )


def save_trained(trained, directory: str | Path, *,
                 include_vocab: bool = True) -> Path:
    """Persist a trained model wrapper to ``directory``.

    ``trained`` is a :class:`~repro.eval.context.TrainedGraphModel` or
    :class:`~repro.eval.context.TrainedTokenModel`.  With
    ``include_vocab=False`` only the vocab hash is recorded and the
    caller owns vocabulary storage (the bundle layout).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    model = trained.trainer.model
    family = family_of(model)
    kind = "token" if family in TOKEN_FAMILIES else "graph"
    meta = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "family": family,
        "kind": kind,
        "task": trained.task,
        "config": asdict(model.config),
        "train_config": asdict(trained.trainer.config),
        "vocab_sha256": trained.vocab.content_hash(),
    }
    if kind == "graph":
        meta["representation"] = trained.representation
    else:
        meta["max_len"] = trained.max_len
    save_state(model, directory / "weights.npz")
    if include_vocab:
        _write_json(directory / "vocab.json", trained.vocab.to_dict())
    _write_json(directory / "model.json", meta)
    return directory


def load_trained(directory: str | Path, vocab=None):
    """Load a model saved by :func:`save_trained`, ready to predict.

    ``vocab`` supplies an externally stored vocabulary (bundle layout);
    its content hash must match the one recorded at save time —
    weights gathered against one vocabulary are meaningless under
    another, so a mismatch raises :class:`ArtifactError`.
    """
    from repro.eval.context import TrainedGraphModel, TrainedTokenModel
    from repro.train import GraphTrainer, TokenTrainer, TrainConfig

    directory = Path(directory)
    meta = _read_json(directory / "model.json")
    _check_version(meta, directory / "model.json")
    kind = meta.get("kind")
    if vocab is None:
        vocab_data = _read_json(directory / "vocab.json")
        if kind == "graph":
            vocab = GraphVocab(
                types=Vocab.from_dict(vocab_data["types"]),
                texts=Vocab.from_dict(vocab_data["texts"]),
            )
        else:
            vocab = Vocab.from_dict(vocab_data)
    recorded = meta.get("vocab_sha256")
    if vocab.content_hash() != recorded:
        raise ArtifactError(
            f"vocabulary mismatch for {directory}: the weights were "
            f"saved against vocab {str(recorded)[:12]}… but the provided "
            f"vocabulary hashes to {vocab.content_hash()[:12]}…"
        )
    family = meta.get("family")
    registry = TOKEN_FAMILIES if kind == "token" else GRAPH_FAMILIES
    if family not in registry:
        raise ArtifactError(
            f"unknown model family {family!r} in {directory}; "
            f"known: {sorted(registry)}"
        )
    model_cls, config_cls = registry[family]
    model = model_cls(vocab, config_cls(**meta["config"]))
    load_state(model, directory / "weights.npz")
    train_config = TrainConfig(**meta["train_config"])
    if kind == "token":
        return TrainedTokenModel(
            trainer=TokenTrainer(model, train_config), vocab=vocab,
            task=meta["task"], max_len=meta["max_len"],
        )
    return TrainedGraphModel(
        trainer=GraphTrainer(model, train_config), vocab=vocab,
        representation=meta["representation"], task=meta["task"],
    )
