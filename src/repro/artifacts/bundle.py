"""The suggester bundle: one directory, one deployable advisor.

Layout (format version 1)::

    <bundle>/
      manifest.json          format version, clause list, vocab hash,
                             experiment-config provenance
      vocab.json             the shared GraphVocab of every model
      parallel/              the parallel/non-parallel model
        model.json  weights.npz
      clause_<family>/       one per clause-family model
        model.json  weights.npz

All models of a suggester are trained on the same split and therefore
share one vocabulary; the bundle stores it once and every model
records its SHA-256, so a bundle stitched together from mismatched
halves refuses to load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.artifacts.model_io import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    _check_version,
    _read_json,
    _write_json,
    load_trained,
    save_trained,
)
from repro.graphs.vocab import GraphVocab, Vocab
from repro.serve.pipeline import DEFAULT_CLAUSES


class BundleError(ArtifactError):
    """A suggester bundle is missing, incompatible, or inconsistent."""


@dataclass
class SuggesterBundle:
    """A trained suggester (parallel + clause models) as one artifact.

    ``parallel`` and the ``clause_models`` values follow the
    :class:`~repro.eval.context.TrainedGraphModel` protocol.
    ``experiment`` optionally records the training
    :class:`~repro.eval.config.ExperimentConfig` as provenance.
    """

    parallel: object
    clause_models: dict[str, object]
    experiment: dict | None = field(default=None)

    @property
    def vocab(self) -> GraphVocab:
        return self.parallel.vocab

    @classmethod
    def from_context(cls, context,
                     clauses: tuple[str, ...] = DEFAULT_CLAUSES,
                     ) -> "SuggesterBundle":
        """Collect (training on first use) a context's suggester models."""
        from dataclasses import asdict

        return cls(
            parallel=context.graph_model(representation="aug",
                                         task="parallel"),
            clause_models={
                clause: context.graph_model(representation="aug",
                                            task=clause)
                for clause in clauses
            },
            experiment=asdict(context.config),
        )

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Write the bundle; returns the bundle directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        vocab_hash = self.vocab.content_hash()
        for name, model in self.clause_models.items():
            if model.vocab.content_hash() != vocab_hash:
                raise BundleError(
                    f"clause model {name!r} was trained against a "
                    f"different vocabulary than the parallel model; "
                    f"a bundle stores exactly one vocab"
                )
        _write_json(directory / "vocab.json", self.vocab.to_dict())
        save_trained(self.parallel, directory / "parallel",
                     include_vocab=False)
        for name, model in self.clause_models.items():
            save_trained(model, directory / f"clause_{name}",
                         include_vocab=False)
        _write_json(directory / "manifest.json", {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "kind": "suggester-bundle",
            "clauses": list(self.clause_models),
            "vocab_sha256": vocab_hash,
            "experiment": self.experiment,
        })
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "SuggesterBundle":
        """Load a saved bundle, verifying version and vocabulary hash."""
        directory = Path(directory)
        try:
            manifest = _read_json(directory / "manifest.json")
        except ArtifactError as exc:
            raise BundleError(str(exc)) from exc
        if manifest.get("kind") != "suggester-bundle":
            raise BundleError(
                f"{directory} is not a suggester bundle "
                f"(kind={manifest.get('kind')!r})"
            )
        try:
            _check_version(manifest, directory / "manifest.json")
        except ArtifactError as exc:
            raise BundleError(str(exc)) from exc
        vocab_data = _read_json(directory / "vocab.json")
        vocab = GraphVocab(
            types=Vocab.from_dict(vocab_data["types"]),
            texts=Vocab.from_dict(vocab_data["texts"]),
        )
        if vocab.content_hash() != manifest.get("vocab_sha256"):
            raise BundleError(
                f"vocab.json in {directory} does not hash to the "
                f"manifest's vocab_sha256 — the bundle was tampered "
                f"with or assembled from mismatched artifacts"
            )
        return cls(
            parallel=load_trained(directory / "parallel", vocab=vocab),
            clause_models={
                name: load_trained(directory / f"clause_{name}",
                                   vocab=vocab)
                for name in manifest["clauses"]
            },
            experiment=manifest.get("experiment"),
        )

    # -- serving -------------------------------------------------------------

    def build_service(self, config=None, cache_dir: str | Path | None = None):
        """A :class:`~repro.serve.SuggestionService` over this bundle's
        models (zero training steps), optionally backed by a persistent
        suggestion store at ``cache_dir``."""
        from repro.serve import build_service

        return build_service(self, config=config, cache_dir=cache_dir)

    def describe(self) -> str:
        """One-line human summary (CLI banner)."""
        exp = self.experiment or {}
        scale = exp.get("scale")
        return (
            f"suggester bundle: parallel + {len(self.clause_models)} "
            f"clause models ({', '.join(self.clause_models)}), "
            f"vocab {self.vocab.content_hash()[:12]}"
            + (f", trained at scale={scale}" if scale is not None else "")
        )
