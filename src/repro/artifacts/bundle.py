"""The suggester bundle: one directory, one deployable advisor.

Layout (format version 1)::

    <bundle>/
      manifest.json          format version, clause list, vocab hash,
                             experiment-config provenance
      vocab.json             the shared GraphVocab of every model
      parallel/              the parallel/non-parallel model
        model.json  weights.npz
      clause_<family>/       one per clause-family model
        model.json  weights.npz

All models of a suggester are trained on the same split and therefore
share one vocabulary; the bundle stores it once and every model
records its SHA-256, so a bundle stitched together from mismatched
halves refuses to load.

A bundle also travels as a *single archive file* (gzipped tar of the
directory layout): :func:`pack_bundle` / :func:`unpack_bundle` convert
between the two, :meth:`SuggesterBundle.export_archive` writes one
directly, and :meth:`SuggesterBundle.load` auto-detects which form it
was given — so one ``scp``-able file ships a whole advisor to shard
workers and remote machines.
"""

from __future__ import annotations

import tarfile
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.artifacts.model_io import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    _check_version,
    _read_json,
    _write_json,
    load_trained,
    save_trained,
)
from repro.graphs.vocab import GraphVocab, Vocab
from repro.serve.pipeline import DEFAULT_CLAUSES


class BundleError(ArtifactError):
    """A suggester bundle is missing, incompatible, or inconsistent."""


@dataclass
class SuggesterBundle:
    """A trained suggester (parallel + clause models) as one artifact.

    ``parallel`` and the ``clause_models`` values follow the
    :class:`~repro.eval.context.TrainedGraphModel` protocol.
    ``experiment`` optionally records the training
    :class:`~repro.eval.config.ExperimentConfig` as provenance.
    """

    parallel: object
    clause_models: dict[str, object]
    experiment: dict | None = field(default=None)
    #: where this bundle was loaded from (directory or archive), when
    #: it came from disk — shard workers reload the artifact from here
    #: instead of receiving pickled weights
    source_path: str | None = field(default=None, compare=False,
                                    repr=False)

    @property
    def vocab(self) -> GraphVocab:
        return self.parallel.vocab

    @classmethod
    def from_context(cls, context,
                     clauses: tuple[str, ...] = DEFAULT_CLAUSES,
                     ) -> "SuggesterBundle":
        """Collect (training on first use) a context's suggester models."""
        from dataclasses import asdict

        return cls(
            parallel=context.graph_model(representation="aug",
                                         task="parallel"),
            clause_models={
                clause: context.graph_model(representation="aug",
                                            task=clause)
                for clause in clauses
            },
            experiment=asdict(context.config),
        )

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Write the bundle; returns the bundle directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        vocab_hash = self.vocab.content_hash()
        for name, model in self.clause_models.items():
            if model.vocab.content_hash() != vocab_hash:
                raise BundleError(
                    f"clause model {name!r} was trained against a "
                    f"different vocabulary than the parallel model; "
                    f"a bundle stores exactly one vocab"
                )
        _write_json(directory / "vocab.json", self.vocab.to_dict())
        save_trained(self.parallel, directory / "parallel",
                     include_vocab=False)
        for name, model in self.clause_models.items():
            save_trained(model, directory / f"clause_{name}",
                         include_vocab=False)
        _write_json(directory / "manifest.json", {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "kind": "suggester-bundle",
            "clauses": list(self.clause_models),
            "vocab_sha256": vocab_hash,
            "experiment": self.experiment,
        })
        return directory

    def export_archive(self, path: str | Path) -> Path:
        """Write the bundle as one gzipped-tar archive file.

        The archive holds exactly the directory layout (manifest at
        the top level), so ``pack → unpack`` round-trips byte-for-byte
        and :meth:`load` accepts either form.
        """
        path = Path(path)
        with tempfile.TemporaryDirectory(prefix="bundle-") as tmp:
            staged = Path(tmp) / "bundle"
            self.save(staged)
            return pack_bundle(staged, path)

    @classmethod
    def load(cls, path: str | Path) -> "SuggesterBundle":
        """Load a saved bundle from a directory *or* an archive file.

        Auto-detects the form: a directory loads in place; a regular
        file is treated as a :func:`pack_bundle` archive and unpacked
        to a temporary directory first (everything — vocab, configs,
        weights — is materialised in memory, so nothing outlives the
        extraction).  Either way the loaded bundle records its
        ``source_path`` so shard workers can re-load the same artifact.
        """
        from repro.serve import faults

        path = Path(path)
        faults.on_bundle_load(str(path))
        if path.is_file():
            with tempfile.TemporaryDirectory(prefix="bundle-") as tmp:
                bundle = cls._load_dir(unpack_bundle(path, Path(tmp) / "x"))
            bundle.source_path = str(path)
            return bundle
        bundle = cls._load_dir(path)
        bundle.source_path = str(path)
        return bundle

    @classmethod
    def _load_dir(cls, directory: str | Path) -> "SuggesterBundle":
        """Load a bundle directory, verifying version and vocab hash."""
        directory = Path(directory)
        try:
            manifest = _read_json(directory / "manifest.json")
        except ArtifactError as exc:
            raise BundleError(str(exc)) from exc
        if manifest.get("kind") != "suggester-bundle":
            raise BundleError(
                f"{directory} is not a suggester bundle "
                f"(kind={manifest.get('kind')!r})"
            )
        try:
            _check_version(manifest, directory / "manifest.json")
        except ArtifactError as exc:
            raise BundleError(str(exc)) from exc
        vocab_data = _read_json(directory / "vocab.json")
        vocab = GraphVocab(
            types=Vocab.from_dict(vocab_data["types"]),
            texts=Vocab.from_dict(vocab_data["texts"]),
        )
        if vocab.content_hash() != manifest.get("vocab_sha256"):
            raise BundleError(
                f"vocab.json in {directory} does not hash to the "
                f"manifest's vocab_sha256 — the bundle was tampered "
                f"with or assembled from mismatched artifacts"
            )
        return cls(
            parallel=load_trained(directory / "parallel", vocab=vocab),
            clause_models={
                name: load_trained(directory / f"clause_{name}",
                                   vocab=vocab)
                for name in manifest["clauses"]
            },
            experiment=manifest.get("experiment"),
        )

    # -- serving -------------------------------------------------------------

    def build_service(self, config=None, cache_dir: str | Path | None = None):
        """A :class:`~repro.serve.SuggestionService` over this bundle's
        models (zero training steps), optionally backed by a persistent
        suggestion store at ``cache_dir``."""
        from repro.serve import build_service

        return build_service(self, config=config, cache_dir=cache_dir)

    def describe(self) -> str:
        """One-line human summary (CLI banner)."""
        exp = self.experiment or {}
        scale = exp.get("scale")
        return (
            f"suggester bundle: parallel + {len(self.clause_models)} "
            f"clause models ({', '.join(self.clause_models)}), "
            f"vocab {self.vocab.content_hash()[:12]}"
            + (f", trained at scale={scale}" if scale is not None else "")
        )


# -- archive form ------------------------------------------------------------


def pack_bundle(directory: str | Path, archive: str | Path) -> Path:
    """Pack a saved bundle directory into one gzipped-tar archive.

    Members are stored relative to the bundle root in sorted order
    (manifest first only by name), so packing the same directory twice
    yields the same member list.  Refuses anything that is not a
    bundle directory — archiving an arbitrary tree would just defer
    the failure to some other machine's load.
    """
    directory = Path(directory)
    manifest = directory / "manifest.json"
    if not directory.is_dir() or not manifest.is_file():
        raise BundleError(
            f"{directory} is not a saved bundle directory "
            f"(missing manifest.json); save or unpack one first"
        )
    meta = _read_json(manifest)
    if meta.get("kind") != "suggester-bundle":
        raise BundleError(
            f"{directory} is not a suggester bundle "
            f"(kind={meta.get('kind')!r})"
        )
    archive = Path(archive)
    archive.parent.mkdir(parents=True, exist_ok=True)
    with tarfile.open(archive, "w:gz") as tar:
        for member in sorted(directory.rglob("*")):
            tar.add(member, arcname=str(member.relative_to(directory)),
                    recursive=False)
    return archive


def unpack_bundle(archive: str | Path, directory: str | Path) -> Path:
    """Extract a :func:`pack_bundle` archive into ``directory``.

    Extraction is strict: only regular files and directories with
    plain relative names are accepted — a crafted archive with
    absolute paths, ``..`` components, links, or device nodes raises
    :class:`BundleError` instead of writing outside the target.
    """
    archive = Path(archive)
    directory = Path(directory)
    try:
        tar = tarfile.open(archive, "r:*")
    except (OSError, tarfile.TarError) as exc:
        raise BundleError(
            f"cannot read bundle archive {archive}: {exc}"
        ) from exc
    with tar:
        for member in tar.getmembers():
            name = Path(member.name)
            if not (member.isreg() or member.isdir()):
                raise BundleError(
                    f"bundle archive {archive} contains non-file member "
                    f"{member.name!r}; refusing to extract"
                )
            if name.is_absolute() or ".." in name.parts:
                raise BundleError(
                    f"bundle archive {archive} contains unsafe path "
                    f"{member.name!r}; refusing to extract"
                )
        directory.mkdir(parents=True, exist_ok=True)
        try:
            tar.extractall(directory, filter="data")
        except TypeError:  # pre-3.11.4 tarfile: no filter= keyword
            tar.extractall(directory)
    if not (directory / "manifest.json").is_file():
        raise BundleError(
            f"{archive} unpacked without a manifest.json; "
            f"it is not a bundle archive"
        )
    return directory
