"""Named bundle registry for the serving daemon.

A long-lived server hosts *several* advisors at once — one per trained
bundle — and clients pick one by name over the wire instead of by
filesystem path.  :class:`BundleRegistry` owns that name → bundle
mapping: specs arrive from the CLI as ``NAME=PATH`` (or a bare path,
whose name derives from the file name), every bundle loads strictly at
registration time (a server must not discover a corrupt artifact
mid-request), and the first registered bundle becomes the default a
nameless request is served from.  :meth:`from_specs` refuses to start
on any load failure; :meth:`from_specs_tolerant` instead starts
*degraded* — the loadable bundles serve, the broken ones are reported
per-name so the daemon can surface them in its capabilities.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.artifacts.bundle import BundleError, SuggesterBundle

#: archive suffixes stripped when deriving a bundle name from its path
_ARCHIVE_SUFFIXES = (".tar.gz", ".tgz", ".tar")


def archive_sha256(path: str | Path) -> str:
    """SHA-256 hex digest of an archive file's bytes.

    The content address bundle distribution pushes, caches, and
    resolves by — two peers hold the same advisor exactly when their
    archives hash identically.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def bundle_name_from_path(path: str | Path) -> str:
    """Default registry name of a bundle at ``path``.

    The file (or directory) name with any archive suffix stripped:
    ``models/advisor.tar.gz`` and ``models/advisor/`` both register as
    ``advisor``.
    """
    name = Path(path).name
    for suffix in _ARCHIVE_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_bundle_spec(spec: str) -> tuple[str, str]:
    """``NAME=PATH`` or bare ``PATH`` → ``(name, path)``.

    A Windows-style drive letter (``C:\\...``) is not a name: names
    must not contain path separators, so anything ambiguous falls back
    to path-derived naming.
    """
    name, sep, path = spec.partition("=")
    if sep and name and "/" not in name and "\\" not in name:
        return name, path
    return bundle_name_from_path(spec), spec


class BundleRegistry:
    """Strictly-loaded, name-addressable suggester bundles."""

    def __init__(self) -> None:
        self._bundles: dict[str, SuggesterBundle] = {}
        #: registry name → archive sha256, for bundles that loaded
        #: from a single-file archive (directories have no stable hash)
        self._hashes: dict[str, str] = {}
        self.default: str | None = None

    @classmethod
    def from_specs(cls, specs) -> "BundleRegistry":
        """Build a registry from ``NAME=PATH`` / ``PATH`` strings.

        Bundles load (strictly) immediately; the first spec becomes
        the default.  Duplicate names are an error — silently shadowing
        one advisor with another is how stale advice ships.
        """
        registry = cls()
        for spec in specs:
            name, path = parse_bundle_spec(spec)
            registry.add(name, SuggesterBundle.load(path))
        return registry

    @classmethod
    def from_specs_tolerant(
            cls, specs) -> tuple["BundleRegistry", dict[str, str]]:
        """Like :meth:`from_specs`, but load failures degrade.

        Returns ``(registry, failures)`` where ``failures`` maps each
        bundle name that refused to load to the reason.  Spec errors
        (malformed ``NAME=PATH``, duplicate names) still raise — those
        are operator typos, not runtime corruption.  The first
        *loadable* spec becomes the default.
        """
        from repro.artifacts.model_io import ArtifactError
        from repro.serve.faults import FaultError

        registry = cls()
        failures: dict[str, str] = {}
        for spec in specs:
            name, path = parse_bundle_spec(spec)
            if name in registry or name in failures:
                raise ValueError(
                    f"bundle name {name!r} registered twice; "
                    f"use NAME=PATH specs to disambiguate"
                )
            try:
                registry.add(name, SuggesterBundle.load(path))
            except (ArtifactError, OSError, FaultError) as exc:
                failures[name] = str(exc)
        return registry, failures

    def add(self, name: str, bundle: SuggesterBundle,
            sha256: str | None = None) -> None:
        if name in self._bundles:
            raise ValueError(
                f"bundle name {name!r} registered twice; "
                f"use NAME=PATH specs to disambiguate"
            )
        if sha256 is None:
            source = getattr(bundle, "source_path", None)
            if source is not None and Path(source).is_file():
                sha256 = archive_sha256(source)
        self._bundles[name] = bundle
        if sha256 is not None:
            self._hashes[name] = sha256
        if self.default is None:
            self.default = name

    def add_archive(self, path: str | Path, name: str | None = None,
                    expect_sha256: str | None = None) -> str:
        """Load and register an archive, verifying its content hash.

        The hash is computed from the bytes on disk *before* the
        archive is trusted enough to unpack; when ``expect_sha256`` is
        given a mismatch refuses the bundle outright — a registry must
        never serve an advisor under a content address it does not
        have.  Returns the registered name.
        """
        digest = archive_sha256(path)
        if expect_sha256 is not None and digest != expect_sha256:
            raise BundleError(
                f"bundle archive {path} hashes to {digest[:12]}…, "
                f"expected {expect_sha256[:12]}…; refusing to load")
        if name is None:
            name = bundle_name_from_path(path)
        self.add(name, SuggesterBundle.load(path), sha256=digest)
        return name

    def resolve(self, ref: str) -> str:
        """Registry name for ``ref``: a name, or an archive-hash prefix.

        Exact names win; otherwise ``ref`` is matched as a prefix of
        the registered archive hashes.  An ambiguous prefix raises —
        silently picking one of two advisors is how stale advice ships.
        """
        if ref in self._bundles:
            return ref
        matches = sorted(name for name, digest in self._hashes.items()
                         if digest.startswith(ref))
        if len(matches) > 1:
            raise ValueError(
                f"bundle ref {ref!r} is ambiguous: matches "
                f"{matches}; use a longer hash prefix")
        if not matches:
            raise KeyError(
                f"unknown bundle {ref!r}; serving: {self.names()}")
        return matches[0]

    def sha256_of(self, name: str) -> str | None:
        """Archive hash of a registered bundle (``None`` for dirs)."""
        return self._hashes.get(name)

    def hashes(self) -> dict[str, str]:
        """``name → archive sha256`` for every hash-addressed bundle."""
        return dict(self._hashes)

    def get(self, name: str | None) -> SuggesterBundle:
        """The named bundle (``None`` = the default one)."""
        if name is None:
            if self.default is None:
                raise KeyError("registry holds no bundles")
            name = self.default
        try:
            return self._bundles[name]
        except KeyError:
            raise KeyError(
                f"unknown bundle {name!r}; serving: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._bundles)

    def __len__(self) -> int:
        return len(self._bundles)

    def __contains__(self, name: str) -> bool:
        return name in self._bundles
