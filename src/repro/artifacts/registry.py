"""Named bundle registry for the serving daemon.

A long-lived server hosts *several* advisors at once — one per trained
bundle — and clients pick one by name over the wire instead of by
filesystem path.  :class:`BundleRegistry` owns that name → bundle
mapping: specs arrive from the CLI as ``NAME=PATH`` (or a bare path,
whose name derives from the file name), every bundle loads strictly at
registration time (a server must not discover a corrupt artifact
mid-request), and the first registered bundle becomes the default a
nameless request is served from.  :meth:`from_specs` refuses to start
on any load failure; :meth:`from_specs_tolerant` instead starts
*degraded* — the loadable bundles serve, the broken ones are reported
per-name so the daemon can surface them in its capabilities.
"""

from __future__ import annotations

from pathlib import Path

from repro.artifacts.bundle import SuggesterBundle

#: archive suffixes stripped when deriving a bundle name from its path
_ARCHIVE_SUFFIXES = (".tar.gz", ".tgz", ".tar")


def bundle_name_from_path(path: str | Path) -> str:
    """Default registry name of a bundle at ``path``.

    The file (or directory) name with any archive suffix stripped:
    ``models/advisor.tar.gz`` and ``models/advisor/`` both register as
    ``advisor``.
    """
    name = Path(path).name
    for suffix in _ARCHIVE_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_bundle_spec(spec: str) -> tuple[str, str]:
    """``NAME=PATH`` or bare ``PATH`` → ``(name, path)``.

    A Windows-style drive letter (``C:\\...``) is not a name: names
    must not contain path separators, so anything ambiguous falls back
    to path-derived naming.
    """
    name, sep, path = spec.partition("=")
    if sep and name and "/" not in name and "\\" not in name:
        return name, path
    return bundle_name_from_path(spec), spec


class BundleRegistry:
    """Strictly-loaded, name-addressable suggester bundles."""

    def __init__(self) -> None:
        self._bundles: dict[str, SuggesterBundle] = {}
        self.default: str | None = None

    @classmethod
    def from_specs(cls, specs) -> "BundleRegistry":
        """Build a registry from ``NAME=PATH`` / ``PATH`` strings.

        Bundles load (strictly) immediately; the first spec becomes
        the default.  Duplicate names are an error — silently shadowing
        one advisor with another is how stale advice ships.
        """
        registry = cls()
        for spec in specs:
            name, path = parse_bundle_spec(spec)
            registry.add(name, SuggesterBundle.load(path))
        return registry

    @classmethod
    def from_specs_tolerant(
            cls, specs) -> tuple["BundleRegistry", dict[str, str]]:
        """Like :meth:`from_specs`, but load failures degrade.

        Returns ``(registry, failures)`` where ``failures`` maps each
        bundle name that refused to load to the reason.  Spec errors
        (malformed ``NAME=PATH``, duplicate names) still raise — those
        are operator typos, not runtime corruption.  The first
        *loadable* spec becomes the default.
        """
        from repro.artifacts.model_io import ArtifactError
        from repro.serve.faults import FaultError

        registry = cls()
        failures: dict[str, str] = {}
        for spec in specs:
            name, path = parse_bundle_spec(spec)
            if name in registry or name in failures:
                raise ValueError(
                    f"bundle name {name!r} registered twice; "
                    f"use NAME=PATH specs to disambiguate"
                )
            try:
                registry.add(name, SuggesterBundle.load(path))
            except (ArtifactError, OSError, FaultError) as exc:
                failures[name] = str(exc)
        return registry, failures

    def add(self, name: str, bundle: SuggesterBundle) -> None:
        if name in self._bundles:
            raise ValueError(
                f"bundle name {name!r} registered twice; "
                f"use NAME=PATH specs to disambiguate"
            )
        self._bundles[name] = bundle
        if self.default is None:
            self.default = name

    def get(self, name: str | None) -> SuggesterBundle:
        """The named bundle (``None`` = the default one)."""
        if name is None:
            if self.default is None:
                raise KeyError("registry holds no bundles")
            name = self.default
        try:
            return self._bundles[name]
        except KeyError:
            raise KeyError(
                f"unknown bundle {name!r}; serving: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._bundles)

    def __len__(self) -> int:
        return len(self._bundles)

    def __contains__(self, name: str) -> bool:
        return name in self._bundles
