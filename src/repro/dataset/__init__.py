"""OMP_Serial dataset: generation, extraction, statistics.

The paper builds OMP_Serial from (a) ~6000 GitHub repositories crawled
for C files using OpenMP and (b) Jinja2-generated synthetic programs.
Offline, (a) is replaced by a calibrated stochastic corpus generator
(:mod:`repro.dataset.corpus`) whose category proportions, function-call /
nested-loop rates and LOC distributions match Table 1; (b) is reproduced
with the same mechanism the paper used (:mod:`repro.dataset.synth`).

Labels always come from pragma presence on re-parsed source — the same
rule the paper applies (section 4.2) — never from generator bookkeeping,
so the extraction pipeline is exercised end to end.
"""

from repro.dataset.sample import LoopSample, load_jsonl, save_jsonl
from repro.dataset.recipes import LoopRecipe, RecipeGenerator, CATEGORY_PROFILES
from repro.dataset.extract import extract_loops_from_source
from repro.dataset.synth import SyntheticGenerator
from repro.dataset.corpus import CorpusGenerator
from repro.dataset.omp_serial import (
    DatasetConfig,
    OMPSerial,
    generate_omp_serial,
)

__all__ = [
    "LoopSample",
    "save_jsonl",
    "load_jsonl",
    "LoopRecipe",
    "RecipeGenerator",
    "CATEGORY_PROFILES",
    "extract_loops_from_source",
    "SyntheticGenerator",
    "CorpusGenerator",
    "OMPSerial",
    "DatasetConfig",
    "generate_omp_serial",
]
