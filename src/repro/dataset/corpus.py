"""GitHub-like corpus generator (the crawl substitute).

Assembles complete C files the way crawled OpenMP projects look: a
header block, globals and array declarations, helper functions, and one
or more functions whose bodies carry the generated loops (with their
developer-written pragmas).  File-level attributes (``has_main``,
``external_calls``, ``uses_nonstandard_headers``) are sampled at rates
calibrated so the §2 coverage statistics land near the paper's numbers
(autoPar ≈ 10 %, DiscoPoP ≈ 4 % of loops processable at file level).

Category mix follows Table 1:

=============  ======  =============================
category       count   share of the 32 570 loops
=============  ======  =============================
reduction       3 705
private         6 278
simd            3 574
target          2 155
parallel        2 886   (18 598 total parallel)
non-parallel   13 972
=============  ======  =============================

``scale`` shrinks every count proportionally for tractable experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cfront import ParseError
from repro.cfront.lexer import LexError
from repro.dataset.extract import extract_loops_from_source
from repro.dataset.recipes import LoopRecipe, RecipeGenerator
from repro.dataset.sample import LoopSample

#: Table 1 loop counts for the GitHub portion.
GITHUB_CATEGORY_COUNTS: dict[str | None, int] = {
    "reduction": 3705,
    "private": 6278,
    "simd": 3574,
    "target": 2155,
    "parallel": 2886,   # 18598 total parallel minus the four named clauses
    None: 13972,
}

_HEADERS_STANDARD = ["<stdio.h>", "<stdlib.h>", "<math.h>", "<string.h>"]
_HEADERS_NONSTANDARD = ["<sys/time.h>", "<unistd.h>", '"config.h"',
                        '"kernels.h"', "<omp.h>", '"common/util.h"']


@dataclass
class GeneratedFile:
    """One synthetic 'crawled' source file."""

    source: str
    meta: dict
    file_id: int


class CorpusGenerator:
    """Generates files and extracts the labelled loop population."""

    def __init__(self, seed: int = 0, loops_per_file: tuple[int, int] = (2, 7),
                 unannotated_parallel_fraction: float = 0.18,
                 ambiguous_reduction_fraction: float = 0.55) -> None:
        self.rng = np.random.default_rng(seed)
        self.recipes = RecipeGenerator(seed=seed + 1)
        self.loops_per_file = loops_per_file
        #: fraction of the non-parallel quota that is actually a
        #: tool-resistant parallel pattern a developer left unannotated
        #: (the paper's §6.4 observation); drives the accuracy ceiling.
        self.unannotated_parallel_fraction = unannotated_parallel_fraction
        #: fraction of the reduction quota drawn from the same ambiguous
        #: pool (annotated) so the pattern mass overlaps both classes.
        self.ambiguous_reduction_fraction = ambiguous_reduction_fraction

    # -- file-level metadata -------------------------------------------------------

    def _file_meta(self) -> dict:
        # Pointer-parameter style dominates real C kernels: arrays arrive
        # as (possibly aliasing) pointers, the classic static-analysis
        # killer.  Pointer-style files are library code (no main).
        pointer_style = bool(self.rng.random() < 0.55)
        return {
            "compiles": True,
            # Most crawled files are library-style translation units.
            "has_main": (not pointer_style) and bool(self.rng.random() < 0.25),
            # printf/malloc/project-specific helpers at file scope.
            "external_calls": bool(self.rng.random() < 0.70),
            # GNU/system extensions break ROSE's EDG frontend.
            "uses_nonstandard_headers": bool(self.rng.random() < 0.88),
            "pointer_style": pointer_style,
        }

    # -- file assembly ----------------------------------------------------------------

    def build_file(self, recipes: list[LoopRecipe], file_id: int,
                   meta: dict) -> GeneratedFile:
        rng = self.rng
        lines: list[str] = []
        for header in rng.choice(_HEADERS_STANDARD,
                                 size=rng.integers(1, 3), replace=False):
            lines.append(f"#include {header}")
        if meta["uses_nonstandard_headers"]:
            lines.append(f"#include {rng.choice(_HEADERS_NONSTANDARD)}")
        lines.append("")
        size = int(rng.choice([1024, 4096, 8192, 16384]))
        lines.append(f"#define ARR_CAP {size}")
        lines.append("")

        # Declarations covering every identifier the loops use.  In
        # pointer-style files, 1-D arrays become pointer parameters of
        # the kernel functions; multi-dimensional arrays and scalars stay
        # global (matching common C layouts).
        idents = self._identifiers(recipes)
        dims = self._array_dims(recipes)
        pointer_style = bool(meta.get("pointer_style", False))
        param_arrays: set[str] = set()
        for name in sorted(idents["arrays"]):
            depth = dims.get(name, 1)
            if pointer_style and depth == 1:
                param_arrays.add(name)
                continue
            dim = "[ARR_CAP]" * depth
            ctype = str(rng.choice(["double", "float", "int"]))
            lines.append(f"{ctype} {name}{dim};")
        for name in sorted(idents["scalars"]):
            lines.append(f"double {name} = 0.0;")
        for name in sorted(idents["indices"]):
            lines.append(f"int {name};")
        lines.append("")

        # Prototypes for impure helper calls (defined elsewhere in the
        # "project" — the crawled-file reality that breaks dynamic tools).
        for name in sorted(idents["calls"]):
            lines.append(f"void {name}(double *p, int v);")
        if idents["calls"]:
            lines.append("")

        # One function per 1–3 loops.
        fn_index = 0
        chunk: list[LoopRecipe] = []
        chunks: list[list[LoopRecipe]] = []
        for recipe in recipes:
            chunk.append(recipe)
            if len(chunk) >= int(rng.integers(1, 4)):
                chunks.append(chunk)
                chunk = []
        if chunk:
            chunks.append(chunk)
        import re as _re
        for chunk in chunks:
            if param_arrays:
                used = sorted({
                    name for name in param_arrays
                    if any(
                        _re.search(rf"\b{_re.escape(name)}\s*\[",
                                   r.full_source)
                        for r in chunk
                    )
                })
            else:
                used = []
            params = ", ".join(f"double *{name}" for name in used) or "void"
            lines.append(f"void kernel_{file_id}_{fn_index}({params})")
            lines.append("{")
            for recipe in chunk:
                for src_line in recipe.full_source.splitlines():
                    lines.append(f"    {src_line}")
                lines.append("")
            lines.append("}")
            lines.append("")
            fn_index += 1

        if meta["has_main"]:
            lines.append("int main(void)")
            lines.append("{")
            for k in range(fn_index):
                lines.append(f"    kernel_{file_id}_{k}();")
            lines.append("    return 0;")
            lines.append("}")
        return GeneratedFile(source="\n".join(lines), meta=meta, file_id=file_id)

    def _identifiers(self, recipes: list[LoopRecipe]) -> dict[str, set[str]]:
        """Partition identifiers used by the loops into decl groups."""
        import re
        arrays: set[str] = set()
        scalars: set[str] = set()
        indices: set[str] = set()
        calls: set[str] = set()
        known_pure = {"fabs", "sqrt", "sin", "cos", "exp", "log", "printf"}
        for recipe in recipes:
            src = recipe.full_source
            for m in re.finditer(r"([A-Za-z_][A-Za-z0-9_]*)\s*\[", src):
                arrays.add(m.group(1))
            for m in re.finditer(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(", src):
                name = m.group(1)
                if name not in ("for", "while", "if", "pragma", "omp",
                                "reduction", "private", "map", "schedule"):
                    if name not in known_pure:
                        calls.add(name)
            decl_in_loop = set(re.findall(r"\bint\s+([A-Za-z_][A-Za-z0-9_]*)", src))
            for m in re.finditer(r"\b([A-Za-z_][A-Za-z0-9_]*)\b", src):
                name = m.group(1)
                if name in ("for", "while", "if", "else", "int", "double",
                            "float", "pragma", "omp", "parallel", "reduction",
                            "private", "simd", "target", "teams", "distribute",
                            "map", "to", "from", "schedule", "static", "printf",
                            "do", "return") or name in known_pure:
                    continue
                if name in arrays or name in calls or name in decl_in_loop:
                    continue
                # index vs scalar: single-letter-ish loop counters
                if re.fullmatch(r"(i|j|k|ii|jj|idx|pos)\d*", name):
                    indices.add(name)
                else:
                    scalars.add(name)
        scalars -= indices
        return {"arrays": arrays, "scalars": scalars, "indices": indices,
                "calls": calls}

    def _array_dims(self, recipes: list[LoopRecipe]) -> dict[str, int]:
        """Max subscript depth per array across the file's loops."""
        import re
        dims: dict[str, int] = {}
        for recipe in recipes:
            for m in re.finditer(
                r"([A-Za-z_][A-Za-z0-9_]*)((?:\s*\[[^\[\]]*\])+)",
                recipe.full_source,
            ):
                depth = m.group(2).count("[")
                name = m.group(1)
                dims[name] = max(dims.get(name, 1), depth)
        return dims

    def _recipe_for(self, category: str | None) -> LoopRecipe:
        """Category quota → recipe, mixing in the ambiguous pool."""
        if category is None and self.rng.random() < \
                self.unannotated_parallel_fraction:
            return self.recipes.generate_ambiguous(with_pragma=False)
        if category == "reduction" and self.rng.random() < \
                self.ambiguous_reduction_fraction:
            return self.recipes.generate_ambiguous(with_pragma=True)
        return self.recipes.generate(category)

    # -- population generation ----------------------------------------------------------

    def generate(self, scale: float = 1.0,
                 counts: dict[str | None, int] | None = None
                 ) -> tuple[list[LoopSample], list[GeneratedFile]]:
        """Generate the GitHub-like loop population at ``scale``.

        Returns labelled samples (extracted by re-parsing the emitted
        files) and the file objects themselves.
        """
        counts = counts or GITHUB_CATEGORY_COUNTS
        todo: list[str | None] = []
        for category, count in counts.items():
            todo.extend([category] * max(1, int(round(count * scale))))
        self.rng.shuffle(todo)

        samples: list[LoopSample] = []
        files: list[GeneratedFile] = []
        file_id = 0
        cursor = 0
        while cursor < len(todo):
            n_loops = int(self.rng.integers(*self.loops_per_file))
            batch = todo[cursor: cursor + n_loops]
            cursor += n_loops
            recipes = [self._recipe_for(cat) for cat in batch]
            meta = self._file_meta()
            gen_file = self.build_file(recipes, file_id, meta)
            try:
                extracted = extract_loops_from_source(
                    gen_file.source, origin="github", file_id=file_id,
                    file_meta=meta,
                )
            except (ParseError, LexError) as exc:
                raise AssertionError(
                    f"generated file {file_id} failed to parse: {exc}\n"
                    f"{gen_file.source}"
                ) from exc
            samples.extend(extracted)
            files.append(gen_file)
            file_id += 1
        return samples, files
