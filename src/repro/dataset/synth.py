"""Synthetic data generation with Jinja2 templates (paper section 4.3).

The paper creates ten templates per pattern (do-all and reduction),
renders twenty variations of each, and adds non-parallel loops.  The
templates below are modelled on NPB / PolyBench / BOTS / Starbench
kernels (vector ops, stencil-free elementwise updates, dot products,
histogram-free accumulations); variable names, constants and operators
are randomised into each rendering, exactly as described.

Synthetic loops are intentionally larger than crawled ones (Table 1
reports ~30 LOC for synthetic parallel loops vs ~7 for GitHub ones) —
each template unrolls several independent statement groups.
"""

from __future__ import annotations

import numpy as np
from jinja2 import Environment

from repro.dataset.sample import LoopSample
from repro.dataset.extract import extract_loops_from_source

_ENV = Environment(autoescape=False)

#: Ten do-all templates: bodies of {{k}} independent statement groups.
DO_ALL_TEMPLATES = [
    # NPB-style vector triad
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = {{g.src1}}[{{i}}] {{g.op}} {{g.src2}}[{{i}}];
    {{g.dst}}[{{i}}] = {{g.dst}}[{{i}}] {{g.op}} {{g.c}};
{% endfor %}
}
""",
    # PolyBench-style scaled copy with private temporary
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.t}} = {{g.src1}}[{{i}}] * {{g.c}};
    {{g.dst}}[{{i}}] = {{g.t}} {{g.op}} {{g.src2}}[{{i}}];
{% endfor %}
}
""",
    # Starbench-style conditional elementwise
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    if ({{g.src1}}[{{i}}] > {{g.c}}) {
        {{g.dst}}[{{i}}] = {{g.src1}}[{{i}}] {{g.op}} {{g.src2}}[{{i}}];
    } else {
        {{g.dst}}[{{i}}] = {{g.src2}}[{{i}}];
    }
{% endfor %}
}
""",
    # BOTS-style indexed compute
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = {{g.c}} * {{i}} {{g.op}} {{g.src1}}[{{i}}];
{% endfor %}
}
""",
    # saxpy chain
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = {{g.c}} * {{g.src1}}[{{i}}] + {{g.src2}}[{{i}}];
{% endfor %}
}
""",
    # strided update
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}} += 2) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = {{g.src1}}[{{i}}] {{g.op}} {{g.c}};
{% endfor %}
}
""",
    # two-phase private temp
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.t}} = {{g.src1}}[{{i}}] {{g.op}} {{g.src2}}[{{i}}];
    {{g.t}} = {{g.t}} * {{g.t}};
    {{g.dst}}[{{i}}] = {{g.t}} + {{g.c}};
{% endfor %}
}
""",
    # elementwise max-like select
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = {{g.src1}}[{{i}}] > {{g.src2}}[{{i}}] ? {{g.src1}}[{{i}}] : {{g.src2}}[{{i}}];
{% endfor %}
}
""",
    # polynomial per element
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = ({{g.src1}}[{{i}}] {{g.op}} {{g.c}}) * {{g.src1}}[{{i}}];
{% endfor %}
}
""",
    # gather with affine shift
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.dst}}[{{i}}] = {{g.src1}}[{{i}} + {{g.c}}] {{g.op}} {{g.src2}}[{{i}}];
{% endfor %}
}
""",
]

#: Ten reduction templates.
REDUCTION_TEMPLATES = [
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{acc}} {{rop}}= {{g.src1}}[{{i}}] {{g.op}} {{g.src2}}[{{i}}];
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{acc}} = {{acc}} {{rop}} {{g.src1}}[{{i}}] * {{g.c}};
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.t}} = {{g.src1}}[{{i}}] {{g.op}} {{g.src2}}[{{i}}];
    {{acc}} {{rop}}= {{g.t}};
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{acc}} {{rop}}= {{g.src1}}[{{i}}] * {{g.src2}}[{{i}}];
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}} += 2) {
{% for g in groups %}
    {{acc}} {{rop}}= {{g.src1}}[{{i}}];
{% endfor %}
}
""",
    """
for ({{i}} = 1; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{acc}} = {{g.src1}}[{{i}}] {{rop}} {{acc}};
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.t}} = {{g.src1}}[{{i}}] - {{g.src2}}[{{i}}];
    {{acc}} {{rop}}= {{g.t}} * {{g.t}};
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{acc}} {{rop}}= ({{g.src1}}[{{i}}] {{g.op}} {{g.c}});
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{acc}} {{rop}}= {{g.src1}}[{{i}}] {{g.op}} {{i}};
{% endfor %}
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
{% for g in groups %}
    {{g.t}} = {{g.c}} * {{g.src1}}[{{i}}];
    {{acc}} = {{g.t}} {{rop}} {{acc}};
{% endfor %}
}
""",
]

#: Non-parallel synthetic templates (recurrences and shared state).
NON_PARALLEL_TEMPLATES = [
    """
for ({{i}} = 1; {{i}} < {{n}}; {{i}}++) {
    {{a}}[{{i}}] = {{a}}[{{i}}-1] {{op}} {{b}}[{{i}}];
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
    {{acc}} = {{acc}} * {{a}}[{{i}}] + {{b}}[{{i}}];
    {{a}}[{{i}}] = {{acc}};
}
""",
    """
for ({{i}} = 2; {{i}} < {{n}}; {{i}}++) {
    {{a}}[{{i}}] = {{a}}[{{i}}-1] + {{a}}[{{i}}-2];
}
""",
    """
for ({{i}} = 0; {{i}} < {{n}}; {{i}}++) {
    {{b}}[{{i}}] = {{acc}};
    {{acc}} = {{a}}[{{i}}] {{op}} {{acc}};
}
""",
    """
for ({{i}} = 1; {{i}} < {{n}}; {{i}}++) {
    {{a}}[{{i}}] = ({{a}}[{{i}}] + {{a}}[{{i}}-1]) / 2;
}
""",
]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


class SyntheticGenerator:
    """Renders the Jinja2 templates into complete C programs."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self._used_names: set[str] = set()

    # -- name/constant randomisation (paper: a-zA-Z0-9_) -------------------------

    def _name(self, prefix: str = "") -> str:
        while True:
            length = int(self.rng.integers(2, 7))
            chars = "".join(
                self.rng.choice(list(_LETTERS + _LETTERS.upper() + "_"))
                for _ in range(length)
            )
            digits = str(int(self.rng.integers(0, 100)))
            name = f"{prefix}{chars}{digits}"
            if name not in self._used_names:
                self._used_names.add(name)
                return name

    def _group(self) -> dict:
        return {
            "dst": self._name("out_"),
            "src1": self._name("in_"),
            "src2": self._name("w_"),
            "t": self._name("t_"),
            "op": str(self.rng.choice(["+", "-", "*"])),
            "c": str(int(self.rng.integers(1, 16))),
        }

    def render_loop(self, kind: str) -> tuple[str, str | None]:
        """Render one loop snippet; returns (loop source, pragma)."""
        if kind == "do-all":
            template = str(self.rng.choice(DO_ALL_TEMPLATES))
            groups = [self._group() for _ in range(int(self.rng.integers(8, 15)))]
            ctx = {
                "i": self._name("idx_"), "n": int(self.rng.integers(64, 4096)),
                "groups": groups,
            }
            body = _ENV.from_string(template).render(**ctx)
            privates = sorted({g["t"] for g in groups if f"{g['t']} =" in body})
            if privates:
                pragma = f"#pragma omp parallel for private({', '.join(privates)})"
            else:
                pragma = "#pragma omp parallel for"
            return body.strip(), pragma
        if kind == "reduction":
            template = str(self.rng.choice(REDUCTION_TEMPLATES))
            groups = [self._group() for _ in range(int(self.rng.integers(10, 20)))]
            # Reductions must be associative and commutative: + or * only
            # (paper section 4.3).
            rop = str(self.rng.choice(["+", "*"]))
            acc = self._name("acc_")
            ctx = {
                "i": self._name("idx_"), "n": int(self.rng.integers(64, 4096)),
                "groups": groups, "acc": acc, "rop": rop,
            }
            body = _ENV.from_string(template).render(**ctx)
            return body.strip(), f"#pragma omp parallel for reduction({rop}:{acc})"
        if kind == "non-parallel":
            template = str(self.rng.choice(NON_PARALLEL_TEMPLATES))
            ctx = {
                "i": self._name("idx_"), "n": int(self.rng.integers(64, 4096)),
                "a": self._name("arr_"), "b": self._name("buf_"),
                "acc": self._name("acc_"),
                "op": str(self.rng.choice(["+", "-", "*"])),
            }
            body = _ENV.from_string(template).render(**ctx)
            return body.strip(), None
        raise ValueError(f"unknown synthetic kind {kind!r}")

    def render_program(self, kind: str) -> tuple[str, dict]:
        """Wrap a rendered loop into a complete, compilable C program."""
        loop_src, pragma = self.render_loop(kind)
        arrays = sorted({
            tok for tok in _tokens_of(loop_src)
            if tok.startswith(("in_", "out_", "w_", "arr_", "buf_"))
        })
        scalars = sorted({
            tok for tok in _tokens_of(loop_src)
            if tok.startswith(("acc_", "t_"))
        })
        index_vars = sorted({
            tok for tok in _tokens_of(loop_src) if tok.startswith("idx_")
        })
        size = 8192
        lines = ["#include <stdio.h>", "", f"#define SYN_SIZE {size}", ""]
        for arr in arrays:
            lines.append(f"double {arr}[SYN_SIZE];")
        lines.append("")
        lines.append("int main(void)")
        lines.append("{")
        for sc in scalars:
            lines.append(f"    double {sc} = 0.0;")
        for iv in index_vars:
            lines.append(f"    int {iv} = 0;")
        if pragma:
            lines.append(f"    {pragma}")
        for ln in loop_src.splitlines():
            lines.append(f"    {ln}")
        first_out = arrays[0] if arrays else None
        if first_out:
            lines.append(f'    printf("%f\\n", {first_out}[0]);')
        lines.append("    return 0;")
        lines.append("}")
        meta = {
            "compiles": True,
            "has_main": True,
            # stdio-only programs run fine under instrumentation; the
            # paper verified the synthetic templates with DiscoPoP.
            "external_calls": False,
            "uses_nonstandard_headers": False,
            "synthetic": True,
        }
        return "\n".join(lines), meta

    def generate(self, n_reduction: int, n_doall: int,
                 n_non_parallel: int) -> list[LoopSample]:
        """Render programs and extract labelled loops from them."""
        samples: list[LoopSample] = []
        plan = (
            [("reduction",)] * n_reduction
            + [("do-all",)] * n_doall
            + [("non-parallel",)] * n_non_parallel
        )
        for file_id, (kind,) in enumerate(plan):
            program, meta = self.render_program(kind)
            extracted = extract_loops_from_source(
                program, origin="synthetic", file_id=file_id, file_meta=meta,
            )
            samples.extend(extracted)
        return samples


def _tokens_of(source: str) -> set[str]:
    import re
    return set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", source))
