"""A fixed mini-benchmark suite of realistic C kernels.

The paper sources its synthetic templates from NPB / PolyBench / BOTS /
Starbench.  This module carries hand-written kernels in those families —
*fixed* programs, not generated ones — used as an out-of-distribution
evaluation set: models train on the generated corpus and are tested on
these, which is the closest offline analogue to "does it transfer to
real code".

Every kernel is annotated with its ground truth (verified against the
labelling oracle in tests), and pragmas follow the same developer
conventions as the corpus.
"""

from __future__ import annotations

from repro.dataset.extract import extract_loops_from_source
from repro.dataset.sample import LoopSample

#: (name, C source, file_meta).  Pragmas encode the ground truth.
BENCHMARK_PROGRAMS: list[tuple[str, str, dict]] = [
    (
        "npb_ep_like",  # embarrassingly parallel accumulation
        """
double xs[65536], q[10];
double sx, sy;
void ep_kernel(int n) {
    int i;
    #pragma omp parallel for reduction(+:sx)
    for (i = 0; i < n; i++)
        sx += xs[i] * xs[i];
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "polybench_gemm_like",
        """
double A[256][256], B[256][256], C[256][256];
double alpha, beta;
void gemm(int ni, int nj, int nk) {
    int i, j, k;
    #pragma omp parallel for private(j, k)
    for (i = 0; i < ni; i++) {
        for (j = 0; j < nj; j++) {
            C[i][j] = C[i][j] * beta;
            for (k = 0; k < nk; k++) {
                C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
            }
        }
    }
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "polybench_jacobi_like",  # stencil sweep: parallel per sweep
        """
double grid_in[4096], grid_out[4096];
void jacobi_sweep(int n) {
    int i;
    #pragma omp parallel for
    for (i = 1; i < n - 1; i++)
        grid_out[i] = (grid_in[i-1] + grid_in[i] + grid_in[i+1]) / 3;
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "seidel_like",  # in-place stencil: loop-carried, sequential
        """
double gs[4096];
void seidel_sweep(int n) {
    int i;
    for (i = 1; i < n - 1; i++)
        gs[i] = (gs[i-1] + gs[i] + gs[i+1]) / 3;
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "starbench_rgbyuv_like",  # elementwise colour conversion
        """
double rr[8192], gg[8192], bb[8192], yy[8192];
void rgb2y(int n) {
    int i;
    #pragma omp parallel for simd
    for (i = 0; i < n; i++)
        yy[i] = rr[i] * 66 + gg[i] * 129 + bb[i] * 25;
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "dotprod_like",
        """
double u[16384], v[16384];
double dot;
void dotprod(int n) {
    int i;
    #pragma omp parallel for reduction(+:dot)
    for (i = 0; i < n; i++)
        dot += u[i] * v[i];
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "prefix_sum_like",  # classic sequential scan
        """
double ps[8192];
void scan(int n) {
    int i;
    for (i = 1; i < n; i++)
        ps[i] = ps[i] + ps[i-1];
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "bots_fib_like",  # while-loop iteration, sequential
        """
double f0, f1, ftmp;
void fib_iter(int n) {
    int k = 2;
    while (k < n) {
        ftmp = f0 + f1;
        f0 = f1;
        f1 = ftmp;
        k++;
    }
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "histogram_like",  # indirect accumulation: not parallel
        """
double hist[256]; int keys[65536];
void histogram(int n) {
    int i;
    for (i = 0; i < n; i++)
        hist[keys[i]] = hist[keys[i]] + 1;
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "saxpy_offload_like",
        """
double sx_[1048576], sy_[1048576];
double sa;
void saxpy(int n) {
    int i;
    #pragma omp target teams distribute parallel for map(to: sx_) map(tofrom: sy_)
    for (i = 0; i < n; i++)
        sy_[i] = sa * sx_[i] + sy_[i];
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "norm_with_call_like",  # reduction through libm (Listing-1 family)
        """
double xv[32768];
double nrm;
void norm1(int n) {
    int i;
    #pragma omp parallel for reduction(+:nrm)
    for (i = 0; i < n; i++)
        nrm += fabs(xv[i]);
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
    (
        "max_scan_like",  # running maximum feeding output: sequential
        """
double mseq[8192], mout[8192];
double runmax;
void running_max(int n) {
    int i;
    for (i = 0; i < n; i++) {
        runmax = mseq[i] > runmax ? mseq[i] : runmax;
        mout[i] = runmax;
    }
}
""",
        {"compiles": True, "has_main": False, "external_calls": False},
    ),
]


def benchmark_suite_samples() -> list[LoopSample]:
    """Outermost labelled loops of every fixed benchmark program."""
    samples: list[LoopSample] = []
    for file_id, (name, source, meta) in enumerate(BENCHMARK_PROGRAMS):
        extracted = extract_loops_from_source(
            source, origin="benchsuite", file_id=file_id,
            file_meta={**meta, "name": name},
        )
        samples.extend(extracted)
    return samples
