"""Ground-truth oracle for generated loops.

The paper cross-checks OMP_Serial labels with DiscoPoP and manual
inspection (sections 4.1/4.3).  This oracle plays that role for the
generated corpus: an idealised dependence analysis that — unlike the
simulated tools — knows which library calls are pure and accepts every
reduction/privatization idiom the generator emits.  Tests assert that
pragma-derived labels agree with it.
"""

from __future__ import annotations

from repro.cfront.nodes import CallExpr, Stmt
from repro.tools.deps import analyze_loop
from repro.tools.interp import MATH_FUNCTIONS

#: Call targets the oracle may treat as pure.
PURE_FUNCTIONS = frozenset(MATH_FUNCTIONS)


def oracle_parallel(loop: Stmt) -> bool:
    """Idealised parallelisability verdict for a generated loop."""
    deps = analyze_loop(loop, conditional_reductions=True)
    if deps.canonical is None:
        return False
    call_names = {c.name for c in loop.find_all(CallExpr)}
    all_pure = call_names <= PURE_FUNCTIONS
    return deps.is_doall(allow_reductions=True, assume_calls_pure=all_pure)
