"""The OMP_Serial dataset object: assembly, statistics, splits."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.dataset.corpus import CorpusGenerator, GITHUB_CATEGORY_COUNTS
from repro.dataset.sample import LoopSample, load_jsonl, save_jsonl
from repro.dataset.synth import SyntheticGenerator

#: Paper synthetic counts (Table 1): 200 reduction + 200 do-all parallel
#: programs, 700 non-parallel.
SYNTHETIC_COUNTS = {"reduction": 200, "do-all": 200, "non-parallel": 700}


@dataclass
class DatasetConfig:
    """Knobs for :func:`generate_omp_serial`.

    ``scale`` multiplies every Table-1 count; 1.0 reproduces the paper's
    32 570 GitHub loops + 1 100 synthetic programs, 0.05 gives a ~1 700
    loop corpus that trains in minutes on the numpy substrate.
    """

    scale: float = 1.0
    seed: int = 0
    include_synthetic: bool = True
    test_fraction: float = 0.2


@dataclass
class OMPSerial:
    """The assembled dataset."""

    samples: list[LoopSample] = field(default_factory=list)
    config: DatasetConfig = field(default_factory=DatasetConfig)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, idx):
        return self.samples[idx]

    # -- selections --------------------------------------------------------

    def parallel_loops(self) -> list[LoopSample]:
        return [s for s in self.samples if s.parallel]

    def non_parallel_loops(self) -> list[LoopSample]:
        return [s for s in self.samples if not s.parallel]

    def of_category(self, category: str | None) -> list[LoopSample]:
        return [s for s in self.samples if s.category == category]

    def of_origin(self, origin: str) -> list[LoopSample]:
        return [s for s in self.samples if s.origin == origin]

    # -- statistics (Table 1) ------------------------------------------------

    def stats(self) -> list[dict]:
        """Rows shaped like Table 1: per (origin, pragma type) statistics."""
        rows: list[dict] = []
        for origin in ("github", "synthetic"):
            pool = self.of_origin(origin)
            if not pool:
                continue
            parallel = [s for s in pool if s.parallel]
            categories = sorted(
                {s.category for s in parallel if s.category is not None}
            )
            for category in categories:
                subset = [s for s in parallel if s.category == category]
                rows.append(self._row(origin, "parallel", category, subset))
            non_par = [s for s in pool if not s.parallel]
            rows.append(self._row(origin, "non-parallel", "-", non_par))
        return rows

    @staticmethod
    def _row(origin: str, kind: str, category: str,
             subset: list[LoopSample]) -> dict:
        locs = [s.loc for s in subset]
        return {
            "source": origin,
            "type": kind,
            "pragma_type": category,
            "loops": len(subset),
            "function_call": sum(1 for s in subset if s.has_call),
            "nested_loops": sum(1 for s in subset if s.nested),
            "avg_loc": round(float(np.mean(locs)), 2) if locs else 0.0,
        }

    def summary(self) -> dict:
        return {
            "total": len(self.samples),
            "parallel": len(self.parallel_loops()),
            "non_parallel": len(self.non_parallel_loops()),
            "by_category": dict(Counter(
                s.category or "non-parallel" for s in self.samples
            )),
            "by_origin": dict(Counter(s.origin for s in self.samples)),
        }

    # -- splits ------------------------------------------------------------------

    def train_test_split(
        self, test_fraction: float | None = None, seed: int | None = None,
    ) -> tuple[list[LoopSample], list[LoopSample]]:
        """Stratified (by category) train/test split, split at file level.

        Splitting by file prevents near-duplicate loops from the same
        generated file leaking across the boundary.
        """
        frac = test_fraction if test_fraction is not None else self.config.test_fraction
        rng = np.random.default_rng(
            seed if seed is not None else self.config.seed + 17
        )
        file_keys = sorted({(s.origin, s.file_id) for s in self.samples})
        rng.shuffle(file_keys)
        n_test = int(len(file_keys) * frac)
        test_files = set(file_keys[:n_test])
        train, test = [], []
        for s in self.samples:
            (test if (s.origin, s.file_id) in test_files else train).append(s)
        return train, test

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        save_jsonl(self.samples, path)

    @classmethod
    def load(cls, path: str | Path,
             config: DatasetConfig | None = None) -> "OMPSerial":
        return cls(samples=load_jsonl(path), config=config or DatasetConfig())


def generate_omp_serial(config: DatasetConfig | None = None) -> OMPSerial:
    """Generate the full OMP_Serial dataset per the configuration."""
    config = config or DatasetConfig()
    corpus = CorpusGenerator(seed=config.seed)
    samples, _files = corpus.generate(scale=config.scale)
    if config.include_synthetic:
        synth = SyntheticGenerator(seed=config.seed + 101)
        n_red = max(1, int(round(SYNTHETIC_COUNTS["reduction"] * config.scale)))
        n_doall = max(1, int(round(SYNTHETIC_COUNTS["do-all"] * config.scale)))
        n_non = max(1, int(round(SYNTHETIC_COUNTS["non-parallel"] * config.scale)))
        samples.extend(synth.generate(n_red, n_doall, n_non))
    return OMPSerial(samples=samples, config=config)
