"""Dataset sample type and jsonl (de)serialization."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.cfront import parse_loop
from repro.cfront.nodes import Stmt


@dataclass
class LoopSample:
    """One labelled loop of OMP_Serial.

    ``source`` is the loop snippet *without* its pragma line;
    ``pragma`` the raw OpenMP pragma text when present.  ``parallel`` and
    ``category`` follow the paper's labelling rule (pragma presence).
    ``file_meta`` carries whole-file attributes used by the tools' §2
    coverage gates.
    """

    source: str
    parallel: bool
    category: str | None = None      # reduction/private/simd/target/parallel
    pragma: str | None = None
    origin: str = "github"           # "github" | "synthetic"
    has_call: bool = False
    nested: bool = False
    loc: int = 0
    file_id: int = -1
    file_meta: dict = field(default_factory=dict)
    #: array names that are pointer parameters of the enclosing function
    #: (static tools must assume they may alias)
    pointer_arrays: list[str] = field(default_factory=list)

    _ast_cache: Stmt | None = field(default=None, repr=False, compare=False)

    @property
    def label(self) -> int:
        return int(self.parallel)

    def ast(self) -> Stmt:
        """Parse (and cache) the loop statement."""
        if self._ast_cache is None:
            self._ast_cache = parse_loop(self.source)
        return self._ast_cache

    def to_dict(self) -> dict:
        d = asdict(self)
        d.pop("_ast_cache", None)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LoopSample":
        d = {k: v for k, v in d.items() if k != "_ast_cache"}
        return cls(**d)


def save_jsonl(samples: list[LoopSample], path: str | Path) -> None:
    with open(path, "w") as fh:
        for s in samples:
            fh.write(json.dumps(s.to_dict()) + "\n")


def load_jsonl(path: str | Path) -> list[LoopSample]:
    out: list[LoopSample] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(LoopSample.from_dict(json.loads(line)))
    return out
