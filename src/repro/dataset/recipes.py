"""Loop recipes: the generative grammar behind the GitHub-like corpus.

Every recipe emits a loop snippet plus (for parallel loops) the OpenMP
pragma a developer would write.  Recipes are grouped by OMP_Serial
category; :data:`CATEGORY_PROFILES` carries the per-category rates from
the paper's Table 1 (function-call rate, nested-loop rate, target LOC)
that the corpus generator samples against.

The generator guarantees label correctness by construction: parallel
recipes produce loops with no loop-carried dependence (reductions /
privatization aside), and non-parallel recipes produce genuinely
sequential loops (recurrences, same-cell writes, impure calls, ...).
Tests cross-check a sample of recipes against the dependence analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Table 1 rates: (call_rate, nested_rate, loc_target)
CATEGORY_PROFILES: dict[str, tuple[float, float, float]] = {
    "reduction": (279 / 3705, 887 / 3705, 6.35),
    "private": (680 / 6278, 2589 / 6278, 8.51),
    "simd": (42 / 3574, 201 / 3574, 2.65),
    "target": (99 / 2155, 191 / 2155, 3.04),
    "parallel": (0.08, 0.20, 4.5),          # plain parallel-for (not in Table 1)
    None: (3043 / 13972, 5931 / 13972, 8.59),  # non-parallel
}

#: Identifier pools; mixed-realism names like crawled code has.
_INDEX_NAMES = ["i", "j", "k", "idx", "n", "ii", "jj", "pos"]
_ARRAY_NAMES = ["a", "b", "c", "data", "buf", "vec", "arr", "out", "in_",
                "src", "dst", "tmp_arr", "values", "weights", "grid", "img"]
_SCALAR_NAMES = ["sum", "total", "acc", "prod", "res", "t", "tmp", "val",
                 "x", "y", "s", "count", "err", "delta", "scale"]
_BOUND_NAMES = ["n", "m", "size", "len", "N", "M", "count_", "limit", "dim"]
_PURE_CALLS = ["fabs", "sqrt", "sin", "cos", "exp", "log"]
_IMPURE_CALLS = ["process", "update_state", "emit", "handle", "push_item",
                 "log_value", "store_result"]


@dataclass
class LoopRecipe:
    """A generated loop with its ground-truth annotation."""

    body: str                  # loop source, no pragma line
    pragma: str | None         # full pragma text ("#pragma omp ...") or None
    category: str | None       # OMP_Serial category; None = non-parallel
    parallel: bool = False
    has_call: bool = False
    nested: bool = False

    @property
    def full_source(self) -> str:
        if self.pragma:
            return f"{self.pragma}\n{self.body}"
        return self.body


class _Names:
    """Per-loop fresh-name dealer (no collisions inside one loop)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.used: set[str] = set()

    def pick(self, pool: list[str]) -> str:
        candidates = [p for p in pool if p not in self.used]
        if not candidates:
            base = str(self.rng.choice(pool))
            name = f"{base}{int(self.rng.integers(2, 99))}"
            while name in self.used:
                name = f"{base}{int(self.rng.integers(2, 999))}"
        else:
            name = str(self.rng.choice(candidates))
        self.used.add(name)
        return name

    def index(self) -> str:
        return self.pick(_INDEX_NAMES)

    def array(self) -> str:
        return self.pick(_ARRAY_NAMES)

    def scalar(self) -> str:
        return self.pick(_SCALAR_NAMES)

    def bound(self) -> str:
        return self.pick(_BOUND_NAMES)


class RecipeGenerator:
    """Samples loop recipes per category, matching Table 1 profiles."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # -- public API -----------------------------------------------------------

    def generate(self, category: str | None) -> LoopRecipe:
        """One loop of the given category with profile-sampled traits."""
        if category not in CATEGORY_PROFILES:
            raise ValueError(f"unknown category {category!r}")
        call_rate, nested_rate, _ = CATEGORY_PROFILES[category]
        with_call = bool(self.rng.random() < call_rate)
        nested = bool(self.rng.random() < nested_rate)
        names = _Names(self.rng)
        if category == "reduction":
            return self._reduction(names, with_call, nested)
        if category == "private":
            return self._private(names, with_call, nested)
        if category == "simd":
            return self._simd(names, with_call, nested)
        if category == "target":
            return self._target(names, with_call, nested)
        if category == "parallel":
            return self._plain_parallel(names, with_call, nested)
        if category is None:
            return self._non_parallel(names, with_call, nested)
        raise ValueError(f"unknown category {category!r}")

    # -- shared snippets ----------------------------------------------------------

    def _bound(self, names: _Names) -> str:
        if self.rng.random() < 0.35:
            return str(int(self.rng.choice([64, 100, 128, 256, 1000, 1024, 4096])))
        return names.bound()

    def _const(self) -> str:
        return str(int(self.rng.integers(1, 10)))

    def _filler(self, names: _Names, i: str, count: int) -> list[str]:
        """Independent elementwise statements to pad body LOC."""
        lines = []
        for _ in range(count):
            dst, src = names.array(), names.array()
            op = str(self.rng.choice(["+", "-", "*"]))
            lines.append(f"{dst}[{i}] = {src}[{i}] {op} {self._const()};")
        return lines

    def _pad_around(self, core: list[str], filler: list[str]) -> list[str]:
        """Place filler before/after the core pattern, never inside it.

        The core statements stay adjacent — adjacency is what CFG and
        lexical edges encode, so the order-sensitive signal survives a
        2-layer receptive field — while the pattern's *absolute position*
        shifts with the prefix length, defeating clipped tree-position
        heuristics on longer bodies.
        """
        cut = int(self.rng.integers(0, len(filler) + 1))
        return filler[:cut] + list(core) + filler[cut:]

    def _nest_stmt(self, stmt: str, i: str, j: str) -> str:
        """2-D version of an elementwise statement, possibly 'messy'.

        Crawled nests are rarely textbook-affine; a share gets either a
        guard (``if`` — outside classic Pluto's SCoPs) or a coupled
        subscript (defeats the separable dependence tests of source-level
        parallelizers like autoPar).  Both stay genuinely parallel.
        """
        roll = self.rng.random()
        if roll < 0.25:
            inner = stmt.replace(f"[{i}]", f"[{i}][{j}]")
            return f"if ({j} > 1) {inner}"
        if roll < 0.50:
            return stmt.replace(f"[{i}]", f"[{i}][{j} + {i}]")
        return stmt.replace(f"[{i}]", f"[{i}][{j}]")

    # -- reduction recipes -----------------------------------------------------------

    def _reduction(self, names: _Names, with_call: bool,
                   nested: bool) -> LoopRecipe:
        i, s, arr = names.index(), names.scalar(), names.array()
        bound = self._bound(names)
        op = str(self.rng.choice(["+", "+", "+", "*"]))
        variant = int(self.rng.integers(0, 4))
        if with_call:
            fn = str(self.rng.choice(_PURE_CALLS))
            update = f"{s} {op}= {fn}({arr}[{i}]);"
        elif variant == 0:
            update = f"{s} {op}= {arr}[{i}];"
        elif variant == 1:
            arr2 = names.array()
            update = f"{s} = {s} {op} {arr}[{i}] * {arr2}[{i}];"
        elif variant == 2:
            arr2 = names.array()
            update = f"{s} {op}= {arr}[{i}] - {arr2}[{i}];"
        else:
            update = f"{s} = {arr}[{i}] {op} {s};" if op in ("+", "*") \
                else f"{s} {op}= {arr}[{i}];"
        omp_op = op
        pragma = f"#pragma omp parallel for reduction({omp_op}:{s})"
        if nested:
            j = names.index()
            inner_bound = self._bound(names)
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                f"    for (int {j} = 0; {j} < {inner_bound}; {j}++) {{\n"
                f"        {update.replace(f'[{i}]', f'[{i}][{j}]')}\n"
                f"    }}\n"
                f"}}"
            )
        else:
            extra = self._filler(names, i, int(self.rng.integers(0, 3)))
            lines = [update] + extra
            self.rng.shuffle(lines)
            inner = "\n".join(f"    {ln}" for ln in lines)
            body = f"for ({i} = 0; {i} < {bound}; {i}++) {{\n{inner}\n}}"
        return LoopRecipe(body=body, pragma=pragma, category="reduction",
                          parallel=True, has_call=with_call, nested=nested)

    # -- order-sensitive temp patterns -------------------------------------------

    def _temp_pattern(self, names: _Names, i: str, flipped: bool,
                      with_call: bool) -> tuple[list[str], list[str]]:
        """Scalar-temp statement group whose *order* decides the label.

        ``flipped=False``: write-then-use — the temp is privatizable and
        the loop is parallel.  ``flipped=True``: use-then-write — every
        iteration reads the previous iteration's value: loop-carried.
        Both orders produce the same multiset of nodes, so only order-
        aware representations (CFG edges, lexical chains, token
        positions) can separate them — the separation mechanism the
        paper attributes to the aug-AST.

        Returns ``(lines, private_vars)``.
        """
        t = names.scalar()
        a, b = names.array(), names.array()
        if with_call:
            fn = str(self.rng.choice(_PURE_CALLS))
            write = f"{t} = {fn}({a}[{i}]);"
        else:
            write = f"{t} = {a}[{i}] * {self._const()};"
        use = f"{b}[{i}] = {t} + {self._const()};"
        shape = int(self.rng.integers(0, 2))
        if shape == 1:
            u = names.scalar()
            chain = f"{u} = {t} - {a}[{i}];"
            use2 = f"{b}[{i}] = {u} + {self._const()};"
            lines = [chain, use2, write] if flipped else [write, chain, use2]
            return lines, [t, u]
        lines = [use, write] if flipped else [write, use]
        return lines, [t]

    # -- private recipes ------------------------------------------------------------

    def _private(self, names: _Names, with_call: bool,
                 nested: bool) -> LoopRecipe:
        i, t = names.index(), names.scalar()
        a, b = names.array(), names.array()
        bound = self._bound(names)
        if with_call:
            fn = str(self.rng.choice(_PURE_CALLS))
            first = f"{t} = {fn}({a}[{i}]);"
        else:
            first = f"{t} = {a}[{i}] * {self._const()};"
        use = f"{b}[{i}] = {t} + {t} * {self._const()};"
        if nested:
            j = names.index()
            c = names.array()
            inner_bound = self._bound(names)
            lines = [
                f"for ({i} = 0; {i} < {bound}; {i}++) {{",
                f"    {first}",
                f"    for (int {j} = 0; {j} < {inner_bound}; {j}++) {{",
                f"        {c}[{i}][{j}] = {t} * {a}[{i}] + {j};",
                f"    }}",
                f"    {b}[{i}] = {t};",
                f"}}",
            ]
            body = "\n".join(lines)
            pragma = f"#pragma omp parallel for private({t})"
        elif self.rng.random() < 0.70:
            # Order-sensitive write-then-use pattern (mirrored by the
            # non-parallel use-then-write twin).
            lines, privates = self._temp_pattern(names, i, flipped=False,
                                                 with_call=with_call)
            # Long bodies are common in crawled code; they exceed the
            # token model's input cap and push the pattern past the
            # bounded tree-position range, while CFG/lexical adjacency
            # keeps the order visible to the aug-AST.
            n_fill = int(self.rng.integers(8, 15)) \
                if self.rng.random() < 0.30 else int(self.rng.integers(2, 7))
            lines = self._pad_around(lines, self._filler(names, i, n_fill))
            inner = "\n".join(f"    {ln}" for ln in lines)
            body = f"for ({i} = 0; {i} < {bound}; {i}++) {{\n{inner}\n}}"
            pragma = f"#pragma omp parallel for private({', '.join(privates)})"
        else:
            extra_scalars = int(self.rng.integers(0, 2))
            lines = [first]
            privates = [t]
            for _ in range(extra_scalars):
                t2 = names.scalar()
                privates.append(t2)
                lines.append(f"{t2} = {t} - {a}[{i}];")
                lines.append(f"{b}[{i}] = {b}[{i}] + {t2};")
            lines.append(use)
            lines.extend(self._filler(names, i, int(self.rng.integers(0, 3))))
            inner = "\n".join(f"    {ln}" for ln in lines)
            body = f"for ({i} = 0; {i} < {bound}; {i}++) {{\n{inner}\n}}"
            pragma = f"#pragma omp parallel for private({', '.join(privates)})"
        return LoopRecipe(body=body, pragma=pragma, category="private",
                          parallel=True, has_call=with_call, nested=nested)

    # -- simd recipes ------------------------------------------------------------------

    def _simd(self, names: _Names, with_call: bool, nested: bool) -> LoopRecipe:
        i = names.index()
        a, b = names.array(), names.array()
        bound = self._bound(names)
        variant = int(self.rng.integers(0, 4))
        if with_call:
            fn = str(self.rng.choice(_PURE_CALLS))
            stmt = f"{a}[{i}] = {fn}({b}[{i}]);"
        elif variant == 0:
            c = names.array()
            stmt = f"{a}[{i}] = {b}[{i}] + {c}[{i}];"
        elif variant == 1:
            stmt = f"{a}[{i}] = {b}[{i}] * {self._const()};"
        elif variant == 2:
            c, d = names.array(), names.array()
            stmt = f"{a}[{i}] = {b}[{i}] * {c}[{i}] + {d}[{i}];"
        else:
            stmt = f"{a}[{i}] += {b}[{i}];"
        if nested:
            j = names.index()
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++)\n"
                f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++)\n"
                f"        {self._nest_stmt(stmt, i, j)}"
            )
        else:
            body = f"for ({i} = 0; {i} < {bound}; {i}++)\n    {stmt}"
        directive = str(self.rng.choice(
            ["#pragma omp simd", "#pragma omp parallel for simd"]
        ))
        return LoopRecipe(body=body, pragma=directive, category="simd",
                          parallel=True, has_call=with_call, nested=nested)

    # -- target recipes -----------------------------------------------------------------

    def _target(self, names: _Names, with_call: bool, nested: bool) -> LoopRecipe:
        i = names.index()
        a, b = names.array(), names.array()
        bound = self._bound(names)
        if with_call:
            fn = str(self.rng.choice(_PURE_CALLS))
            stmt = f"{a}[{i}] = {fn}({b}[{i}]) * {self._const()};"
        else:
            c = names.array()
            stmt = f"{a}[{i}] = {b}[{i}] * {c}[{i}];"
        if nested:
            j = names.index()
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++)\n"
                f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++)\n"
                f"        {self._nest_stmt(stmt, i, j)}"
            )
        else:
            body = f"for ({i} = 0; {i} < {bound}; {i}++)\n    {stmt}"
        pragma = str(self.rng.choice([
            f"#pragma omp target teams distribute parallel for map(to: {b}) map(from: {a})",
            "#pragma omp target parallel for",
            "#pragma omp target teams distribute parallel for",
        ]))
        return LoopRecipe(body=body, pragma=pragma, category="target",
                          parallel=True, has_call=with_call, nested=nested)

    # -- plain parallel-for recipes ----------------------------------------------------------

    def _plain_parallel(self, names: _Names, with_call: bool,
                        nested: bool) -> LoopRecipe:
        i = names.index()
        a = names.array()
        bound = self._bound(names)
        variant = int(self.rng.integers(0, 7))
        if with_call:
            fn = str(self.rng.choice(_PURE_CALLS))
            stmt = f"{a}[{i}] = {fn}({names.array()}[{i}]);"
        elif variant == 0:
            stmt = f"{a}[{i}] = 0;"
        elif variant == 1:
            stmt = f"{a}[{i}] = {names.array()}[{i}];"
        elif variant == 2:
            stmt = f"{a}[{i}] = {i} * {self._const()};"
        elif variant == 3:
            b = names.array()
            stmt = f"{a}[{i}] = {b}[{i}] > 0 ? {b}[{i}] : -{b}[{i}];"
        elif variant == 4:
            # Hard positive: same-index read-modify-write.  Token models
            # confuse this with a[i] = a[i-1] recurrences; the subscript
            # structure says it is iteration-local.
            b = names.array()
            stmt = f"{a}[{i}] = {a}[{i}] * {self._const()} + {b}[{i}];"
        elif variant == 5:
            # Hard positive: stride-2 write next to a stride-2 read with
            # odd offset — provably disjoint cells.
            stmt = f"{a}[2*{i}] = {a}[2*{i}+1] + {self._const()};"
        else:
            # Hard positive: write window shifted by a loop-invariant
            # symbol; reads come from a different array.
            b = names.array()
            off = names.bound()
            stmt = f"{a}[{i} + {off}] = {b}[{i}];"
        if nested:
            j = names.index()
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++)\n"
                f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++)\n"
                f"        {self._nest_stmt(stmt, i, j)}"
            )
        else:
            extra = self._filler(names, i, int(self.rng.integers(0, 2)))
            if extra:
                inner = "\n".join(f"    {ln}" for ln in [stmt] + extra)
                body = f"for ({i} = 0; {i} < {bound}; {i}++) {{\n{inner}\n}}"
            else:
                body = f"for ({i} = 0; {i} < {bound}; {i}++)\n    {stmt}"
        pragma = str(self.rng.choice(
            ["#pragma omp parallel for", "#pragma omp for",
             "#pragma omp parallel for schedule(static)"]
        ))
        return LoopRecipe(body=body, pragma=pragma, category="parallel",
                          parallel=True, has_call=with_call, nested=nested)

    # -- ambiguous (tool-resistant) parallel recipes ------------------------------------------

    def generate_ambiguous(self, with_pragma: bool) -> LoopRecipe:
        """A genuinely parallel loop every algorithm-based tool misses.

        These model the context-dependent annotation behaviour of real
        developers: the same pattern appears in the crawl both with a
        pragma (labelled parallel) and without (labelled non-parallel,
        though legally parallelisable).  Section 6.4 of the paper makes
        exactly this point about Graph2Par's "false positives".  Tools
        stay at zero false positives because none of these patterns is
        within their power: multi-statement reductions, conditional
        reductions, reductions through calls, and nested variants.
        """
        names = _Names(self.rng)
        i, s, arr = names.index(), names.scalar(), names.array()
        bound = self._bound(names)
        variant = int(self.rng.integers(0, 5))
        nested = False
        has_call = False
        if variant == 0:
            # Multi-statement reduction (Listing 4 family).
            c1, c2 = self._const(), self._const()
            lines = [f"{s} += {arr}[{i}] * {c1};", f"{s} = {s} + {c2};"]
            body = "for ({i} = 0; {i} < {b}; {i}++) {{\n{inner}\n}}".format(
                i=i, b=bound, inner="\n".join(f"    {ln}" for ln in lines))
        elif variant == 1:
            # Conditional reduction: valid OpenMP, invisible to the
            # pattern tables of autoPar/DiscoPoP, non-SCoP for Pluto.
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                f"    if ({arr}[{i}] > 0) {{\n"
                f"        {s} += {arr}[{i}];\n"
                f"    }}\n"
                f"}}"
            )
        elif variant == 2:
            # Reduction through a pure library call (Listing 1 family).
            fn = str(self.rng.choice(_PURE_CALLS))
            arr2 = names.array()
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++)\n"
                f"    {s} = {s} + {fn}({arr}[{i}] - {arr2}[{i}]);"
            )
            has_call = True
        elif variant == 3:
            # Nested multi-statement reduction.
            j = names.index()
            c = self._const()
            body = (
                f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++) {{\n"
                f"        {s} += {arr}[{i}][{j}];\n"
                f"        {s} = {s} + {c};\n"
                f"    }}\n"
                f"}}"
            )
            nested = True
        else:
            # Conditional reduction over a difference, with filler.
            arr2 = names.array()
            filler = self._filler(names, i, int(self.rng.integers(1, 3)))
            lines = [
                f"if ({arr}[{i}] > {arr2}[{i}]) {{",
                f"    {s} += {arr}[{i}] - {arr2}[{i}];",
                f"}}",
            ] + filler
            body = "for ({i} = 0; {i} < {b}; {i}++) {{\n{inner}\n}}".format(
                i=i, b=bound, inner="\n".join(f"    {ln}" for ln in lines))
        pragma = f"#pragma omp parallel for reduction(+:{s})" if with_pragma \
            else None
        return LoopRecipe(
            body=body, pragma=pragma,
            category="reduction" if with_pragma else None,
            parallel=with_pragma, has_call=has_call, nested=nested,
        )

    # -- non-parallel recipes -----------------------------------------------------------------

    def _non_parallel(self, names: _Names, with_call: bool,
                      nested: bool) -> LoopRecipe:
        i = names.index()
        a, b = names.array(), names.array()
        bound = self._bound(names)
        if nested:
            j = names.index()
            if self.rng.random() < 0.40:
                # Nested mirror twin of the nested-private pattern: the
                # inner loop consumes the temp BEFORE this iteration
                # writes it — the value crosses outer iterations.  Same
                # node multiset as the parallel form; only order (CFG /
                # token position) separates them.
                t = names.scalar()
                c = names.array()
                body = (
                    f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                    f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++) {{\n"
                    f"        {c}[{i}][{j}] = {t} * {a}[{i}] + {j};\n"
                    f"    }}\n"
                    f"    {t} = {a}[{i}] * {self._const()};\n"
                    f"    {b}[{i}] = {t};\n"
                    f"}}"
                )
                return LoopRecipe(body=body, pragma=None, category=None,
                                  parallel=False, has_call=False, nested=True)
            variant = int(self.rng.integers(0, 3))
            call_line = ""
            if with_call:
                fn = str(self.rng.choice(_IMPURE_CALLS))
                call_line = f"        {fn}(&{b}[{i}][{j}], {i});\n"
            if variant == 0:
                # Cross-outer-iteration dependence in a nest.
                inner = (
                    f"        {a}[{i}][{j}] = {a}[{i}-1][{j}] + {b}[{i}][{j}];\n"
                )
                body = (
                    f"for ({i} = 1; {i} < {bound}; {i}++) {{\n"
                    f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++) {{\n"
                    f"{call_line}{inner}"
                    f"    }}\n"
                    f"}}"
                )
            elif variant == 1:
                # Wavefront-style diagonal dependence.
                inner = (
                    f"        {a}[{i}][{j}] = {a}[{i}][{j}-1] + {a}[{i}-1][{j}];\n"
                )
                body = (
                    f"for ({i} = 1; {i} < {bound}; {i}++) {{\n"
                    f"    for (int {j} = 1; {j} < {self._bound(names)}; {j}++) {{\n"
                    f"{call_line}{inner}"
                    f"    }}\n"
                    f"}}"
                )
            else:
                s = names.scalar()
                # Sequential accumulation threaded through the nest.
                inner = (
                    f"        {s} = {s} * {a}[{i}][{j}] + {b}[{i}][{j}];\n"
                )
                body = (
                    f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                    f"    for (int {j} = 0; {j} < {self._bound(names)}; {j}++) {{\n"
                    f"{call_line}{inner}"
                    f"    }}\n"
                    f"    {b}[{i}][0] = {b}[{i}][0] + 1;\n"
                    f"}}"
                )
            return LoopRecipe(body=body, pragma=None, category=None,
                              parallel=False, has_call=with_call, nested=True)
        if with_call:
            variant = int(self.rng.integers(0, 3))
            fn = str(self.rng.choice(_IMPURE_CALLS))
            if variant == 0:
                body = (
                    f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                    f"    {fn}(&{a}[{i}], {i});\n"
                    f"    {a}[{i}] = {a}[{i}] + {b}[{i}];\n"
                    f"}}"
                )
            elif variant == 1:
                body = (
                    f"for ({i} = 0; {i} < {bound}; {i}++)\n"
                    f'    printf("%d %f\\n", {i}, {a}[{i}]);'
                )
            else:
                s = names.scalar()
                body = (
                    f"for ({i} = 0; {i} < {bound}; {i}++) {{\n"
                    f"    {s} = {fn}(&{s});\n"
                    f"    {a}[{i}] = {s};\n"
                    f"}}"
                )
            return LoopRecipe(body=body, pragma=None, category=None,
                              parallel=False, has_call=True, nested=False)
        if self.rng.random() < 0.38:
            # Mirror twin of the private pattern: use-then-write.
            lines, _ = self._temp_pattern(names, i, flipped=True,
                                          with_call=False)
            n_fill = int(self.rng.integers(8, 15)) \
                if self.rng.random() < 0.30 else int(self.rng.integers(2, 7))
            lines = self._pad_around(lines, self._filler(names, i, n_fill))
            inner = "\n".join(f"    {ln}" for ln in lines)
            body = f"for ({i} = 0; {i} < {bound}; {i}++) {{\n{inner}\n}}"
            return LoopRecipe(body=body, pragma=None, category=None,
                              parallel=False, has_call=False, nested=False)
        variant = int(self.rng.integers(0, 9))
        filler = self._filler(names, i, int(self.rng.integers(2, 6)))
        if variant == 0:
            core = [f"{a}[{i}] = {a}[{i}-1] + {b}[{i}];"]
            start = 1
        elif variant == 1:
            core = [f"{a}[{i}] = {a}[{i}-1] + {a}[{i}-2];"]
            start = 2
        elif variant == 2:
            s = names.scalar()
            core = [f"{s} = {s} * {a}[{i}] + {b}[{i}];",
                    f"{b}[{i}] = {s} + {self._const()};"]
            start = 0
        elif variant == 3:
            core = [f"{a}[0] = {a}[0] > {b}[{i}] ? {a}[0] - 1 : {b}[{i}];"]
            start = 0
        elif variant == 4:
            s = names.scalar()
            body = (
                f"while ({s} > 1) {{\n"
                f"    {s} = {s} / 2;\n"
                f"    {a}[{s}] = {s};\n"
                f"}}"
            )
            return LoopRecipe(body=body, pragma=None, category=None,
                              parallel=False, has_call=False, nested=False)
        elif variant == 5:
            # Hard negative: reduction-looking update whose value escapes
            # into the output stream each iteration.
            s = names.scalar()
            core = [f"{s} = {s} - {a}[{i}];", f"{b}[{i}] = {s};"]
            start = 0
        elif variant == 6:
            # Hard negative: write shifted by +1 against a same-array
            # read — overlapping windows, loop-carried.
            core = [f"{a}[{i}+1] = {a}[{i}] * {self._const()} + {b}[{i}];"]
            start = 0
        elif variant == 7:
            # Hard negative: indirect write; collisions unknowable
            # statically, and real collisions occur dynamically.
            idx = names.array()
            core = [f"{a}[{idx}[{i}]] = {a}[{idx}[{i}]] + {b}[{i}];"]
            start = 0
        else:
            s = names.scalar()
            core = [f"{b}[{i}] = {s};", f"{s} = {a}[{i}] - {s};"]
            start = 0
        lines = core + filler
        self.rng.shuffle(lines)
        inner = "\n".join(f"    {ln}" for ln in lines)
        body = f"for ({i} = {start}; {i} < {bound}; {i}++) {{\n{inner}\n}}"
        return LoopRecipe(body=body, pragma=None, category=None,
                          parallel=False, has_call=False, nested=False)
