"""Loop extraction and labelling from C source text.

Mirrors the paper's data-processing step (section 4.2): parse the file
(the compilability check), walk every function body, emit one sample per
loop, labelled by the OpenMP pragma attached to it.  Nested loops yield a
sample for the outermost statement only — the paper's loop count treats a
nest as one (outer) loop with ``Nested Loops`` set.
"""

from __future__ import annotations

from repro.cfront import parse_source, unparse
from repro.cfront.nodes import LOOP_KINDS, Stmt
from repro.cfront.unparse import loc_of
from repro.dataset.sample import LoopSample
from repro.pragma import loop_label
from repro.tools.access import collect_accesses


def _outermost_loops(root) -> list[Stmt]:
    """Loop statements not contained in another loop."""
    out: list[Stmt] = []

    def visit(node, inside_loop: bool) -> None:
        is_loop = isinstance(node, LOOP_KINDS)
        if is_loop and not inside_loop:
            out.append(node)
        for child in node.children():
            visit(child, inside_loop or is_loop)

    visit(root, False)
    return out


def _function_loop_samples(
    fn,
    origin: str = "github",
    file_id: int = -1,
    file_meta: dict | None = None,
) -> list[LoopSample]:
    """One labelled sample per outermost loop of one function body."""
    pointer_params = sorted(
        p.name for p in fn.params if p.var_type.pointers > 0
    )
    samples: list[LoopSample] = []
    for loop in _outermost_loops(fn.body):
        parallel, category = loop_label(loop.pragmas)
        pragma = loop.pragmas[0] if loop.pragmas else None
        # Re-emit the loop without its pragma: models must not see it.
        saved = loop.pragmas
        loop.pragmas = []
        loop_src = unparse(loop)
        loc = loc_of(loop)
        loop.pragmas = saved
        summary = collect_accesses(getattr(loop, "body", loop))
        # One walk collects every name; checking each pointer param with
        # its own walk made extraction quadratic in parameter count.
        names_in_loop = {
            name for n in loop.walk()
            if (name := getattr(n, "name", None)) is not None
        }
        samples.append(LoopSample(
            source=loop_src,
            parallel=parallel,
            category=category,
            pragma=pragma,
            origin=origin,
            has_call=summary.has_calls,
            nested=summary.has_inner_loop,
            loc=loc,
            file_id=file_id,
            file_meta=dict(file_meta or {}),
            pointer_arrays=[
                name for name in pointer_params if name in names_in_loop
            ],
        ))
    return samples


def extract_loops_by_function(
    source: str,
    origin: str = "github",
    file_id: int = -1,
    file_meta: dict | None = None,
):
    """Per-function loop extraction: ``[(function, samples), ...]``.

    Grouping by function keeps file-level analyses (liveness for
    ``lastprivate``) aligned with their loops even when one function
    misbehaves — consumers can fall back per function instead of
    dropping context for the whole file.
    """
    tu = parse_source(source)
    return [
        (fn, _function_loop_samples(fn, origin, file_id, file_meta))
        for fn in tu.functions()
        if fn.body is not None
    ]


def extract_loops_from_source(
    source: str,
    origin: str = "github",
    file_id: int = -1,
    file_meta: dict | None = None,
) -> list[LoopSample]:
    """Parse a C file and return one labelled sample per outermost loop.

    Raises :class:`ParseError`/:class:`LexError` when the file does not
    "compile" — callers drop such files, like the paper dropped the
    10 269 files Clang rejected.
    """
    return [
        sample
        for _, samples in extract_loops_by_function(
            source, origin=origin, file_id=file_id, file_meta=file_meta,
        )
        for sample in samples
    ]
