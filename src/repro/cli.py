"""Command-line entry points.

``repro-dataset``  generate OMP_Serial and write it as jsonl (+ stats)
``repro-train``    train Graph2Par / PragFormer / the GCN ablation
``repro-eval``     regenerate the paper's tables and figures
"""

from __future__ import annotations

import argparse
import sys


def dataset_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dataset",
        description="Generate the OMP_Serial dataset.",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's Table-1 counts (1.0 = 32k loops)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="omp_serial.jsonl")
    parser.add_argument("--no-synthetic", action="store_true")
    args = parser.parse_args(argv)

    from repro.dataset import DatasetConfig, generate_omp_serial
    from repro.eval.result import render_table

    dataset = generate_omp_serial(DatasetConfig(
        scale=args.scale, seed=args.seed,
        include_synthetic=not args.no_synthetic,
    ))
    dataset.save(args.out)
    print(f"wrote {len(dataset)} loops to {args.out}")
    print(render_table(dataset.stats()))
    return 0


def train_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train a model on OMP_Serial.",
    )
    parser.add_argument("--model", choices=["graph2par", "hgt-ast",
                                            "pragformer", "gcn"],
                        default="graph2par")
    parser.add_argument("--task", choices=["parallel", "private", "reduction",
                                           "simd", "target"],
                        default="parallel")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--dim", type=int, default=48)
    parser.add_argument("--out", default=None,
                        help="npz path for the trained weights")
    args = parser.parse_args(argv)

    from repro.eval.config import ExperimentConfig
    from repro.eval.context import ExperimentContext
    from repro.nn import save_state

    config = ExperimentConfig(scale=args.scale, seed=args.seed,
                              epochs=args.epochs, dim=args.dim)
    ctx = ExperimentContext(config)
    if args.model == "graph2par":
        trained = ctx.graph_model(representation="aug", task=args.task)
    elif args.model == "hgt-ast":
        trained = ctx.graph_model(representation="vanilla", task=args.task)
    elif args.model == "gcn":
        trained = ctx.gcn_model(task=args.task)
    else:
        trained = ctx.token_model(task=args.task)
    _, test = ctx.split
    metrics = trained.evaluate_samples(test)
    print(f"{args.model} on task={args.task}: {metrics}")
    if args.out:
        save_state(trained.trainer.model, args.out)
        print(f"weights saved to {args.out}")
    return 0


def eval_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="subset of experiments (default: all); e.g. "
                             "table2 figure2")
    parser.add_argument("--profile", choices=["fast", "standard", "paper"],
                        default="fast")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the profile's dataset scale")
    args = parser.parse_args(argv)

    from repro.eval import run_all
    from repro.eval.config import ExperimentConfig

    config = getattr(ExperimentConfig, args.profile)()
    if args.scale is not None:
        config = config.with_(scale=args.scale)
    only = tuple(args.experiments) or None
    run_all(config, only=only, verbose=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(eval_main())
