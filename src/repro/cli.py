"""Command-line entry points.

``repro-dataset``  generate OMP_Serial and write it as jsonl (+ stats)
``repro-train``    train Graph2Par / PragFormer / the GCN ablation
``repro-eval``     regenerate the paper's tables and figures

``repro <command>`` bundles them, plus:

``repro suggest-dir``  the sharded, streaming suggestion service over
                       a whole directory of C files (``--shards N``
                       fans the pipeline out end-to-end across worker
                       processes; ``--stream`` emits NDJSON per file
                       as results land)
``repro bundle``       pack/unpack a saved suggester bundle to/from a
                       single archive file
``repro cache``        maintain a persistent suggestion cache
                       (``gc`` prunes by size/age, ``stats`` reports
                       entry counts/bytes per layer and the in-process
                       analysis memo counters)
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def dataset_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dataset",
        description="Generate the OMP_Serial dataset.",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's Table-1 counts (1.0 = 32k loops)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="omp_serial.jsonl")
    parser.add_argument("--no-synthetic", action="store_true")
    args = parser.parse_args(argv)

    from repro.dataset import DatasetConfig, generate_omp_serial
    from repro.eval.result import render_table

    dataset = generate_omp_serial(DatasetConfig(
        scale=args.scale, seed=args.seed,
        include_synthetic=not args.no_synthetic,
    ))
    dataset.save(args.out)
    print(f"wrote {len(dataset)} loops to {args.out}")
    print(render_table(dataset.stats()))
    return 0


def train_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train a model on OMP_Serial.",
    )
    parser.add_argument("--model", choices=["graph2par", "hgt-ast",
                                            "pragformer", "gcn"],
                        default="graph2par")
    parser.add_argument("--task", choices=["parallel", "private", "reduction",
                                           "simd", "target"],
                        default="parallel")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--dim", type=int, default=48)
    parser.add_argument("--out", default=None,
                        help="npz path for the trained weights")
    parser.add_argument("--bundle-out", default=None,
                        help="deployable suggester bundle (parallel + all "
                             "clause models + vocab): a directory, or a "
                             "single archive file when the path ends in "
                             ".tar.gz/.tgz; serve it with "
                             "`repro suggest-dir --bundle`")
    args = parser.parse_args(argv)

    from repro.eval.config import ExperimentConfig
    from repro.eval.context import get_context
    from repro.nn import save_state

    if args.bundle_out and args.model != "graph2par":
        print("--bundle-out bundles the aug-AST suggester; "
              "use --model graph2par", file=sys.stderr)
        return 2
    config = ExperimentConfig(scale=args.scale, seed=args.seed,
                              epochs=args.epochs, dim=args.dim)
    ctx = get_context(config)
    if args.model == "graph2par":
        trained = ctx.graph_model(representation="aug", task=args.task)
    elif args.model == "hgt-ast":
        trained = ctx.graph_model(representation="vanilla", task=args.task)
    elif args.model == "gcn":
        trained = ctx.gcn_model(task=args.task)
    else:
        trained = ctx.token_model(task=args.task)
    _, test = ctx.split
    metrics = trained.evaluate_samples(test)
    print(f"{args.model} on task={args.task}: {metrics}")
    if args.out:
        save_state(trained.trainer.model, args.out)
        print(f"weights saved to {args.out}")
    if args.bundle_out:
        from repro.artifacts import SuggesterBundle

        bundle = SuggesterBundle.from_context(ctx)
        if args.bundle_out.endswith((".tar.gz", ".tgz")):
            bundle.export_archive(args.bundle_out)
        else:
            bundle.save(args.bundle_out)
        print(f"bundle saved to {args.bundle_out} ({bundle.describe()})")
    return 0


def eval_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="subset of experiments (default: all); e.g. "
                             "table2 figure2")
    parser.add_argument("--profile", choices=["fast", "standard", "paper"],
                        default="fast")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the profile's dataset scale")
    args = parser.parse_args(argv)

    from repro.eval import run_all
    from repro.eval.config import ExperimentConfig

    config = getattr(ExperimentConfig, args.profile)()
    if args.scale is not None:
        config = config.with_(scale=args.scale)
    only = tuple(args.experiments) or None
    run_all(config, only=only, verbose=True)
    return 0


def _shards_arg(value: str):
    """``--shards`` parser: a positive integer or the string ``auto``."""
    if value == "auto":
        return "auto"
    try:
        shards = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}")
    if shards < 1:
        raise argparse.ArgumentTypeError("shard count must be >= 1")
    return shards


def suggest_dir_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro suggest-dir",
        description="Suggest complete OpenMP pragmas for every loop of "
                    "every C file under a directory (batched serving).",
    )
    parser.add_argument("directory", help="directory of C files")
    parser.add_argument("--pattern", default="*.c",
                        help="glob for source files (default: *.c)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parse-stage worker processes (1 = in-process)")
    parser.add_argument("--shards", type=_shards_arg, default=1,
                        help="end-to-end corpus shards: the whole parse/"
                             "encode/forward pipeline runs in N worker "
                             "processes (1 = in-process, 'auto' picks a "
                             "count from corpus size and CPUs)")
    parser.add_argument("--stream", action="store_true",
                        help="emit one NDJSON record per file on stdout "
                             "as results complete (summary goes to "
                             "stderr)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="graphs per forward pass")
    parser.add_argument("--bundle", default=None,
                        help="serve a trained bundle saved by "
                             "`repro train --bundle-out` (zero training "
                             "steps); default trains fast-profile models "
                             "on the fly")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent suggestion cache: warm runs over "
                             "unchanged files skip parsing and inference")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="training-set scale for the on-the-fly models")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--out", default=None,
                        help="write suggestions to this JSON file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-loop output")
    args = parser.parse_args(argv)

    from repro.serve import ServeConfig, build_service

    serve_config = ServeConfig(workers=args.workers,
                               batch_size=args.batch_size,
                               shards=args.shards)
    if args.bundle:
        from repro.artifacts import ArtifactError, SuggesterBundle

        try:
            bundle = SuggesterBundle.load(args.bundle)
        except ArtifactError as exc:
            print(f"cannot load bundle: {exc}", file=sys.stderr)
            return 2
        print(f"loaded {bundle.describe()}",
              file=sys.stderr if args.stream else sys.stdout)
        service = build_service(bundle, serve_config,
                                cache_dir=args.cache_dir)
    else:
        from repro.eval.config import ExperimentConfig
        from repro.eval.context import get_context

        ctx = get_context(ExperimentConfig(
            scale=args.scale, seed=args.seed, epochs=args.epochs,
            dim=args.dim,
        ))
        service = build_service(ctx, serve_config,
                                cache_dir=args.cache_dir)
    from pathlib import Path

    from repro.serve import ServeError

    paths = sorted(Path(args.directory).rglob(args.pattern))
    summary_out = sys.stderr if args.stream else sys.stdout
    start = time.perf_counter()
    try:
        if args.stream:
            # as-completed: the first finished file prints long before
            # the last shard completes; stdout carries pure NDJSON
            results = []
            for r in service.stream_paths(paths, ordered=False):
                print(json.dumps({
                    "file": r.name,
                    "error": r.error,
                    "suggestions": [s.to_dict() for s in r.suggestions],
                }), flush=True)
                results.append(r)
            by_name = {r.name: r for r in results}
            results = [by_name[str(p)] for p in paths]
        else:
            results = service.suggest_paths(paths)
    except ServeError as exc:
        print(f"serving failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if not results:
        print(f"no files matching {args.pattern!r} under {args.directory}",
              file=summary_out)
        return 1

    n_loops = sum(len(r.suggestions) for r in results)
    n_errors = sum(1 for r in results if r.error)
    if not args.stream:              # per-file records already emitted
        for r in results:
            if r.error:
                print(f"{r.name}: SKIPPED ({r.error})")
                continue
            print(f"{r.name}: {len(r.suggestions)} loops, "
                  f"{r.n_parallel} parallelizable")
            if not args.quiet:
                for s in r.suggestions:
                    print("  " + (s.pragma if s.parallel
                                  else f"// sequential: {s.rationale}"))
    rate = n_loops / elapsed if elapsed > 0 else float("inf")
    print(f"{n_loops} loops across {len(results)} files "
          f"({n_errors} unparseable) in {elapsed:.2f}s "
          f"({rate:.0f} loops/s)", file=summary_out)
    if args.cache_dir:
        stats = service.cache_stats()
        store, forwards = stats["store"], stats["forwards"]
        print(f"cache: {store['suggest_hits']} files warm, "
              f"{store['suggest_misses']} computed "
              f"({forwards['graphs']} graph forwards)", file=summary_out)
    if args.out:
        payload = [
            {
                "file": r.name,
                "error": r.error,
                "suggestions": [s.to_dict() for s in r.suggestions],
            }
            for r in results
        ]
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"suggestions written to {args.out}")
    return 0


def bundle_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bundle",
        description="Convert a saved suggester bundle between its "
                    "directory form and a single archive file.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    pack = sub.add_parser("pack",
                          help="bundle directory -> one archive file")
    pack.add_argument("directory", help="saved bundle directory")
    pack.add_argument("archive", help="output archive path (.tar.gz)")
    unpack = sub.add_parser("unpack",
                            help="archive file -> bundle directory")
    unpack.add_argument("archive", help="bundle archive file")
    unpack.add_argument("directory", help="output directory")
    args = parser.parse_args(argv)

    from repro.artifacts import BundleError, pack_bundle, unpack_bundle

    try:
        if args.action == "pack":
            path = pack_bundle(args.directory, args.archive)
            print(f"packed {args.directory} -> {path} "
                  f"({path.stat().st_size} bytes)")
        else:
            path = unpack_bundle(args.archive, args.directory)
            print(f"unpacked {args.archive} -> {path}")
    except BundleError as exc:
        print(f"bundle {args.action} failed: {exc}", file=sys.stderr)
        return 2
    return 0


def cache_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Maintain a persistent suggestion cache "
                    "(the --cache-dir of `repro suggest-dir`).",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    gc = sub.add_parser("gc", help="prune the cache by size and/or age")
    gc.add_argument("cache_dir", help="cache directory to prune")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="keep at most this many bytes of entries "
                         "(least-recently-written evicted first)")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="drop entries older than this many days")
    stats = sub.add_parser(
        "stats",
        help="inspect a cache directory (entry counts/bytes per layer) "
             "plus the in-process analysis memo counters")
    stats.add_argument("cache_dir", help="cache directory to inspect")
    stats.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON object")
    args = parser.parse_args(argv)

    if args.action == "stats":
        from repro.serve import SuggestionStore
        from repro.tools.deps import cache_stats as deps_cache_stats

        # note: no store hit/miss counters here — those are per-process
        # (this process did no lookups); the on-disk scan is the truth
        payload = {
            "store": SuggestionStore(args.cache_dir).describe(),
            "analyze_loop": deps_cache_stats(),
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        d = payload["store"]
        if not d["exists"]:
            print(f"cache {d['root']}: not created yet")
        else:
            print(f"cache {d['root']}: {d['total_bytes']} bytes")
            print(f"  parse: {d['parse']['entries']} entries "
                  f"({d['parse']['bytes']} bytes)")
            print(f"  suggest: {d['suggest']['entries']} entries "
                  f"({d['suggest']['bytes']} bytes) across "
                  f"{d['suggest']['models']} model fingerprints")
        memo = payload["analyze_loop"]
        print(f"analyze_loop memo (this process): {memo['entries']} "
              f"entries, {memo['hits']} hits, {memo['misses']} misses")
        return 0

    if args.max_bytes is None and args.max_age_days is None:
        print("cache gc: pass --max-bytes and/or --max-age-days "
              "(otherwise there is nothing to prune)", file=sys.stderr)
        return 2
    from repro.serve import SuggestionStore

    result = SuggestionStore(args.cache_dir).gc(
        max_bytes=args.max_bytes, max_age_days=args.max_age_days,
    )
    print(f"cache gc: removed {result['removed_files']} entries "
          f"({result['removed_bytes']} bytes), kept "
          f"{result['kept_files']} ({result['kept_bytes']} bytes)")
    return 0


_COMMANDS = {
    "dataset": dataset_main,
    "train": train_main,
    "eval": eval_main,
    "suggest-dir": suggest_dir_main,
    "bundle": bundle_main,
    "cache": cache_main,
}


def main(argv: list[str] | None = None) -> int:
    """The ``repro`` umbrella command."""
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = f"usage: repro {{{','.join(_COMMANDS)}}} [options]"
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0 if argv else 2
    command = argv[0]
    if command not in _COMMANDS:
        print(f"unknown command {command!r}\n{usage}", file=sys.stderr)
        return 2
    return _COMMANDS[command](argv[1:])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
