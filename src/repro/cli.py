"""Command-line entry points.

``repro-dataset``  generate OMP_Serial and write it as jsonl (+ stats)
``repro-train``    train Graph2Par / PragFormer / the GCN ablation
``repro-eval``     regenerate the paper's tables and figures

``repro <command>`` bundles them, plus:

``repro suggest-dir``  the sharded, streaming suggestion service over
                       a whole directory of C files (``--shards N``
                       fans the pipeline out end-to-end across worker
                       processes; ``--stream`` emits NDJSON per file
                       as results land; ``--server ADDR`` serves the
                       same request through a running daemon instead
                       of building models in-process)
``repro serve``        the long-lived suggestion daemon:
                       ``--listen HOST:PORT`` / ``--unix SOCK``
                       multiplexes many clients and corpora over one
                       warm service (``--bundle [NAME=]PATH`` serves
                       trained bundles by name)
``repro bundle``       pack/unpack a saved suggester bundle to/from a
                       single archive file
``repro cache``        maintain a persistent suggestion cache
                       (``gc`` prunes by size/age, ``stats`` reports
                       entry counts/bytes per layer and the in-process
                       analysis memo counters, ``fsck`` removes torn
                       or unreadable entries left by crashed writers;
                       a ``net:HOST:PORT`` cache dir maintains a
                       daemon's store over the wire)
``repro ping``         probe a running daemon: round-trip latency,
                       queue depth, capabilities, degraded bundles

Distributed serving: ``repro suggest-dir --peers A,B --bundle X``
fans the corpus out across running daemons as remote shards — the
bundle archive is pushed to each peer at most once (content-addressed
by SHA-256), peer loss mid-run requeues onto the remaining peers, and
results are byte-identical to the in-process run.

Fault tolerance surfaces here too: ``--faults PLAN`` (on ``serve``,
``suggest-dir`` and ``rewrite-dir``) arms a deterministic
:class:`~repro.serve.faults.FaultPlan` in the process *and* its shard
workers; streaming runs emit supervisor failures (quarantined files,
exhausted retries, expired deadlines) as structured
``{"event": "error", "code": ..., "file": ...}`` NDJSON records
instead of aborting.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def dataset_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dataset",
        description="Generate the OMP_Serial dataset.",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's Table-1 counts (1.0 = 32k loops)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="omp_serial.jsonl")
    parser.add_argument("--no-synthetic", action="store_true")
    args = parser.parse_args(argv)

    from repro.dataset import DatasetConfig, generate_omp_serial
    from repro.eval.result import render_table

    dataset = generate_omp_serial(DatasetConfig(
        scale=args.scale, seed=args.seed,
        include_synthetic=not args.no_synthetic,
    ))
    dataset.save(args.out)
    print(f"wrote {len(dataset)} loops to {args.out}")
    print(render_table(dataset.stats()))
    return 0


def train_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train a model on OMP_Serial.",
    )
    parser.add_argument("--model", choices=["graph2par", "hgt-ast",
                                            "pragformer", "gcn"],
                        default="graph2par")
    parser.add_argument("--task", choices=["parallel", "private", "reduction",
                                           "simd", "target"],
                        default="parallel")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--dim", type=int, default=48)
    parser.add_argument("--out", default=None,
                        help="npz path for the trained weights")
    parser.add_argument("--bundle-out", default=None,
                        help="deployable suggester bundle (parallel + all "
                             "clause models + vocab): a directory, or a "
                             "single archive file when the path ends in "
                             ".tar.gz/.tgz; serve it with "
                             "`repro suggest-dir --bundle`")
    args = parser.parse_args(argv)

    from repro.eval.config import ExperimentConfig
    from repro.eval.context import get_context
    from repro.nn import save_state

    if args.bundle_out and args.model != "graph2par":
        print("--bundle-out bundles the aug-AST suggester; "
              "use --model graph2par", file=sys.stderr)
        return 2
    config = ExperimentConfig(scale=args.scale, seed=args.seed,
                              epochs=args.epochs, dim=args.dim)
    ctx = get_context(config)
    if args.model == "graph2par":
        trained = ctx.graph_model(representation="aug", task=args.task)
    elif args.model == "hgt-ast":
        trained = ctx.graph_model(representation="vanilla", task=args.task)
    elif args.model == "gcn":
        trained = ctx.gcn_model(task=args.task)
    else:
        trained = ctx.token_model(task=args.task)
    _, test = ctx.split
    metrics = trained.evaluate_samples(test)
    print(f"{args.model} on task={args.task}: {metrics}")
    if args.out:
        save_state(trained.trainer.model, args.out)
        print(f"weights saved to {args.out}")
    if args.bundle_out:
        from repro.artifacts import SuggesterBundle

        bundle = SuggesterBundle.from_context(ctx)
        if args.bundle_out.endswith((".tar.gz", ".tgz")):
            bundle.export_archive(args.bundle_out)
        else:
            bundle.save(args.bundle_out)
        print(f"bundle saved to {args.bundle_out} ({bundle.describe()})")
    return 0


def eval_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="subset of experiments (default: all); e.g. "
                             "table2 figure2")
    parser.add_argument("--profile", choices=["fast", "standard", "paper"],
                        default="fast")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the profile's dataset scale")
    args = parser.parse_args(argv)

    from repro.eval import run_all
    from repro.eval.config import ExperimentConfig

    config = getattr(ExperimentConfig, args.profile)()
    if args.scale is not None:
        config = config.with_(scale=args.scale)
    only = tuple(args.experiments) or None
    run_all(config, only=only, verbose=True)
    return 0


def _ndjson_record(record: dict) -> None:
    """One NDJSON record on stdout, flushed immediately.

    Per-record flushing is load-bearing: downstream consumers (and the
    end-of-stream detector reading for ``{"event": "done"}``) must see
    each record as it lands, not when a block buffer happens to fill.
    """
    sys.stdout.write(json.dumps(record) + "\n")
    sys.stdout.flush()


#: stable codes of supervisor-emitted per-file failures — these carry
#: a "code: detail" error string and stream as {"event": "error"}
#: records; plain parse errors do not and stay inline
ERROR_CODES = ("worker-retry", "quarantined", "deadline-exceeded")


def _structured_error(name: str, error: str | None) -> dict | None:
    """The ``{"event": "error", ...}`` record for a structured failure,
    or ``None`` when ``error`` is absent or an ordinary parse error."""
    if not error:
        return None
    code, sep, detail = error.partition(": ")
    if sep and code in ERROR_CODES:
        return {"event": "error", "file": name, "code": code,
                "detail": detail}
    return None


def _arm_faults(spec: str | None) -> bool:
    """Arm a ``--faults`` plan in this process and its shard workers.

    ``spec`` is inline :meth:`FaultPlan.to_json` JSON, or the path of a
    file holding it.  Arming goes through the environment as well so
    spawned worker processes (and a daemon's compute workers) inherit
    the plan.  Returns False (after printing why) on a bad plan.
    """
    if not spec:
        return True
    import os
    from pathlib import Path

    from repro.serve import FaultPlan, faults

    raw = spec
    path = Path(spec)
    try:
        if path.is_file():
            raw = path.read_text()
    except OSError:
        pass
    try:
        plan = FaultPlan.from_json(raw)
    except ValueError as exc:
        print(f"--faults: {exc}", file=sys.stderr)
        return False
    os.environ.update(plan.env())
    faults.activate(plan)
    return True


def _shards_arg(value: str):
    """``--shards`` parser: a positive integer or the string ``auto``."""
    if value == "auto":
        return "auto"
    try:
        shards = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}")
    if shards < 1:
        raise argparse.ArgumentTypeError("shard count must be >= 1")
    return shards


def _parse_peers(spec: str | None) -> tuple[str, ...]:
    """``--peers`` parser: comma-separated daemon addresses."""
    if not spec:
        return ()
    return tuple(p.strip() for p in spec.split(",") if p.strip())


def _provision_fabric(peers: tuple[str, ...],
                      bundle_ref: str) -> tuple[str, ...] | None:
    """Make every peer serve the advisor; returns per-peer names.

    A ``bundle_ref`` that exists locally (bundle directory or archive)
    is distributed content-addressed: each peer is asked for the
    archive's SHA-256 first and the bytes are pushed only on a miss —
    so re-runs against a provisioned fleet ship nothing.  Anything
    else is treated as the *name* of a bundle each peer must already
    serve.  Returns ``None`` (after printing why) when a peer is
    unreachable or refuses the bundle.
    """
    from pathlib import Path

    from repro.client import ClientError, connect

    if Path(bundle_ref).exists():
        import tempfile

        from repro.fabric import archive_for, provision_peers

        with tempfile.TemporaryDirectory(prefix="repro-fabric-") as tmp:
            archive = archive_for(bundle_ref, tmp)
            try:
                report = provision_peers(peers, archive)
            except (ClientError, OSError) as exc:
                print(f"fabric: cannot provision peers: {exc}",
                      file=sys.stderr)
                return None
        for pb in report:
            what = "pushed" if pb.pushed else "cache hit"
            print(f"fabric: peer {pb.peer}: {what} {pb.name} "
                  f"({pb.sha256[:12]})", file=sys.stderr)
        return tuple(pb.name for pb in report)
    for peer in peers:
        try:
            with connect(peer, client_id="repro.fabric/check") as client:
                if bundle_ref not in client.bundles():
                    print(f"fabric: peer {peer} does not serve bundle "
                          f"{bundle_ref!r} (available: "
                          f"{client.bundles()})", file=sys.stderr)
                    return None
        except (ClientError, OSError) as exc:
            print(f"fabric: cannot reach peer {peer}: {exc}",
                  file=sys.stderr)
            return None
    return tuple(bundle_ref for _ in peers)


def _read_corpus(paths) -> list[tuple[str, str]] | None:
    """``(name, source)`` pairs for the fabric path, or ``None``.

    Remote peers cannot read the coordinator's filesystem, so the
    corpus travels inline — same contents the in-process pipeline
    would read, keeping results byte-identical.
    """
    named = []
    for path in paths:
        try:
            named.append((str(path), path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError) as exc:
            print(f"fabric: cannot read {path}: {exc}", file=sys.stderr)
            return None
    return named


def suggest_dir_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro suggest-dir",
        description="Suggest complete OpenMP pragmas for every loop of "
                    "every C file under a directory (batched serving).",
    )
    parser.add_argument("directory", help="directory of C files")
    parser.add_argument("--pattern", default="*.c",
                        help="glob for source files (default: *.c)")
    parser.add_argument("--server", default=None, metavar="ADDR",
                        help="serve through a running `repro serve` "
                             "daemon at HOST:PORT or unix:/path.sock "
                             "instead of building models in-process; "
                             "file contents travel over the wire, "
                             "results are byte-identical")
    parser.add_argument("--peers", default=None, metavar="A,B",
                        help="comma-separated addresses of running "
                             "daemons: fan the corpus out across them "
                             "as remote shards (one per peer); a peer "
                             "lost mid-run requeues onto the rest; "
                             "requires --bundle (a local bundle path "
                             "is pushed content-addressed, at most "
                             "once per peer; a bare name must already "
                             "be served by every peer); mutually "
                             "exclusive with --server")
    parser.add_argument("--workers", type=int, default=1,
                        help="parse-stage worker processes (1 = in-process)")
    parser.add_argument("--shards", type=_shards_arg, default=None,
                        help="end-to-end corpus shards: the whole parse/"
                             "encode/forward pipeline runs in N worker "
                             "processes (1 = in-process, 'auto' picks a "
                             "count from corpus size and CPUs; with "
                             "--server, overrides the daemon's per-"
                             "request fan-out)")
    parser.add_argument("--stream", action="store_true",
                        help="emit one NDJSON record per file on stdout "
                             "as results complete, then a final "
                             '{"event": "done", ...} summary record '
                             "(the human-readable summary goes to "
                             "stderr)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="graphs per forward pass")
    parser.add_argument("--bundle", default=None,
                        help="serve a trained bundle saved by "
                             "`repro train --bundle-out` (zero training "
                             "steps); default trains fast-profile models "
                             "on the fly; with --server, the *name* of a "
                             "bundle the daemon serves")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent suggestion cache: warm runs over "
                             "unchanged files skip parsing and inference "
                             "(ignored with --server: the daemon owns "
                             "the cache)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="training-set scale for the on-the-fly models")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--out", default=None,
                        help="write suggestions to this JSON file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-loop output")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="S",
                        help="with --server: per-request deadline in "
                             "seconds; the daemon aborts queued or "
                             "mid-stream work past it with a "
                             "'deadline-exceeded' error")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="arm a deterministic fault plan (inline "
                             "JSON or a file of it) in this process "
                             "and its shard workers — chaos testing "
                             "only")
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.serve import ServeError

    if not _arm_faults(args.faults):
        return 2
    client = None
    service = None
    peers = _parse_peers(args.peers)
    peer_bundles: tuple[str, ...] = ()
    if peers:
        if args.server:
            print("--peers and --server are mutually exclusive",
                  file=sys.stderr)
            return 2
        if not args.bundle:
            print("--peers requires --bundle: the advisor every peer "
                  "serves (a local bundle path, or a name they "
                  "already serve)", file=sys.stderr)
            return 2
        provisioned = _provision_fabric(peers, args.bundle)
        if provisioned is None:
            return 2
        peer_bundles = provisioned
    elif args.server:
        from repro.client import ClientError, RetryPolicy, connect

        ignored = [
            flag for flag, value, default in (
                ("--workers", args.workers, 1),
                ("--batch-size", args.batch_size, 256),
                ("--cache-dir", args.cache_dir, None),
                ("--scale", args.scale, 0.02),
                ("--seed", args.seed, 7),
                ("--epochs", args.epochs, 4),
                ("--dim", args.dim, 32),
            ) if value != default
        ]
        if ignored:
            print(f"note: {', '.join(ignored)} are ignored with "
                  f"--server — the daemon's own models and config "
                  f"serve the request", file=sys.stderr)
        try:
            # a default RetryPolicy: a busy or restarting daemon is
            # retried with backoff instead of failing the whole run
            client = connect(args.server, retry=RetryPolicy(),
                             deadline_s=args.deadline)
        except (ClientError, OSError) as exc:
            print(f"cannot reach server {args.server}: {exc}",
                  file=sys.stderr)
            return 2
        if args.bundle and args.bundle not in client.bundles():
            print(f"server at {args.server} does not serve bundle "
                  f"{args.bundle!r} (available: {client.bundles()})",
                  file=sys.stderr)
            client.close()
            return 2
    else:
        from repro.serve import ServeConfig, build_service

        serve_config = ServeConfig(
            workers=args.workers, batch_size=args.batch_size,
            shards=args.shards if args.shards is not None else 1)
        if args.bundle:
            from repro.artifacts import ArtifactError, SuggesterBundle

            try:
                bundle = SuggesterBundle.load(args.bundle)
            except ArtifactError as exc:
                print(f"cannot load bundle: {exc}", file=sys.stderr)
                return 2
            print(f"loaded {bundle.describe()}",
                  file=sys.stderr if args.stream else sys.stdout)
            service = build_service(bundle, serve_config,
                                    cache_dir=args.cache_dir)
        else:
            from repro.eval.config import ExperimentConfig
            from repro.eval.context import get_context

            ctx = get_context(ExperimentConfig(
                scale=args.scale, seed=args.seed, epochs=args.epochs,
                dim=args.dim,
            ))
            service = build_service(ctx, serve_config,
                                    cache_dir=args.cache_dir)

    paths = sorted(Path(args.directory).rglob(args.pattern))
    named = None
    if peers:
        named = _read_corpus(paths)
        if named is None:
            return 2
    summary_out = sys.stderr if args.stream else sys.stdout
    start = time.perf_counter()
    try:
        if args.stream:
            # as-completed: the first finished file prints long before
            # the last shard completes; stdout carries pure NDJSON,
            # closed by one {"event": "done", ...} summary record so
            # consumers can tell a clean end from a dropped pipe
            results = []
            if peers:
                from repro.fabric import stream_fabric

                stream = stream_fabric(peers, named, mode="suggest",
                                       peer_bundles=peer_bundles,
                                       ordered=False)
            elif client is not None:
                stream = client.stream_paths(paths, bundle=args.bundle,
                                             ordered=False,
                                             shards=args.shards)
            else:
                stream = service.stream_paths(paths, ordered=False)
            for r in stream:
                _ndjson_record(_structured_error(r.name, r.error) or {
                    "file": r.name,
                    "error": r.error,
                    "suggestions": [s.to_dict() for s in r.suggestions],
                })
                results.append(r)
            by_name = {r.name: r for r in results}
            results = [by_name[str(p)] for p in paths]
            _ndjson_record({
                "event": "done",
                "files": len(results),
                "loops": sum(len(r.suggestions) for r in results),
                "errors": sum(1 for r in results if r.error),
                "elapsed_s": round(time.perf_counter() - start, 3),
            })
        elif peers:
            from repro.fabric import stream_fabric

            results = list(stream_fabric(peers, named, mode="suggest",
                                         peer_bundles=peer_bundles,
                                         ordered=True))
        elif client is not None:
            results = client.suggest_paths(paths, bundle=args.bundle,
                                           shards=args.shards)
        else:
            results = service.suggest_paths(paths)
    except ServeError as exc:
        print(f"serving failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if client is not None:
            client.close()
    elapsed = time.perf_counter() - start
    if not results:
        print(f"no files matching {args.pattern!r} under {args.directory}",
              file=summary_out)
        return 1

    n_loops = sum(len(r.suggestions) for r in results)
    n_errors = sum(1 for r in results if r.error)
    if not args.stream:              # per-file records already emitted
        for r in results:
            if r.error:
                print(f"{r.name}: SKIPPED ({r.error})")
                continue
            print(f"{r.name}: {len(r.suggestions)} loops, "
                  f"{r.n_parallel} parallelizable")
            if not args.quiet:
                for s in r.suggestions:
                    print("  " + (s.pragma if s.parallel
                                  else f"// sequential: {s.rationale}"))
    rate = n_loops / elapsed if elapsed > 0 else float("inf")
    print(f"{n_loops} loops across {len(results)} files "
          f"({n_errors} unparseable) in {elapsed:.2f}s "
          f"({rate:.0f} loops/s)", file=summary_out)
    if args.cache_dir and service is not None:
        stats = service.cache_stats()
        store, forwards = stats["store"], stats["forwards"]
        print(f"cache: {store['suggest_hits']} files warm, "
              f"{store['suggest_misses']} computed "
              f"({forwards['graphs']} graph forwards)", file=summary_out)
    if args.out:
        payload = [
            {
                "file": r.name,
                "error": r.error,
                "suggestions": [s.to_dict() for s in r.suggestions],
            }
            for r in results
        ]
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"suggestions written to {args.out}", file=summary_out)
    return 0


def rewrite_dir_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro rewrite-dir",
        description="Apply suggested OpenMP pragmas as verified "
                    "source-to-source rewrites for every C file under "
                    "a directory. Each accepted loop gets its complete "
                    "clause list; every transform is gated by "
                    "differential execution (sequential vs simulated-"
                    "parallel) and refused with a stable reason code "
                    "on divergence.",
    )
    parser.add_argument("directory", help="directory of C files")
    parser.add_argument("--pattern", default="*.c",
                        help="glob for source files (default: *.c)")
    parser.add_argument("--verify", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="gate every rewrite on the interpreter "
                             "verifier (default: on; --no-verify "
                             "accepts analyzable loops unchecked, "
                             "reported with code 'unverified')")
    parser.add_argument("--server", default=None, metavar="ADDR",
                        help="rewrite through a running `repro serve` "
                             "daemon at HOST:PORT or unix:/path.sock "
                             "instead of building models in-process; "
                             "results are byte-identical")
    parser.add_argument("--peers", default=None, metavar="A,B",
                        help="comma-separated addresses of running "
                             "daemons: fan the corpus out across them "
                             "as remote shards (one per peer); a peer "
                             "lost mid-run requeues onto the rest; "
                             "requires --bundle; mutually exclusive "
                             "with --server")
    parser.add_argument("--workers", type=int, default=1,
                        help="parse-stage worker processes (1 = in-process)")
    parser.add_argument("--shards", type=_shards_arg, default=None,
                        help="end-to-end corpus shards for the "
                             "suggestion stage (1 = in-process, 'auto' "
                             "picks a count; with --server, overrides "
                             "the daemon's per-request fan-out)")
    parser.add_argument("--stream", action="store_true",
                        help="emit one NDJSON record per file on stdout "
                             "as results complete, then a final "
                             '{"event": "done", ...} summary record '
                             "(the human-readable summary goes to "
                             "stderr)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="graphs per forward pass")
    parser.add_argument("--bundle", default=None,
                        help="serve a trained bundle saved by "
                             "`repro train --bundle-out`; default trains "
                             "fast-profile models on the fly; with "
                             "--server, the *name* of a bundle the "
                             "daemon serves")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent cache shared with suggest-dir: "
                             "warm runs skip parsing and inference for "
                             "the suggestion stage and replay stored "
                             "verdicts instead of re-simulating loops "
                             "(ignored with --server)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="training-set scale for the on-the-fly models")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--out", default=None,
                        help="write rewrite results (including the full "
                             "rewritten sources) to this JSON file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-loop output")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="S",
                        help="with --server: per-request deadline in "
                             "seconds; the daemon aborts queued or "
                             "mid-stream work past it with a "
                             "'deadline-exceeded' error")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="arm a deterministic fault plan (inline "
                             "JSON or a file of it) in this process "
                             "and its shard workers — chaos testing "
                             "only")
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.serve import ServeError

    if not _arm_faults(args.faults):
        return 2
    client = None
    service = None
    peers = _parse_peers(args.peers)
    peer_bundles: tuple[str, ...] = ()
    if peers:
        if args.server:
            print("--peers and --server are mutually exclusive",
                  file=sys.stderr)
            return 2
        if not args.bundle:
            print("--peers requires --bundle: the advisor every peer "
                  "serves (a local bundle path, or a name they "
                  "already serve)", file=sys.stderr)
            return 2
        provisioned = _provision_fabric(peers, args.bundle)
        if provisioned is None:
            return 2
        peer_bundles = provisioned
    elif args.server:
        from repro.client import ClientError, RetryPolicy, connect

        ignored = [
            flag for flag, value, default in (
                ("--workers", args.workers, 1),
                ("--batch-size", args.batch_size, 256),
                ("--cache-dir", args.cache_dir, None),
                ("--scale", args.scale, 0.02),
                ("--seed", args.seed, 7),
                ("--epochs", args.epochs, 4),
                ("--dim", args.dim, 32),
            ) if value != default
        ]
        if ignored:
            print(f"note: {', '.join(ignored)} are ignored with "
                  f"--server — the daemon's own models and config "
                  f"serve the request", file=sys.stderr)
        try:
            client = connect(args.server, retry=RetryPolicy(),
                             deadline_s=args.deadline)
        except (ClientError, OSError) as exc:
            print(f"cannot reach server {args.server}: {exc}",
                  file=sys.stderr)
            return 2
        if not client.capabilities.get("rewrite"):
            print(f"server at {args.server} does not support rewrite "
                  f"requests (older daemon?)", file=sys.stderr)
            client.close()
            return 2
        if args.bundle and args.bundle not in client.bundles():
            print(f"server at {args.server} does not serve bundle "
                  f"{args.bundle!r} (available: {client.bundles()})",
                  file=sys.stderr)
            client.close()
            return 2
    else:
        from repro.serve import ServeConfig, build_service

        serve_config = ServeConfig(
            workers=args.workers, batch_size=args.batch_size,
            shards=args.shards if args.shards is not None else 1)
        if args.bundle:
            from repro.artifacts import ArtifactError, SuggesterBundle

            try:
                bundle = SuggesterBundle.load(args.bundle)
            except ArtifactError as exc:
                print(f"cannot load bundle: {exc}", file=sys.stderr)
                return 2
            print(f"loaded {bundle.describe()}",
                  file=sys.stderr if args.stream else sys.stdout)
            service = build_service(bundle, serve_config,
                                    cache_dir=args.cache_dir)
        else:
            from repro.eval.config import ExperimentConfig
            from repro.eval.context import get_context

            ctx = get_context(ExperimentConfig(
                scale=args.scale, seed=args.seed, epochs=args.epochs,
                dim=args.dim,
            ))
            service = build_service(ctx, serve_config,
                                    cache_dir=args.cache_dir)

    def _record(r) -> dict:
        return {
            "file": r.name,
            "error": r.error,
            "rewrites": [rw.to_dict() for rw in r.rewrites],
            "rewritten_source": r.rewritten_source,
        }

    paths = sorted(Path(args.directory).rglob(args.pattern))
    named = None
    if peers:
        named = _read_corpus(paths)
        if named is None:
            return 2
    summary_out = sys.stderr if args.stream else sys.stdout
    start = time.perf_counter()
    try:
        if args.stream:
            results = []
            if peers:
                from repro.fabric import stream_fabric

                stream = stream_fabric(peers, named, mode="rewrite",
                                       verify=args.verify,
                                       peer_bundles=peer_bundles,
                                       ordered=False)
            elif client is not None:
                stream = client.stream_rewrite_paths(
                    paths, bundle=args.bundle, ordered=False,
                    verify=args.verify, shards=args.shards)
            else:
                stream = service.stream_rewrite_paths(
                    paths, ordered=False, verify=args.verify)
            for r in stream:
                _ndjson_record(_structured_error(r.name, r.error)
                               or _record(r))
                results.append(r)
            by_name = {r.name: r for r in results}
            results = [by_name[str(p)] for p in paths]
            done = {
                "event": "done",
                "files": len(results),
                "loops": sum(len(r.rewrites) for r in results),
                "accepted": sum(r.n_accepted for r in results),
                "refused": sum(r.n_refused for r in results),
                "errors": sum(1 for r in results if r.error),
                "elapsed_s": round(time.perf_counter() - start, 3),
            }
            if service is not None:
                # verifier counters (in-process only: the daemon keeps
                # its own); "simulations": 0 is the warm-cache contract
                done["verifier"] = service.cache_stats()["verify"]
                done["simulations"] = done["verifier"]["simulations"]
            _ndjson_record(done)
        elif peers:
            from repro.fabric import stream_fabric

            results = list(stream_fabric(peers, named, mode="rewrite",
                                         verify=args.verify,
                                         peer_bundles=peer_bundles,
                                         ordered=True))
        elif client is not None:
            results = client.rewrite_paths(paths, bundle=args.bundle,
                                           verify=args.verify,
                                           shards=args.shards)
        else:
            results = service.rewrite_paths(paths, verify=args.verify)
    except ServeError as exc:
        print(f"rewriting failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if client is not None:
            client.close()
    elapsed = time.perf_counter() - start
    if not results:
        print(f"no files matching {args.pattern!r} under {args.directory}",
              file=summary_out)
        return 1

    n_loops = sum(len(r.rewrites) for r in results)
    n_accepted = sum(r.n_accepted for r in results)
    n_refused = sum(r.n_refused for r in results)
    n_errors = sum(1 for r in results if r.error)
    if not args.stream:              # per-file records already emitted
        for r in results:
            if r.error:
                print(f"{r.name}: SKIPPED ({r.error})")
                continue
            print(f"{r.name}: {len(r.rewrites)} loops, "
                  f"{r.n_accepted} rewritten, {r.n_refused} refused")
            if not args.quiet:
                for rw in r.rewrites:
                    if rw.accepted:
                        print(f"  [{rw.code}] {rw.pragma}")
                    else:
                        print(f"  [{rw.code}] {rw.detail}"
                              if rw.detail else f"  [{rw.code}]")
    rate = n_loops / elapsed if elapsed > 0 else float("inf")
    print(f"{n_loops} loops across {len(results)} files: "
          f"{n_accepted} rewritten, {n_refused} refused "
          f"({n_errors} unparseable) in {elapsed:.2f}s "
          f"({rate:.0f} loops/s)", file=summary_out)
    if service is not None and args.verify:
        v = service.cache_stats()["verify"]
        print(f"verifier: {v['simulations']} simulations "
              f"({v['compiled_runs']} compiled, "
              f"{v['interpreted_runs']} interpreted runs, "
              f"{v['cached_verdicts']} cached verdicts) in "
              f"{v['elapsed_s']:.2f}s", file=summary_out)
    if args.out:
        payload = [_record(r) for r in results]
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"rewrites written to {args.out}", file=summary_out)
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the long-lived suggestion daemon: one warm "
                    "service (shared store, loaded models) multiplexing "
                    "many concurrent clients and corpora.",
    )
    net = parser.add_mutually_exclusive_group(required=True)
    net.add_argument("--listen", metavar="HOST:PORT",
                     help="bind a TCP address (PORT 0 = ephemeral)")
    net.add_argument("--unix", metavar="SOCK",
                     help="bind a unix stream socket at this path")
    parser.add_argument("--bundle", action="append", default=[],
                        metavar="[NAME=]PATH",
                        help="serve a trained bundle (directory or "
                             "archive) under NAME (default: derived "
                             "from the path); repeatable — clients "
                             "select by name, the first one is the "
                             "default")
    parser.add_argument("--accept-bundles", action="store_true",
                        help="accept content-addressed bundle pushes "
                             "over the wire: pushed archives are "
                             "verified by SHA-256, cached under the "
                             "cache dir, and served immediately; with "
                             "no --bundle the daemon starts *empty* "
                             "(no on-the-fly training) and acquires "
                             "every advisor from its clients")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent suggestion store shared by "
                             "every client (default: a fresh "
                             "per-daemon temp dir, so concurrent "
                             "clients still share warm results)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parse-stage worker processes per request")
    parser.add_argument("--shards", type=_shards_arg, default=1,
                        help="default end-to-end shard fan-out per "
                             "request ('auto' picks from corpus size "
                             "and CPUs; clients can override per "
                             "request)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="graphs per forward pass")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="training-set scale for the on-the-fly "
                             "models when no --bundle is given")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--batch-window-ms", type=float, default=None,
                        metavar="MS",
                        help="micro-batch window: how long an idle "
                             "bundle waits for concurrent requests to "
                             "coalesce into one forward (default: "
                             "2.0; flushes immediately when only one "
                             "client is connected, so single-client "
                             "latency does not regress)")
    parser.add_argument("--queue-depth", type=int, default=None,
                        metavar="N",
                        help="waiting requests per bundle before "
                             "admission refuses with a 'busy' error "
                             "frame (default: 64)")
    parser.add_argument("--round-files", type=int, default=None,
                        metavar="N",
                        help="files per coalesced compute round — the "
                             "fairness quantum: a bulk request is "
                             "chunked at this grain so interactive "
                             "requests join every round (default: 256)")
    parser.add_argument("--allow-local-dir", action="append",
                        default=[], metavar="DIR",
                        help="let clients request suggestions for "
                             "paths/dirs under DIR on the *server's* "
                             "filesystem (repeatable; default: "
                             "disabled — clients must send file "
                             "contents inline)")
    parser.add_argument("--ready-file", default=None,
                        help="after binding, write the actual listen "
                             "address to this file (scripts polling "
                             "for readiness, ephemeral ports)")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="arm a deterministic fault plan (inline "
                             "JSON or a file of it) in the daemon and "
                             "its shard workers — chaos testing only")
    args = parser.parse_args(argv)

    from repro.serve import (
        PROTOCOL_VERSION,
        ServeConfig,
        SuggestServer,
        build_service,
    )

    if not _arm_faults(args.faults):
        return 2

    serve_config = ServeConfig(workers=args.workers,
                               batch_size=args.batch_size,
                               shards=args.shards)
    net_kwargs = {}
    if args.unix:
        net_kwargs["unix_path"] = args.unix
    else:
        host, sep, port = args.listen.rpartition(":")
        if not sep or not port.isdigit():
            print(f"--listen expects HOST:PORT, got {args.listen!r}",
                  file=sys.stderr)
            return 2
        net_kwargs["host"] = host or "127.0.0.1"
        net_kwargs["port"] = int(port)
    if args.allow_local_dir:
        net_kwargs["local_roots"] = tuple(args.allow_local_dir)
    if args.batch_window_ms is not None:
        net_kwargs["batch_window_ms"] = args.batch_window_ms
    if args.queue_depth is not None:
        net_kwargs["queue_depth"] = args.queue_depth
    if args.round_files is not None:
        net_kwargs["round_files"] = args.round_files

    if args.bundle:
        from repro.artifacts import ArtifactError, BundleRegistry

        try:
            registry, degraded = \
                BundleRegistry.from_specs_tolerant(args.bundle)
        except (ArtifactError, ValueError) as exc:
            print(f"cannot load bundles: {exc}", file=sys.stderr)
            return 2
        for name, reason in sorted(degraded.items()):
            # degraded startup: a corrupt artifact costs one bundle,
            # not the whole daemon — clients see it in capabilities
            print(f"serve: bundle {name!r} failed to load, starting "
                  f"degraded without it: {reason}", file=sys.stderr)
        if not len(registry):
            print("cannot load bundles: every --bundle failed to load",
                  file=sys.stderr)
            return 2
        if degraded:
            net_kwargs["degraded"] = degraded
    else:
        registry = None

    cache_dir = args.cache_dir
    ephemeral_cache = None
    if cache_dir is None:
        import tempfile

        # without a store the daemon cannot share warm results across
        # clients — its whole reason to exist — so default to a
        # process-lifetime temp store rather than no store (removed
        # again on shutdown)
        ephemeral_cache = tempfile.mkdtemp(prefix="repro-serve-cache-")
        cache_dir = ephemeral_cache
        print(f"serve: using ephemeral cache {cache_dir} "
              f"(pass --cache-dir to persist)", file=sys.stderr)

    if args.accept_bundles:
        if str(cache_dir).startswith("net:"):
            import tempfile

            net_kwargs["bundle_cache_dir"] = tempfile.mkdtemp(
                prefix="repro-serve-bundles-")
        else:
            from pathlib import Path

            net_kwargs["bundle_cache_dir"] = Path(cache_dir) / "bundles"

    if registry is not None:
        server = SuggestServer.from_registry(
            registry, serve_config, cache_dir=cache_dir, **net_kwargs)
        print(f"serve: loaded bundles {registry.names()} "
              f"(default: {registry.default})", file=sys.stderr)
    elif args.accept_bundles:
        # self-provisioning peer: no training, no bundles — every
        # advisor arrives as a content-addressed push from a client
        server = SuggestServer({}, serve_config=serve_config,
                               cache_dir=cache_dir, **net_kwargs)
        print("serve: no advisors yet; accepting pushed bundles",
              file=sys.stderr)
    else:
        from repro.eval.config import ExperimentConfig
        from repro.eval.context import get_context

        ctx = get_context(ExperimentConfig(
            scale=args.scale, seed=args.seed, epochs=args.epochs,
            dim=args.dim,
        ))
        service = build_service(ctx, serve_config, cache_dir=cache_dir)
        server = SuggestServer({"default": service},
                               serve_config=serve_config,
                               cache_dir=cache_dir, **net_kwargs)
        print("serve: trained on-the-fly models (bundle 'default')",
              file=sys.stderr)

    print(f"serve: listening on {server.address} "
          f"(protocol v{PROTOCOL_VERSION})",
          file=sys.stderr, flush=True)
    if args.ready_file:
        from pathlib import Path

        Path(args.ready_file).write_text(server.address)

    import signal

    def _stop(signum, frame):
        import threading

        # shutdown() joins handler threads; never call it from the
        # signal frame on the serving thread
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    except ValueError:
        pass        # not on the main thread (embedded/test use)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if ephemeral_cache is not None:
            import shutil

            shutil.rmtree(ephemeral_cache, ignore_errors=True)
    print("serve: drained and stopped", file=sys.stderr)
    return 0


def bundle_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bundle",
        description="Convert a saved suggester bundle between its "
                    "directory form and a single archive file.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    pack = sub.add_parser("pack",
                          help="bundle directory -> one archive file")
    pack.add_argument("directory", help="saved bundle directory")
    pack.add_argument("archive", help="output archive path (.tar.gz)")
    unpack = sub.add_parser("unpack",
                            help="archive file -> bundle directory")
    unpack.add_argument("archive", help="bundle archive file")
    unpack.add_argument("directory", help="output directory")
    args = parser.parse_args(argv)

    from repro.artifacts import BundleError, pack_bundle, unpack_bundle

    try:
        if args.action == "pack":
            path = pack_bundle(args.directory, args.archive)
            print(f"packed {args.directory} -> {path} "
                  f"({path.stat().st_size} bytes)")
        else:
            path = unpack_bundle(args.archive, args.directory)
            print(f"unpacked {args.archive} -> {path}")
    except BundleError as exc:
        print(f"bundle {args.action} failed: {exc}", file=sys.stderr)
        return 2
    return 0


def cache_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Maintain a persistent suggestion cache "
                    "(the --cache-dir of `repro suggest-dir`).",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    gc = sub.add_parser("gc", help="prune the cache by size and/or age")
    gc.add_argument("cache_dir", help="cache directory to prune")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="keep at most this many bytes of entries "
                         "(least-recently-written evicted first)")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="drop entries older than this many days "
                         "(applied before --max-bytes)")
    gc.add_argument("--json", action="store_true",
                    help="emit the structured gc report (totals + "
                         "files/bytes pruned per layer) as one JSON "
                         "object")
    stats = sub.add_parser(
        "stats",
        help="inspect a cache directory (entry counts/bytes per layer) "
             "plus the in-process analysis memo counters")
    stats.add_argument("cache_dir", help="cache directory to inspect")
    stats.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON object")
    fsck = sub.add_parser(
        "fsck",
        help="scan every layer for torn or unreadable entries (a "
             "writer that died mid-write, disk corruption) and remove "
             "them — readers degrade such entries to recompute on "
             "every hit until fsck reclaims them; stale *.tmp files "
             "are reclaimed too")
    fsck.add_argument("cache_dir", help="cache directory to check")
    fsck.add_argument("--dry-run", action="store_true",
                      help="report corrupt entries without removing "
                           "anything")
    fsck.add_argument("--json", action="store_true",
                      help="emit the structured fsck report as one "
                           "JSON object")
    args = parser.parse_args(argv)

    if args.action == "fsck":
        from repro.serve import open_store

        report = open_store(args.cache_dir).fsck(
            remove=not args.dry_run)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        verb = "found" if args.dry_run else "removed"
        print(f"cache fsck: scanned {report['scanned']} entries, "
              f"{verb} {report['corrupt']} corrupt, reclaimed "
              f"{report['stale_tmp']} stale tmp files")
        for layer in ("parse", "suggest", "verdict", "other"):
            counters = report["layers"][layer]
            if counters["corrupt"]:
                print(f"  {layer}: {counters['corrupt']} corrupt of "
                      f"{counters['scanned']} scanned")
        return 0

    if args.action == "stats":
        from repro.serve import open_store
        from repro.tools.deps import cache_stats as deps_cache_stats

        # note: no store hit/miss counters here — those are per-process
        # (this process did no lookups); the on-disk scan is the truth
        payload = {
            "store": open_store(args.cache_dir).describe(),
            "analyze_loop": deps_cache_stats(),
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        d = payload["store"]
        if not d["exists"]:
            print(f"cache {d['root']}: not created yet")
        else:
            print(f"cache {d['root']}: {d['total_bytes']} bytes")
            print(f"  parse: {d['parse']['entries']} entries "
                  f"({d['parse']['bytes']} bytes)")
            print(f"  suggest: {d['suggest']['entries']} entries "
                  f"({d['suggest']['bytes']} bytes) across "
                  f"{d['suggest']['models']} model fingerprints")
            print(f"  verdict: {d['verdict']['entries']} entries "
                  f"({d['verdict']['bytes']} bytes)")
        memo = payload["analyze_loop"]
        print(f"analyze_loop memo (this process): {memo['entries']} "
              f"entries, {memo['hits']} hits, {memo['misses']} misses")
        return 0

    if args.max_bytes is None and args.max_age_days is None:
        print("cache gc: pass --max-bytes and/or --max-age-days "
              "(otherwise there is nothing to prune)", file=sys.stderr)
        return 2
    from repro.serve import open_store

    result = open_store(args.cache_dir).gc(
        max_bytes=args.max_bytes, max_age_days=args.max_age_days,
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    print(f"cache gc: removed {result['removed_files']} entries "
          f"({result['removed_bytes']} bytes), kept "
          f"{result['kept_files']} ({result['kept_bytes']} bytes)")
    for layer in ("parse", "suggest", "verdict", "other"):
        counters = result["layers"][layer]
        if any(counters.values()):
            print(f"  {layer}: removed {counters['removed_files']} "
                  f"({counters['removed_bytes']} bytes), kept "
                  f"{counters['kept_files']} "
                  f"({counters['kept_bytes']} bytes)")
    return 0


def ping_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro ping",
        description="Probe a running `repro serve` daemon: round-trip "
                    "latency, admission queue depth, capabilities, and "
                    "degraded bundles.",
    )
    parser.add_argument("address", help="HOST:PORT or unix:/path.sock")
    parser.add_argument("--timeout", type=float, default=10.0,
                        metavar="S", help="connect/read timeout "
                        "(default: 10s)")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON object")
    args = parser.parse_args(argv)

    from repro.client import ClientError, connect

    start = time.perf_counter()
    try:
        with connect(args.address, timeout=args.timeout,
                     client_id="repro.ping") as client:
            pong = client.ping()
    except (ClientError, OSError) as exc:
        print(f"no pong from {args.address}: {exc}", file=sys.stderr)
        return 1
    rtt_ms = (time.perf_counter() - start) * 1e3
    caps = pong.capabilities or client.capabilities
    if args.json:
        print(json.dumps({
            "address": args.address,
            "rtt_ms": round(rtt_ms, 3),
            "queued": pong.queued,
            "running": pong.running,
            "capabilities": caps,
        }, indent=2, sort_keys=True))
        return 0
    print(f"pong from {args.address} in {rtt_ms:.1f}ms "
          f"(handshake + probe)")
    print(f"  load: {pong.queued} queued requests, "
          f"{pong.running} running rounds")
    bundles = caps.get("bundles", [])
    default = caps.get("default_bundle")
    if bundles:
        print(f"  bundles: {', '.join(bundles)} (default: {default})")
    else:
        print("  bundles: none yet")
    fabric = []
    if caps.get("bundle_push"):
        fabric.append("accepts pushed bundles")
    if caps.get("network_store"):
        fabric.append("shares its suggestion store")
    if caps.get("fabric"):
        print(f"  fabric: {', '.join(fabric) if fabric else 'peer only'}")
    degraded = caps.get("degraded", {})
    for name, reason in sorted(degraded.items()):
        print(f"  degraded: {name} ({reason})")
    return 0


_COMMANDS = {
    "dataset": dataset_main,
    "train": train_main,
    "eval": eval_main,
    "suggest-dir": suggest_dir_main,
    "rewrite-dir": rewrite_dir_main,
    "serve": serve_main,
    "ping": ping_main,
    "bundle": bundle_main,
    "cache": cache_main,
}


def main(argv: list[str] | None = None) -> int:
    """The ``repro`` umbrella command."""
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = f"usage: repro {{{','.join(_COMMANDS)}}} [options]"
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0 if argv else 2
    command = argv[0]
    if command not in _COMMANDS:
        print(f"unknown command {command!r}\n{usage}", file=sys.stderr)
        return 2
    return _COMMANDS[command](argv[1:])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
