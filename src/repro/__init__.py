"""Graph2Par reproduction (MLSys 2023).

A from-scratch reproduction of "Learning to Parallelize with OpenMP by
Augmented Heterogeneous AST Representation": the OMP_Serial dataset, the
augmented heterogeneous AST representation, the HGT-based Graph2Par model,
the PragFormer token baseline, and simulators of the three algorithm-based
comparator tools (Pluto, autoPar, DiscoPoP).

Subpackages:

- :mod:`repro.cfront`   -- C lexer / parser / AST
- :mod:`repro.pragma`   -- OpenMP pragma parsing
- :mod:`repro.cfg`      -- control-flow graphs
- :mod:`repro.graphs`   -- aug-AST heterogeneous representation
- :mod:`repro.nn`       -- numpy autodiff + layers
- :mod:`repro.models`   -- HGT / GNN / PragFormer
- :mod:`repro.tools`    -- Pluto / autoPar / DiscoPoP simulators
- :mod:`repro.dataset`  -- OMP_Serial generation and loading
- :mod:`repro.train`    -- training loop and metrics
- :mod:`repro.eval`     -- per-table/figure experiment harness

The most common entry points are re-exported lazily at package level so
that ``import repro`` stays cheap.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

#: name -> (module, attribute) for lazy top-level re-exports.
_EXPORTS = {
    "parse_source": ("repro.cfront", "parse_source"),
    "parse_loop": ("repro.cfront", "parse_loop"),
    "unparse": ("repro.cfront", "unparse"),
    "build_aug_ast": ("repro.graphs", "build_aug_ast"),
    "build_vanilla_ast": ("repro.graphs", "build_vanilla_ast"),
    "OMPSerial": ("repro.dataset", "OMPSerial"),
    "generate_omp_serial": ("repro.dataset", "generate_omp_serial"),
    "Graph2Par": ("repro.models", "Graph2Par"),
    "PragFormer": ("repro.models", "PragFormer"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return __all__
