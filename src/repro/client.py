"""Client library for the suggestion daemon (``repro serve``).

:func:`connect` opens one connection, performs the
:mod:`repro.serve.protocol` handshake, and returns a :class:`Client`
whose surface mirrors the in-process
:class:`~repro.serve.pipeline.SuggestionService` —
``stream_sources`` / ``stream_paths`` / ``stream_dir`` yield
:class:`~repro.serve.pipeline.FileSuggestions` as the server finishes
them, ``suggest_*`` collect.  File contents are read locally and sent
inline, so the server needs no access to the client's filesystem, and
replies revive through the exact payload shapes the in-process path
produces — the suggestions are byte-identical to running the pipeline
locally.

Addresses: ``"host:port"`` (TCP) or ``"unix:/path/to.sock"``; a bare
path to an existing socket file also works.

One request is in flight per connection at a time (the protocol has
no request ids); open several clients for concurrency — the daemon
multiplexes them over one warm store.

Resilience: pass a :class:`RetryPolicy` to :func:`connect` and the
client absorbs transient failures by itself — ``busy`` and
``shutting-down`` refusals are retried with capped exponential backoff
and deterministic jitter, and a connection lost mid-request (daemon
restart, dropped socket) auto-reconnects, re-handshakes, and re-issues
the in-flight request.  Requests are idempotent (a pure function of
their sources), so re-issue is safe; streaming replies track which
file indices were already yielded and skip them on the re-served
stream, so the caller sees every file exactly once.  ``deadline_s``
rides on each request so the server abandons work whose client has
given up waiting.
"""

from __future__ import annotations

import base64
import hashlib
import socket
import time
from collections.abc import Iterator
from dataclasses import dataclass, replace
from pathlib import Path

from repro.rewrite import FileRewrite
from repro.serve import protocol
from repro.serve.pipeline import FileSuggestions
from repro.serve.stream import ServeError

#: default seconds without a frame before a request is abandoned; the
#: pipeline streams store-cached files immediately, but a cold corpus
#: may train/load models before the first frame lands
DEFAULT_TIMEOUT_S = 600.0


class ClientError(ServeError):
    """The server refused or failed a request, or the link broke."""

    def __init__(self, message: str, code: str = "client-error") -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class RetryPolicy:
    """How a client absorbs transient failures.

    ``retry_codes`` names the :class:`ClientError` codes considered
    transient: ``busy`` (admission queue full) and ``shutting-down``
    (a draining daemon — its replacement will accept) mean *ask
    again*; ``connection-lost`` additionally reconnects and
    re-handshakes first.  Anything else — ``bad-request``,
    ``unknown-bundle``, ``deadline-exceeded``, ``timeout`` — is not
    transient: retrying a malformed request or an already-blown
    deadline only hides the real failure.

    Backoff is capped exponential (``base_delay_s`` doubling per
    attempt up to ``max_delay_s``) with *deterministic* jitter: the
    sleep is scaled into ``[0.5, 1.0)`` of the cap by a hash of
    ``(seed, attempt)``, so a thundering herd of clients with distinct
    seeds spreads out, while any single configuration replays the
    exact same schedule — chaos tests stay reproducible.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    seed: int = 0
    retry_codes: tuple[str, ...] = ("busy", "shutting-down",
                                    "connection-lost")

    def should_retry(self, code: str, failures: int) -> bool:
        """Whether to try again after ``failures`` failed attempts."""
        return failures < self.max_attempts and code in self.retry_codes

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        cap = min(self.max_delay_s,
                  self.base_delay_s * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(
            f"{self.seed}:{attempt}".encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return cap * (0.5 + 0.5 * jitter)


def _open_socket(address: str, timeout: float) -> socket.socket:
    if address.startswith("unix:"):
        path = address[len("unix:"):]
    elif ":" not in address and Path(address).exists():
        path = address
    else:
        path = None
    if path is not None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return sock
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ClientError(
            f"cannot parse server address {address!r}; expected "
            f"HOST:PORT or unix:/path.sock", code="bad-address")
    sock = socket.create_connection((host or "127.0.0.1", int(port)),
                                    timeout=timeout)
    # small frames both ways: Nagle + delayed ACK would put ~40ms on
    # every warm round trip
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def connect(address: str, *, timeout: float = DEFAULT_TIMEOUT_S,
            client_id: str = "repro.client",
            retry: RetryPolicy | None = None,
            deadline_s: float | None = None) -> "Client":
    """Open a connection and perform the protocol handshake.

    With a :class:`RetryPolicy`, connection refusals are retried with
    backoff (a daemon mid-restart is a transient, not an error) and
    the returned client keeps absorbing transient failures on every
    request.  ``deadline_s`` becomes the default per-request deadline.
    """
    failures = 0
    while True:
        try:
            sock = _open_socket(address, timeout)
            break
        except (ClientError, OSError) as exc:
            code = getattr(exc, "code", "connection-lost")
            failures += 1
            if retry is None or not retry.should_retry(code, failures):
                raise
            time.sleep(retry.delay(failures))
    try:
        return Client(sock, address=address, timeout=timeout,
                      client_id=client_id, retry=retry,
                      deadline_s=deadline_s)
    except BaseException:
        sock.close()
        raise


class Client:
    """One handshaken connection to a suggestion daemon."""

    def __init__(self, sock: socket.socket, *, address: str = "",
                 timeout: float = DEFAULT_TIMEOUT_S,
                 client_id: str = "repro.client",
                 retry: RetryPolicy | None = None,
                 deadline_s: float | None = None) -> None:
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._closed = False
        #: a request was written whose reply has not been read to its
        #: terminating frame (an abandoned streaming generator)
        self._pending = False
        #: the byte stream is desynchronized (a timeout or connection
        #: loss mid-frame): the socket must be re-opened before the
        #: next request — draining would misparse partial frames
        self._broken = False
        self.address = address
        self.timeout = timeout
        self.retry = retry
        #: default relative deadline stamped onto requests that carry
        #: none of their own
        self.deadline_s = deadline_s
        self._client_id = client_id
        #: the server's Done frame of the most recent request — its
        #: serving-side ``cache_stats()`` snapshot for observability
        self.last_done: protocol.Done | None = None
        self.capabilities = self._handshake(client_id)

    # -- plumbing ------------------------------------------------------------

    def _write(self, message) -> None:
        try:
            protocol.write_message(self._wfile, message)
        except protocol.ProtocolError as exc:
            raise ClientError(str(exc), code=exc.code) from exc
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            self._broken = True
            raise ClientError(f"server connection lost: {exc}",
                              code="connection-lost") from exc

    def _read_raw(self):
        try:
            message = protocol.read_message(self._rfile)
        except protocol.ProtocolError as exc:
            self._broken = True      # mid-frame garbage: never resync
            raise ClientError(str(exc), code=exc.code) from exc
        except (socket.timeout, TimeoutError) as exc:
            # the reply may still be in flight and a partial frame may
            # already be consumed — this connection can no longer be
            # drained; the next request reconnects instead
            self._broken = True
            raise ClientError(
                f"no frame from {self.address or 'server'} within "
                f"{self.timeout}s", code="timeout") from exc
        except (ConnectionResetError, OSError) as exc:
            self._broken = True
            raise ClientError(f"server connection lost: {exc}",
                              code="connection-lost") from exc
        if message is None:
            self._broken = True
            raise ClientError("server closed the connection mid-reply",
                              code="connection-lost")
        return message

    def _read(self):
        message = self._read_raw()
        if isinstance(message, protocol.Error):
            # an error frame terminates the current reply: the
            # connection stays usable for the next request
            self._pending = False
            raise ClientError(message.message, code=message.code)
        return message

    def _handshake(self, client_id: str) -> dict:
        self._write(protocol.Hello(client=client_id))
        reply = self._read()
        if not isinstance(reply, protocol.HelloOk):
            raise ClientError(
                f"expected hello_ok, got {reply.KIND!r}",
                code="bad-handshake")
        if reply.protocol != protocol.PROTOCOL_VERSION:
            raise ClientError(
                f"server speaks protocol {reply.protocol}, this client "
                f"speaks {protocol.PROTOCOL_VERSION}",
                code="protocol-mismatch")
        return dict(reply.capabilities)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._broken:
            try:
                protocol.write_message(self._wfile, protocol.Goodbye())
            except (BrokenPipeError, ConnectionResetError, OSError,
                    protocol.ProtocolError):
                pass
        for closer in (self._rfile, self._wfile, self._sock):
            try:
                closer.close()
            except OSError:
                pass

    def _reconnect(self) -> None:
        """Tear down the broken socket, reopen, re-handshake.

        Raises :class:`ClientError` (code ``connection-lost``) when
        the server is unreachable — under a :class:`RetryPolicy` that
        simply counts as the next failed attempt.
        """
        for closer in (self._rfile, self._wfile, self._sock):
            try:
                closer.close()
            except OSError:
                pass
        self._pending = False
        self._broken = False
        if not self.address:
            self._broken = True
            raise ClientError(
                "connection broke and this client has no address to "
                "reconnect to", code="connection-lost")
        try:
            sock = _open_socket(self.address, self.timeout)
        except OSError as exc:
            self._broken = True
            raise ClientError(
                f"cannot reconnect to {self.address}: {exc}",
                code="connection-lost") from exc
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        try:
            self.capabilities = self._handshake(self._client_id)
        except ClientError:
            self._broken = True
            raise

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the serving surface -------------------------------------------------

    def bundles(self) -> list[str]:
        """Bundle names the server advertises."""
        return list(self.capabilities.get("bundles", []))

    def _drain_pending(self) -> None:
        """Consume the rest of an abandoned reply.

        A caller that drops a streaming generator mid-iteration leaves
        the previous reply's frames on the wire; without draining them
        to the terminating ``done``/``error`` frame, the *next* request
        would silently read the old request's files as its own
        results.
        """
        while self._pending:
            message = self._read_raw()
            if isinstance(message, (protocol.Done, protocol.Error)):
                # a stale request-level error belongs to the
                # abandoned reply — note the boundary, don't raise
                self._pending = False
            elif not isinstance(message, protocol.FileResult):
                raise ClientError(
                    f"unexpected {message.KIND!r} frame while "
                    f"draining an abandoned reply", code="bad-reply")

    def _request(self, request: protocol.SuggestRequest) -> None:
        if self._broken:
            # a timed-out or torn reply poisoned the byte stream; a
            # fresh connection is the only safe resync point
            self._reconnect()
        self._drain_pending()
        self._write(request)
        self._pending = True

    def _with_deadline(self, request):
        """Stamp the client's default deadline onto a patient request."""
        if self.deadline_s is None or request.deadline_s is not None:
            return request
        return replace(request, deadline_s=self.deadline_s)

    def _absorb_failure(self, exc: ClientError, failures: int) -> None:
        """Back off after a transient failure, or re-raise it.

        Counts ``failures`` so far against the retry policy; on a lost
        connection also reconnects (re-handshaking) so the next attempt
        starts on a clean stream.  Reconnect failures raise — the loop
        above will catch them as the next attempt's failure.
        """
        if self.retry is None or not self.retry.should_retry(
                exc.code, failures):
            raise exc
        time.sleep(self.retry.delay(failures))
        if self._broken:
            self._reconnect()

    def stream_request(
        self, request: protocol.SuggestRequest,
    ) -> Iterator[protocol.FileResult]:
        """Stream one request's raw :class:`FileResult` frames.

        The index-tagged, payload-level form of :meth:`_stream` — what
        a fabric relay forwards verbatim onto a supervisor queue.
        Retry, reconnect, and exactly-once index dedup apply the same.
        """
        request = self._with_deadline(request)
        seen: set[int] = set()
        failures = 0
        while True:
            try:
                self._request(request)
                while True:
                    message = self._read()
                    if isinstance(message, protocol.Done):
                        self.last_done = message
                        self._pending = False
                        return
                    if not isinstance(message, protocol.FileResult):
                        raise ClientError(
                            f"unexpected {message.KIND!r} frame inside "
                            f"a streaming reply", code="bad-reply")
                    if message.index in seen:
                        # re-served after a reconnect: already yielded
                        continue
                    seen.add(message.index)
                    yield message
            except ClientError as exc:
                failures += 1
                # on return (vs raise) the request is re-issued: it is
                # idempotent and `seen` dedups the re-served files
                self._absorb_failure(exc, failures)

    def _stream(self, request: protocol.SuggestRequest,
                revive=FileSuggestions.from_payload) -> Iterator:
        for message in self.stream_request(request):
            yield revive(message.name, message.payload)

    def _batch(self, request: protocol.SuggestRequest,
               revive=FileSuggestions.from_payload) -> list:
        request = self._with_deadline(request)
        failures = 0
        while True:
            try:
                self._request(request)
                message = self._read()
                if not isinstance(message, protocol.BatchResult):
                    raise ClientError(
                        f"expected a batch frame, got {message.KIND!r}",
                        code="bad-reply")
                done = self._read()
                if not isinstance(done, protocol.Done):
                    raise ClientError(
                        f"expected done after the batch, "
                        f"got {done.KIND!r}", code="bad-reply")
                self.last_done = done
                self._pending = False
                ordered = sorted(message.files, key=lambda f: f.index)
                return [revive(f.name, f.payload) for f in ordered]
            except ClientError as exc:
                failures += 1
                self._absorb_failure(exc, failures)

    # -- health --------------------------------------------------------------

    def ping(self, token: str = "") -> protocol.Pong:
        """Round-trip a health probe; returns the server's
        :class:`~repro.serve.protocol.Pong` (echoed token + admission
        queue depth).  Answered off the session loop, so it works even
        when every compute lane is saturated."""
        if self._broken:
            self._reconnect()
        self._drain_pending()
        self._write(protocol.Ping(token=token))
        reply = self._read()
        if not isinstance(reply, protocol.Pong):
            raise ClientError(
                f"expected pong, got {reply.KIND!r}", code="bad-reply")
        return reply

    # -- fabric: bundle distribution + network store -------------------------

    def _require_fabric(self) -> None:
        if not self.capabilities.get("fabric"):
            raise ClientError(
                "server does not advertise the 'fabric' capability "
                "(older daemon?)", code="fabric-unsupported")

    def _roundtrip(self, request, reply_type):
        """One request frame → one typed reply frame, no retry."""
        if self._broken:
            self._reconnect()
        self._drain_pending()
        self._write(request)
        reply = self._read()
        if not isinstance(reply, reply_type):
            raise ClientError(
                f"expected {reply_type.KIND!r}, got {reply.KIND!r}",
                code="bad-reply")
        return reply

    def bundle_have(self, sha256: str) -> protocol.BundleHaveOk:
        """Ask whether the server holds the archive hashing to
        ``sha256`` — the cheap half of push-once distribution."""
        self._require_fabric()
        return self._roundtrip(protocol.BundleHave(sha256=sha256),
                               protocol.BundleHaveOk)

    def bundle_push(self, data: bytes, *, sha256: str | None = None,
                    name: str | None = None) -> protocol.BundlePushOk:
        """Push one ``pack_bundle`` archive; the server verifies the
        hash, caches the archive, and starts serving it."""
        self._require_fabric()
        if sha256 is None:
            sha256 = hashlib.sha256(data).hexdigest()
        encoded = base64.b64encode(data).decode("ascii")
        return self._roundtrip(
            protocol.BundlePush(sha256=sha256, data=encoded, name=name),
            protocol.BundlePushOk)

    def store_op(self, op: str, *, layer: str | None = None,
                 key: str | None = None, model_key: str | None = None,
                 entry: dict | None = None,
                 args: dict | None = None) -> protocol.StoreOk:
        """One operation against the server's suggestion store.

        The raw primitive under
        :class:`~repro.fabric.netstore.NetworkStore`; see
        :class:`~repro.serve.protocol.StoreOp` for the op shapes.
        """
        self._require_fabric()
        return self._roundtrip(
            protocol.StoreOp(op=op, layer=layer, key=key,
                             model_key=model_key, entry=entry,
                             args=dict(args or {})),
            protocol.StoreOk)

    def stream_sources(
        self, named_sources: list[tuple[str, str]], *,
        bundle: str | None = None, ordered: bool = True,
        shards: int | str | None = None,
    ) -> Iterator[FileSuggestions]:
        """Stream suggestions for ``(name, source)`` pairs.

        Mirrors :meth:`SuggestionService.stream_sources`; the server
        does the work over its warm store and streams files back as
        they finish.  Raises :class:`ClientError` if the stream ends
        without the server's ``done`` frame.
        """
        named = tuple((str(name), source)
                      for name, source in named_sources)
        return self._stream(protocol.SuggestRequest(
            sources=named, bundle=bundle, ordered=ordered,
            stream=True, shards=shards))

    def suggest_sources(
        self, named_sources: list[tuple[str, str]], *,
        bundle: str | None = None, shards: int | str | None = None,
    ) -> list[FileSuggestions]:
        """Batch reply in input order (one frame, then done)."""
        named = tuple((str(name), source)
                      for name, source in named_sources)
        return self._batch(protocol.SuggestRequest(
            sources=named, bundle=bundle, ordered=True,
            stream=False, shards=shards))

    # -- path/dir conveniences (local reads, mirroring the service) ----------

    def stream_paths(self, paths, *, bundle: str | None = None,
                     ordered: bool = True,
                     shards: int | str | None = None,
                     ) -> Iterator[FileSuggestions]:
        named = [(str(p), Path(p).read_text(encoding="utf-8"))
                 for p in paths]
        return self.stream_sources(named, bundle=bundle,
                                   ordered=ordered, shards=shards)

    def stream_dir(self, directory, pattern: str = "*.c", *,
                   bundle: str | None = None, ordered: bool = True,
                   shards: int | str | None = None,
                   ) -> Iterator[FileSuggestions]:
        paths = sorted(Path(directory).rglob(pattern))
        return self.stream_paths(paths, bundle=bundle, ordered=ordered,
                                 shards=shards)

    def suggest_paths(self, paths, *, bundle: str | None = None,
                      shards: int | str | None = None,
                      ) -> list[FileSuggestions]:
        named = [(str(p), Path(p).read_text(encoding="utf-8"))
                 for p in paths]
        return self.suggest_sources(named, bundle=bundle, shards=shards)

    def suggest_dir(self, directory, pattern: str = "*.c", *,
                    bundle: str | None = None,
                    shards: int | str | None = None,
                    ) -> list[FileSuggestions]:
        paths = sorted(Path(directory).rglob(pattern))
        return self.suggest_paths(paths, bundle=bundle, shards=shards)

    # -- verified rewrites (mirrors SuggestionService.rewrite_*) -------------

    def _require_rewrite(self) -> None:
        if not self.capabilities.get("rewrite"):
            raise ClientError(
                "server does not advertise the 'rewrite' capability "
                "(older daemon?)", code="rewrite-unsupported")

    def stream_rewrite_sources(
        self, named_sources: list[tuple[str, str]], *,
        bundle: str | None = None, ordered: bool = True,
        verify: bool = True, shards: int | str | None = None,
    ) -> Iterator[FileRewrite]:
        """Stream verified rewrites for ``(name, source)`` pairs.

        Mirrors :meth:`SuggestionService.stream_rewrite_sources`; the
        server suggests over its warm store, applies each file's
        suggestions as interpreter-verified AST rewrites, and streams
        :class:`~repro.rewrite.FileRewrite` results back — byte-
        identical to running the rewrite pass locally.
        """
        self._require_rewrite()
        named = tuple((str(name), source)
                      for name, source in named_sources)
        return self._stream(
            protocol.RewriteRequest(sources=named, bundle=bundle,
                                    ordered=ordered, stream=True,
                                    shards=shards, verify=verify),
            revive=FileRewrite.from_payload)

    def rewrite_sources(
        self, named_sources: list[tuple[str, str]], *,
        bundle: str | None = None, verify: bool = True,
        shards: int | str | None = None,
    ) -> list[FileRewrite]:
        """Batch rewrite reply in input order."""
        self._require_rewrite()
        named = tuple((str(name), source)
                      for name, source in named_sources)
        return self._batch(
            protocol.RewriteRequest(sources=named, bundle=bundle,
                                    ordered=True, stream=False,
                                    shards=shards, verify=verify),
            revive=FileRewrite.from_payload)

    def stream_rewrite_paths(self, paths, *, bundle: str | None = None,
                             ordered: bool = True, verify: bool = True,
                             shards: int | str | None = None,
                             ) -> Iterator[FileRewrite]:
        named = [(str(p), Path(p).read_text(encoding="utf-8"))
                 for p in paths]
        return self.stream_rewrite_sources(named, bundle=bundle,
                                           ordered=ordered,
                                           verify=verify, shards=shards)

    def stream_rewrite_dir(self, directory, pattern: str = "*.c", *,
                           bundle: str | None = None,
                           ordered: bool = True, verify: bool = True,
                           shards: int | str | None = None,
                           ) -> Iterator[FileRewrite]:
        paths = sorted(Path(directory).rglob(pattern))
        return self.stream_rewrite_paths(paths, bundle=bundle,
                                         ordered=ordered, verify=verify,
                                         shards=shards)

    def rewrite_paths(self, paths, *, bundle: str | None = None,
                      verify: bool = True,
                      shards: int | str | None = None,
                      ) -> list[FileRewrite]:
        named = [(str(p), Path(p).read_text(encoding="utf-8"))
                 for p in paths]
        return self.rewrite_sources(named, bundle=bundle, verify=verify,
                                    shards=shards)

    def rewrite_dir(self, directory, pattern: str = "*.c", *,
                    bundle: str | None = None, verify: bool = True,
                    shards: int | str | None = None,
                    ) -> list[FileRewrite]:
        paths = sorted(Path(directory).rglob(pattern))
        return self.rewrite_paths(paths, bundle=bundle, verify=verify,
                                  shards=shards)

    # -- server-side paths (daemon colocated with the corpus) ----------------

    def stream_server_dir(self, directory, pattern: str = "*.c", *,
                          bundle: str | None = None,
                          ordered: bool = True,
                          shards: int | str | None = None,
                          ) -> Iterator[FileSuggestions]:
        """Stream over a directory on the *server's* filesystem.

        No file contents travel client → server; the daemon reads and
        serves its local corpus (refusing with ``bad-request`` if the
        directory or a file is unreadable there).
        """
        return self._stream(protocol.SuggestRequest(
            dir=str(directory), pattern=pattern, bundle=bundle,
            ordered=ordered, stream=True, shards=shards))

    def suggest_server_dir(self, directory, pattern: str = "*.c", *,
                           bundle: str | None = None,
                           shards: int | str | None = None,
                           ) -> list[FileSuggestions]:
        return self._batch(protocol.SuggestRequest(
            dir=str(directory), pattern=pattern, bundle=bundle,
            ordered=True, stream=False, shards=shards))

    def suggest_server_paths(self, paths, *,
                             bundle: str | None = None,
                             shards: int | str | None = None,
                             ) -> list[FileSuggestions]:
        """Batch over files named by *server-side* paths."""
        return self._batch(protocol.SuggestRequest(
            paths=tuple(str(p) for p in paths), bundle=bundle,
            ordered=True, stream=False, shards=shards))
