"""AST → CFG construction.

The builder threads a *frontier* (the set of dangling edges waiting for
their destination) through the statement structure.  Loops push
break/continue collection frames; ``goto`` is resolved in a second pass
once every label has a node.

Call expressions inside a statement become their own CFG nodes hanging
off the statement with :data:`EdgeLabel.CALL` edges — this realises the
paper's "edges from nodes shared by the AST and CFG" device that lets the
model look for data races hidden behind function calls (Figure 3, node
``f1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG, EdgeLabel
from repro.cfront.nodes import (
    BreakStmt,
    CallExpr,
    CaseStmt,
    CompoundStmt,
    ContinueStmt,
    DeclStmt,
    DefaultStmt,
    DoStmt,
    Expr,
    ExprStmt,
    ForStmt,
    GotoStmt,
    IfStmt,
    LabelStmt,
    Node,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    WhileStmt,
)

#: (source node id, edge label) pairs waiting to be connected.
Frontier = list[tuple[int, EdgeLabel]]


@dataclass
class _LoopFrame:
    """break/continue collection for the innermost enclosing loop."""

    breaks: Frontier = field(default_factory=list)
    continues: Frontier = field(default_factory=list)


class CFGBuilder:
    """One-shot builder; use :func:`build_cfg`."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.loop_stack: list[_LoopFrame] = []
        self.switch_breaks: list[Frontier] = []
        self.labels: dict[str, int] = {}
        self.pending_gotos: list[tuple[int, str]] = []
        self.returns: Frontier = []
        #: push/pop record of breakable constructs ("loop" / "switch"),
        #: used to route ``break`` to the innermost one.
        self._frame_order: list[str] = []

    # -- plumbing ----------------------------------------------------------

    def _connect(self, frontier: Frontier, dst: int) -> None:
        for src, label in frontier:
            self.cfg.add_edge(src, dst, label)

    def _stmt_node(self, stmt: Stmt, role: str = "stmt") -> int:
        nid = self.cfg.add_node(stmt, role)
        self._attach_calls(nid, stmt)
        return nid

    def _expr_node(self, expr: Expr, role: str) -> int:
        nid = self.cfg.add_node(expr, role)
        self._attach_calls(nid, expr)
        return nid

    def _attach_calls(self, owner: int, root: Node) -> None:
        """Give every call expression under ``root`` its own CFG node."""
        for call in root.find_all(CallExpr):
            call_nid = self.cfg.add_node(call, "call")
            self.cfg.add_edge(owner, call_nid, EdgeLabel.CALL)

    # -- entry point -------------------------------------------------------

    def build(self, root: Stmt) -> CFG:
        entry = self.cfg.add_node(None, "entry")
        exit_ = self.cfg.add_node(None, "exit")
        self.cfg.entry, self.cfg.exit = entry, exit_
        frontier = self._build_stmt(root, [(entry, EdgeLabel.NEXT)])
        self._connect(frontier, exit_)
        self._connect(self.returns, exit_)
        for src, label_name in self.pending_gotos:
            dst = self.labels.get(label_name)
            if dst is not None:
                self.cfg.add_edge(src, dst, EdgeLabel.NEXT)
        return self.cfg

    # -- statement dispatch ----------------------------------------------------

    def _build_stmt(self, stmt: Stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, CompoundStmt):
            for inner in stmt.stmts:
                frontier = self._build_stmt(inner, frontier)
            return frontier
        if isinstance(stmt, IfStmt):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, ForStmt):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, WhileStmt):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, DoStmt):
            return self._build_do(stmt, frontier)
        if isinstance(stmt, SwitchStmt):
            return self._build_switch(stmt, frontier)
        if isinstance(stmt, ReturnStmt):
            nid = self._stmt_node(stmt)
            self._connect(frontier, nid)
            self.returns.append((nid, EdgeLabel.NEXT))
            return []
        if isinstance(stmt, BreakStmt):
            nid = self._stmt_node(stmt)
            self._connect(frontier, nid)
            target = self.switch_breaks[-1] if self.switch_breaks else None
            if self.loop_stack and (
                target is None or self._loop_is_inner_of_switch()
            ):
                self.loop_stack[-1].breaks.append((nid, EdgeLabel.NEXT))
            elif target is not None:
                target.append((nid, EdgeLabel.NEXT))
            return []
        if isinstance(stmt, ContinueStmt):
            nid = self._stmt_node(stmt)
            self._connect(frontier, nid)
            if self.loop_stack:
                self.loop_stack[-1].continues.append((nid, EdgeLabel.NEXT))
            return []
        if isinstance(stmt, GotoStmt):
            nid = self._stmt_node(stmt)
            self._connect(frontier, nid)
            self.pending_gotos.append((nid, stmt.label))
            return []
        if isinstance(stmt, LabelStmt):
            nid = self._stmt_node(stmt)
            self._connect(frontier, nid)
            self.labels[stmt.name] = nid
            return self._build_stmt(stmt.stmt, [(nid, EdgeLabel.NEXT)])
        if isinstance(stmt, (CaseStmt, DefaultStmt)):
            nid = self._stmt_node(stmt)
            self._connect(frontier, nid)
            inner = getattr(stmt, "stmt", None)
            if inner is not None:
                return self._build_stmt(inner, [(nid, EdgeLabel.NEXT)])
            return [(nid, EdgeLabel.NEXT)]
        # DeclStmt, ExprStmt and anything else: a plain sequential node.
        nid = self._stmt_node(stmt)
        self._connect(frontier, nid)
        return [(nid, EdgeLabel.NEXT)]

    def _loop_is_inner_of_switch(self) -> bool:
        """True when the innermost breakable construct is a loop."""
        return bool(self._frame_order) and self._frame_order[-1] == "loop"

    # -- structured statements ----------------------------------------------------

    def _build_if(self, stmt: IfStmt, frontier: Frontier) -> Frontier:
        cond = self._expr_node(stmt.cond, "cond")
        self._connect(frontier, cond)
        then_out = self._build_stmt(stmt.then, [(cond, EdgeLabel.TRUE)])
        if stmt.els is not None:
            else_out = self._build_stmt(stmt.els, [(cond, EdgeLabel.FALSE)])
            return then_out + else_out
        return then_out + [(cond, EdgeLabel.FALSE)]

    def _build_for(self, stmt: ForStmt, frontier: Frontier) -> Frontier:
        if stmt.init is not None:
            init = self._stmt_node(stmt.init, "init")
            self._connect(frontier, init)
            frontier = [(init, EdgeLabel.NEXT)]
        if stmt.cond is not None:
            cond = self._expr_node(stmt.cond, "cond")
            self._connect(frontier, cond)
            body_in: Frontier = [(cond, EdgeLabel.TRUE)]
            loop_exit: Frontier = [(cond, EdgeLabel.FALSE)]
            loop_head = cond
        else:
            # ``for (;;)`` — the body head is the loop head.
            cond = None
            body_in = frontier
            loop_exit = []
            loop_head = -1

        frame = _LoopFrame()
        self.loop_stack.append(frame)
        self._frame_order.append("loop")
        body_out = self._build_stmt(stmt.body, body_in)
        self._frame_order.pop()
        self.loop_stack.pop()

        continue_target = body_out + frame.continues
        if stmt.inc is not None:
            inc = self._expr_node(stmt.inc, "inc")
            self._connect(continue_target, inc)
            back_from: Frontier = [(inc, EdgeLabel.BACK)]
        else:
            back_from = [(nid, EdgeLabel.BACK) for nid, _ in continue_target]

        if cond is not None:
            self._connect(back_from, cond)
        elif self.cfg.nodes and body_in:
            # Headless infinite loop: back edge to the first body node.
            first_body = body_in[0][0]
            self._connect(back_from, first_body)
        return loop_exit + frame.breaks

    def _build_while(self, stmt: WhileStmt, frontier: Frontier) -> Frontier:
        cond = self._expr_node(stmt.cond, "cond")
        self._connect(frontier, cond)
        frame = _LoopFrame()
        self.loop_stack.append(frame)
        self._frame_order.append("loop")
        body_out = self._build_stmt(stmt.body, [(cond, EdgeLabel.TRUE)])
        self._frame_order.pop()
        self.loop_stack.pop()
        back = [(nid, EdgeLabel.BACK) for nid, _ in body_out + frame.continues]
        self._connect(back, cond)
        return [(cond, EdgeLabel.FALSE)] + frame.breaks

    def _build_do(self, stmt: DoStmt, frontier: Frontier) -> Frontier:
        frame = _LoopFrame()
        self.loop_stack.append(frame)
        self._frame_order.append("loop")
        # The body entry: we need a handle before building; use a pass-through
        # by building the body and connecting the incoming frontier to its
        # first node.  Simplest correct approach: a synthetic head via the
        # body itself — build body with the external frontier.
        body_out = self._build_stmt(stmt.body, frontier)
        self._frame_order.pop()
        self.loop_stack.pop()
        cond = self._expr_node(stmt.cond, "cond")
        self._connect(body_out + frame.continues, cond)
        # Back edge: cond true -> first body node.
        first_body = None
        for node in self.cfg.nodes:
            if node.ast is not None and self._contains(stmt.body, node.ast):
                first_body = node.nid
                break
        if first_body is not None:
            self.cfg.add_edge(cond, first_body, EdgeLabel.BACK)
        return [(cond, EdgeLabel.FALSE)] + frame.breaks

    @staticmethod
    def _contains(root: Node, target: Node) -> bool:
        return any(n is target for n in root.walk())

    def _build_switch(self, stmt: SwitchStmt, frontier: Frontier) -> Frontier:
        cond = self._expr_node(stmt.cond, "cond")
        self._connect(frontier, cond)
        breaks: Frontier = []
        self.switch_breaks.append(breaks)
        self._frame_order.append("switch")
        # Every case label gets an edge from the switch head; fall-through
        # comes from sequential construction inside the body.
        out = self._build_switch_body(stmt.body, cond)
        self._frame_order.pop()
        self.switch_breaks.pop()
        return out + breaks

    def _build_switch_body(self, body: Stmt, cond_nid: int) -> Frontier:
        if not isinstance(body, CompoundStmt):
            return self._build_stmt(body, [(cond_nid, EdgeLabel.TRUE)])
        frontier: Frontier = []
        has_default = False
        for inner in body.stmts:
            if isinstance(inner, (CaseStmt, DefaultStmt)):
                has_default = has_default or isinstance(inner, DefaultStmt)
                nid = self._stmt_node(inner)
                self.cfg.add_edge(cond_nid, nid, EdgeLabel.TRUE)
                self._connect(frontier, nid)  # fall-through from previous case
                frontier = [(nid, EdgeLabel.NEXT)]
                sub = getattr(inner, "stmt", None)
                if sub is not None:
                    frontier = self._build_stmt(sub, frontier)
            else:
                frontier = self._build_stmt(inner, frontier)
        if not has_default:
            frontier = frontier + [(cond_nid, EdgeLabel.FALSE)]
        return frontier


def build_cfg(root: Stmt) -> CFG:
    """Build the control-flow graph of a statement (loop or function body)."""
    return CFGBuilder().build(root)
