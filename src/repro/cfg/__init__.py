"""Control-flow graphs over the C AST.

CFG nodes *are* AST nodes (statements, loop/branch predicates, and call
expressions), which is what lets :mod:`repro.graphs` merge CFG edges
straight into the AST graph the way section 5.1.2 of the paper describes.
"""

from repro.cfg.graph import CFG, CFGEdge, CFGNode, EdgeLabel
from repro.cfg.builder import build_cfg
from repro.cfg.analysis import (
    dominates,
    immediate_dominators,
    scalars_read_after,
    unreachable_nodes,
)

__all__ = [
    "CFG",
    "CFGNode",
    "CFGEdge",
    "EdgeLabel",
    "build_cfg",
    "immediate_dominators",
    "dominates",
    "unreachable_nodes",
    "scalars_read_after",
]
