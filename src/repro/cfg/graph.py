"""CFG data structure."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx

from repro.cfront.nodes import Node


class EdgeLabel(enum.Enum):
    """Why control can move from one node to another."""

    NEXT = "next"      # unconditional fall-through
    TRUE = "true"      # predicate evaluated true
    FALSE = "false"    # predicate evaluated false
    BACK = "back"      # loop back edge
    CALL = "call"      # statement contains this call expression


@dataclass
class CFGNode:
    """One control-flow node.

    ``ast`` is ``None`` only for the synthetic entry/exit nodes; every
    other node points at the statement, predicate expression, or call
    expression it represents.
    """

    nid: int
    ast: Node | None
    role: str  # "entry" | "exit" | "stmt" | "cond" | "init" | "inc" | "call"

    @property
    def kind(self) -> str:
        return self.ast.kind if self.ast is not None else self.role


@dataclass
class CFGEdge:
    src: int
    dst: int
    label: EdgeLabel


@dataclass
class CFG:
    """A statement-level control-flow graph."""

    nodes: list[CFGNode] = field(default_factory=list)
    edges: list[CFGEdge] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    # -- construction helpers (used by the builder) --------------------------

    def add_node(self, ast: Node | None, role: str) -> int:
        nid = len(self.nodes)
        self.nodes.append(CFGNode(nid=nid, ast=ast, role=role))
        return nid

    def add_edge(self, src: int, dst: int, label: EdgeLabel = EdgeLabel.NEXT) -> None:
        self.edges.append(CFGEdge(src=src, dst=dst, label=label))

    # -- queries ---------------------------------------------------------------

    def succ(self, nid: int) -> list[tuple[int, EdgeLabel]]:
        return [(e.dst, e.label) for e in self.edges if e.src == nid]

    def pred(self, nid: int) -> list[tuple[int, EdgeLabel]]:
        return [(e.src, e.label) for e in self.edges if e.dst == nid]

    def node_for(self, ast: Node) -> CFGNode | None:
        """The CFG node representing a given AST node, if any."""
        for node in self.nodes:
            if node.ast is ast:
                return node
        return None

    @property
    def ast_nodes(self) -> list[Node]:
        """AST nodes shared between the AST and this CFG (paper §5.1.2)."""
        return [n.ast for n in self.nodes if n.ast is not None]

    def to_networkx(self) -> nx.DiGraph:
        """Export for dominator/reachability analyses and tests."""
        g = nx.DiGraph()
        for node in self.nodes:
            g.add_node(node.nid, role=node.role, kind=node.kind)
        for edge in self.edges:
            g.add_edge(edge.src, edge.dst, label=edge.label.value)
        return g

    def reachable_from_entry(self) -> set[int]:
        g = self.to_networkx()
        return {self.entry} | set(nx.descendants(g, self.entry))

    def back_edges(self) -> list[CFGEdge]:
        return [e for e in self.edges if e.label is EdgeLabel.BACK]
