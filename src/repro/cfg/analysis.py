"""Analyses over control-flow graphs and statement sequences.

Dominators and reachability come straight from networkx over the CFG;
the liveness helpers answer the question the pragma suggester needs:
*is a scalar consumed after the loop?* — which decides ``private`` vs
``lastprivate`` (a privatized scalar whose final value escapes must be
``lastprivate`` for correctness).
"""

from __future__ import annotations

import networkx as nx

from repro.cfg.graph import CFG
from repro.cfront.nodes import (
    CompoundStmt,
    DeclRefExpr,
    BinaryOperator,
    Node,
    Stmt,
    UnaryOperator,
)


def immediate_dominators(cfg: CFG) -> dict[int, int]:
    """Immediate dominator of every reachable CFG node.

    The entry always maps to itself (newer networkx versions omit the
    trivial self-entry).
    """
    g = cfg.to_networkx()
    idom = dict(nx.immediate_dominators(g, cfg.entry))
    idom.setdefault(cfg.entry, cfg.entry)
    return idom


def dominates(cfg: CFG, a: int, b: int) -> bool:
    """Does node ``a`` dominate node ``b``?"""
    idom = immediate_dominators(cfg)
    node = b
    while node != cfg.entry:
        if node == a:
            return True
        if node not in idom or idom[node] == node:
            return False
        node = idom[node]
    return node == a


def unreachable_nodes(cfg: CFG) -> set[int]:
    """CFG nodes no path from entry reaches (dead code)."""
    reachable = cfg.reachable_from_entry()
    return {n.nid for n in cfg.nodes} - reachable


# ---------------------------------------------------------------------------
# Post-loop liveness (statement-sequence level)
# ---------------------------------------------------------------------------


def _reads_of(node: Node) -> set[str]:
    """Names read inside a subtree (writes' lhs excluded)."""
    reads: set[str] = set()

    def visit(n: Node) -> None:
        if isinstance(n, BinaryOperator) and n.is_assignment:
            if n.is_compound_assignment:
                visit(n.lhs)
            else:
                # Only subscripts of the lhs are reads.
                for child in n.lhs.children():
                    visit(child)
            visit(n.rhs)
            return
        if isinstance(n, DeclRefExpr):
            reads.add(n.name)
            return
        for child in n.children():
            visit(child)

    visit(node)
    return reads


def scalars_read_after(container: Stmt, loop: Stmt) -> set[str]:
    """Names read by statements that follow ``loop`` inside ``container``.

    Walks every compound statement; once ``loop`` is seen, all subsequent
    sibling statements (and, recursively, statements after the enclosing
    block) contribute reads.  Used to decide ``lastprivate``.
    """
    after_reads: set[str] = set()

    def visit(stmt: Stmt) -> bool:
        """Returns True once the loop has been passed inside this subtree."""
        if stmt is loop:
            return True
        passed = False
        if isinstance(stmt, CompoundStmt):
            for inner in stmt.stmts:
                if passed:
                    after_reads.update(_reads_of(inner))
                else:
                    passed = visit(inner)
            return passed
        for child in stmt.children():
            if isinstance(child, Stmt):
                if passed:
                    after_reads.update(_reads_of(child))
                else:
                    passed = visit(child)
        return passed

    visit(container)
    return after_reads
