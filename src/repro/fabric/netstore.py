"""Network ``SuggestionStore``: one warm cache shared fleet-wide.

:class:`NetworkStore` duck-types the on-disk
:class:`~repro.serve.store.SuggestionStore` — the same
``get_parse``/``put_parse``, ``get_suggestions``/``put_suggestions``,
``get_verdict``/``put_verdict`` layers, the same ``gc``/``fsck``/
``describe`` maintenance surface, the same hit/miss/write-error
counters — but executes every operation against a ``repro serve``
daemon's store over the wire (:class:`~repro.serve.protocol.StoreOp`).
The daemon runs the real on-disk store, so the atomic-commit contract
(tmp + rename, torn entries degrade to misses) is *inherited*, not
re-implemented, and a corpus one peer just computed is warm for every
other peer pointing its ``--cache-dir net:ADDR`` at the same daemon.

Failure semantics follow the store's "accelerator, not product" rule:
a network failure on ``get`` degrades to a miss, on ``put`` to a
``write_errors`` count — a dead cache daemon slows a run down, it
never fails one.  Maintenance operations (``gc``/``fsck``/
``describe``) raise instead: an operator pruning a cache must know
the cache was unreachable.
"""

from __future__ import annotations

from repro.client import Client, ClientError, RetryPolicy, connect

#: codes that mean the daemon will never serve store ops on this
#: connection — reconnecting cannot help, so the store goes dormant
_FATAL_CODES = ("fabric-unsupported", "no-store", "protocol-mismatch",
                "bad-address")


class NetworkStore:
    """Store backend speaking the daemon's store operations."""

    def __init__(self, address: str, *, timeout: float = 60.0,
                 retry: RetryPolicy | None = None) -> None:
        self.address = address
        #: spec string a shard worker re-opens this backend from
        #: (mirrors the on-disk store's ``base`` root attribute)
        self.base = f"net:{address}"
        self.timeout = timeout
        self.retry = retry
        self._client: Client | None = None
        #: a non-transient refusal was seen (no store on the daemon,
        #: capability missing): serve misses instead of re-dialing
        self._dead = False
        self.parse_hits = 0
        self.parse_misses = 0
        self.suggest_hits = 0
        self.suggest_misses = 0
        self.verdict_hits = 0
        self.verdict_misses = 0
        self.write_errors = 0

    # -- connection plumbing -------------------------------------------------

    def _connect(self) -> Client:
        if self._client is None:
            client = connect(self.address, timeout=self.timeout,
                             retry=self.retry,
                             client_id="repro.netstore")
            if not client.capabilities.get("network_store"):
                client.close()
                raise ClientError(
                    f"daemon at {self.address} has no store to share "
                    f"(started without --cache-dir?)", code="no-store")
            self._client = client
        return self._client

    def _drop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None

    def close(self) -> None:
        self._drop()

    def _op(self, op: str, **kw):
        """One store op, raising on failure (maintenance semantics)."""
        try:
            return self._connect().store_op(op, **kw)
        except (ClientError, OSError) as exc:
            self._drop()
            if getattr(exc, "code", None) in _FATAL_CODES:
                self._dead = True
            raise

    # -- the cache surface (degrading, like the on-disk store) ---------------

    def _try_get(self, layer: str, key: str,
                 model_key: str | None = None) -> dict | None:
        if self._dead:
            return None
        try:
            return self._op("get", layer=layer, key=key,
                            model_key=model_key).entry
        except (ClientError, OSError):
            return None

    def _try_put(self, layer: str, key: str, entry: dict,
                 model_key: str | None = None) -> None:
        if self._dead:
            self.write_errors += 1
            return
        try:
            self._op("put", layer=layer, key=key, entry=entry,
                     model_key=model_key)
        except (ClientError, OSError):
            self.write_errors += 1

    def get_parse(self, key: str) -> dict | None:
        payload = self._try_get("parse", key)
        if payload is None:
            self.parse_misses += 1
        else:
            self.parse_hits += 1
        return payload

    def put_parse(self, key: str, payload: dict) -> None:
        self._try_put("parse", key, payload)

    def get_suggestions(self, model_key: str, key: str) -> dict | None:
        payload = self._try_get("suggest", key, model_key)
        if payload is None:
            self.suggest_misses += 1
        else:
            self.suggest_hits += 1
        return payload

    def put_suggestions(self, model_key: str, key: str,
                        payload: dict) -> None:
        self._try_put("suggest", key, payload, model_key)

    def get_verdict(self, key: str) -> dict | None:
        payload = self._try_get("verdict", key)
        if payload is None:
            self.verdict_misses += 1
        else:
            self.verdict_hits += 1
        return payload

    def put_verdict(self, key: str, payload: dict) -> None:
        self._try_put("verdict", key, payload)

    # -- maintenance (raising: operators must see failures) ------------------

    def gc(self, max_bytes: int | None = None,
           max_age_days: float | None = None,
           now: float | None = None) -> dict:
        args: dict = {}
        if max_bytes is not None:
            args["max_bytes"] = max_bytes
        if max_age_days is not None:
            args["max_age_days"] = max_age_days
        if now is not None:
            args["now"] = now
        return self._op("gc", args=args).report

    def fsck(self, remove: bool = True) -> dict:
        return self._op("fsck", args={"remove": remove}).report

    def describe(self) -> dict:
        return self._op("describe").report

    def stats(self) -> dict:
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "suggest_hits": self.suggest_hits,
            "suggest_misses": self.suggest_misses,
            "verdict_hits": self.verdict_hits,
            "verdict_misses": self.verdict_misses,
            "write_errors": self.write_errors,
        }
