"""Content-addressed bundle distribution across serve peers.

An archive produced by :func:`~repro.artifacts.bundle.pack_bundle` is
addressed by the SHA-256 of its bytes.  Before a coordinator fans a
run out it *provisions* its peers: ``bundle-have(sha)`` asks whether a
peer already holds the content, and only a miss triggers a
``bundle-push`` carrying the bytes — so an archive transits the wire
at most once per peer, ever, and ``repro suggest-dir --peers A,B
--bundle x.tar.gz`` is self-provisioning against empty daemons.  The
receiving peer recomputes the digest before trusting the archive
(:meth:`~repro.artifacts.registry.BundleRegistry.add_archive` refuses
mismatches), caches it in its registry under a hash-addressed name,
and serves it immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.artifacts.bundle import pack_bundle
from repro.artifacts.registry import archive_sha256, bundle_name_from_path
from repro.client import Client, RetryPolicy, connect


@dataclass(frozen=True)
class PeerBundle:
    """Outcome of provisioning one peer with one archive."""

    peer: str
    name: str
    sha256: str
    #: whether the archive's bytes actually crossed the wire — False
    #: is the cache hit the push-once contract promises on re-runs
    pushed: bool


def archive_for(bundle: str | Path, scratch_dir: str | Path) -> Path:
    """``bundle`` as a single-file archive, packing directories.

    A path that is already an archive file is returned untouched; a
    bundle *directory* is packed into ``scratch_dir`` first — the wire
    ships archives only, so hashes are well-defined.
    """
    path = Path(bundle)
    if path.is_file():
        return path
    archive = Path(scratch_dir) / f"{path.name or 'bundle'}.tar.gz"
    pack_bundle(path, archive)
    return archive


def ensure_bundle(client: Client, archive: str | Path, *,
                  sha256: str | None = None,
                  name: str | None = None) -> tuple[str, bool]:
    """Make one connected peer serve ``archive``; push only on miss.

    Returns ``(serving_name, pushed)`` — the registry name the peer
    serves the content under (which may be a pre-existing name if the
    peer already held the hash) and whether bytes were shipped.
    """
    path = Path(archive)
    if sha256 is None:
        sha256 = archive_sha256(path)
    have = client.bundle_have(sha256)
    if have.have and have.name is not None:
        return have.name, False
    reply = client.bundle_push(
        path.read_bytes(), sha256=sha256,
        name=name or bundle_name_from_path(path))
    return reply.name, not reply.cached


def provision_peers(peers, archive: str | Path, *,
                    timeout: float = 120.0,
                    retry: RetryPolicy | None = None) -> list[PeerBundle]:
    """Ensure every peer serves ``archive``, hashing it exactly once.

    One short-lived connection per peer; failures propagate — a run
    must not start against a fleet that is only partially provisioned.
    """
    path = Path(archive)
    sha256 = archive_sha256(path)
    name = bundle_name_from_path(path)
    report: list[PeerBundle] = []
    for peer in peers:
        with connect(peer, timeout=timeout, retry=retry,
                     client_id="repro.fabric/provision") as client:
            served, pushed = ensure_bundle(client, path, sha256=sha256,
                                           name=name)
        report.append(PeerBundle(peer=peer, name=served, sha256=sha256,
                                 pushed=pushed))
    return report
