"""Distributed serving fabric: remote shards, CAS bundles, net store.

The fabric turns a set of ``repro serve`` daemons into one serving
fleet: :func:`stream_fabric` fans a corpus out across peers through
the existing shard supervisor (peer loss requeues, never aborts),
:func:`provision_peers` ships a bundle archive to every peer at most
once (content-addressed by SHA-256), and :class:`NetworkStore` lets
the whole fleet share a single warm :class:`~repro.serve.store.
SuggestionStore` over the wire.
"""

from repro.fabric.cas import (
    PeerBundle,
    archive_for,
    ensure_bundle,
    provision_peers,
)
from repro.fabric.netstore import NetworkStore
from repro.fabric.remote import iter_inline, relay_shard, stream_fabric

__all__ = [
    "NetworkStore",
    "PeerBundle",
    "archive_for",
    "ensure_bundle",
    "iter_inline",
    "provision_peers",
    "relay_shard",
    "stream_fabric",
]
