"""Remote shard backend: workers that dial peers instead of forking.

:func:`stream_fabric` is the coordinator side of distributed serving.
It plans the corpus into one shard per peer (:func:`plan_peer_shards`)
and hands the plan to the *unchanged* :func:`~repro.serve.stream.
stream_shards` supervisor — but the :class:`~repro.serve.worker.
WorkerSpec` it builds carries ``peers``, so each worker process, rather
than rebuilding a local service, dials one of the listed ``repro
serve`` daemons (:func:`relay_shard`) and forwards the streamed
:class:`~repro.serve.protocol.FileResult` frames onto the supervisor
queue verbatim.

The relay translates *peer* failure into *worker* failure: a peer
that drops mid-stream or goes silent past the client timeout makes
the relay process exit nonzero without an ``("error", ...)`` message
— to the supervisor that is indistinguishable from a local worker
SIGKILL, so the whole PR-9 machinery (requeue onto a careful respawn,
bounded retries, per-file quarantine) applies unchanged.  Dialing
rotates: a shard starts at slot ``sid % len(peers)`` and a refused
connection moves to the next peer (:func:`_dial`), so losing one
daemon re-routes its files onto the survivors — at dial time
immediately, mid-stream via the supervisor's requeue respawning a
relay that then rotates past the corpse.  Only a fleet with *no*
reachable peer raises, which ``worker_main`` reports as a soft error:
when nobody answers, retrying is noise and the run must abort.

Results are byte-identical to the in-process path at every peer count:
peers serve byte-identically (the PR-5 invariant), and the relay never
touches a payload.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterator
from dataclasses import replace

from repro.client import ClientError, RetryPolicy, connect
from repro.serve import faults, protocol
from repro.serve.pipeline import FileSuggestions, ServeConfig
from repro.serve.plan import plan_peer_shards
from repro.serve.stream import merge_results, stream_shards
from repro.serve.worker import WorkerSpec

#: connect attempts per relay incarnation — kept small because the
#: supervisor's retry/requeue loop is the real (per-lineage) budget
_RELAY_ATTEMPTS = 3


def _dial(spec: WorkerSpec, sid: int, *, client_id: str):
    """Connect to the first reachable peer, starting at ``sid``'s slot.

    Rotation is what turns a dead peer into a failover instead of a
    quarantine: the shard's home slot is ``sid % len(peers)``, and a
    refused connection moves one slot over rather than killing the
    relay — so a fleet keeps serving as long as *any* peer answers.
    Raises when none does; ``worker_main`` reports that as a soft
    error that aborts the run, because requeuing cannot conjure a
    reachable daemon.  Returns ``(client, bundle_name)`` with the
    bundle aligned to the peer that actually answered.
    """
    last_exc: Exception | None = None
    for attempt in range(len(spec.peers)):
        slot = (sid + attempt) % len(spec.peers)
        bundle = spec.peer_bundles[slot] if spec.peer_bundles else None
        try:
            client = connect(
                spec.peers[slot], timeout=spec.peer_timeout_s,
                retry=RetryPolicy(max_attempts=_RELAY_ATTEMPTS,
                                  seed=sid),
                client_id=client_id)
            return client, bundle
        except (ClientError, OSError) as exc:
            last_exc = exc
    raise ClientError(
        f"no reachable peer among {list(spec.peers)}: {last_exc}",
        code="no-peers")


def _request_for(spec: WorkerSpec, items,
                 bundle: str | None) -> protocol.SuggestRequest:
    named = tuple((str(name), source) for name, source in items)
    if spec.mode == "rewrite":
        return protocol.RewriteRequest(sources=named, bundle=bundle,
                                       ordered=False, stream=True,
                                       verify=spec.verify)
    return protocol.SuggestRequest(sources=named, bundle=bundle,
                                   ordered=False, stream=True)


def _die(queue) -> None:
    """Exit as a *hard* worker death.

    Flushes messages already handed to the queue (delivered files must
    not be lost with the process), then exits without touching python
    exception handling — ``worker_main`` must not see this as a soft
    error, because a soft error aborts the whole run while a hard
    death is requeued.
    """
    try:
        queue.close()
        queue.join_thread()
    except Exception:
        pass
    os._exit(1)


def relay_shard(spec: WorkerSpec, shard, queue, heartbeat, *,
                careful: bool = False) -> None:
    """Worker-process body for a remote shard: dial, stream, forward.

    Speaks the exact queue contract of a local worker — ``file`` /
    ``claim`` / ``done`` messages plus the heartbeat ``worker_main``
    already started — so the supervisor cannot tell a peer relay from
    a forked pipeline.  Careful mode issues one request per file with
    a claim ahead of each, preserving per-file blame across the wire.
    """
    client, bundle = _dial(spec, shard.sid,
                           client_id=f"repro.fabric/shard{shard.sid}")
    files_done = 0

    def _emit(local_index: int, name: str, payload: dict) -> None:
        nonlocal files_done
        action = faults.on_worker_file(shard.sid, files_done, name)
        if action == "hang":
            heartbeat.stop()
            time.sleep(faults.HANG_S)
        elif action == "kill":
            queue.close()
            queue.join_thread()
            faults.kill_self()
        queue.put(("file", shard.sid, shard.indices[local_index],
                   name, payload))
        files_done += 1

    try:
        if careful:
            for local_index in range(len(shard.items)):
                queue.put(("claim", shard.sid,
                           shard.indices[local_index]))
                request = _request_for(
                    spec, [shard.items[local_index]], bundle)
                for frame in client.stream_request(request):
                    _emit(local_index, frame.name, frame.payload)
        else:
            request = _request_for(spec, shard.items, bundle)
            for frame in client.stream_request(request):
                _emit(frame.index, frame.name, frame.payload)
        queue.put(("done", shard.sid, {}))
    except (ClientError, OSError):
        _die(queue)
    finally:
        try:
            client.close()
        except Exception:
            pass


def iter_inline(spec: WorkerSpec, named_sources,
                revive) -> Iterator[tuple[int, object]]:
    """Process-free fallback: relay the whole corpus through one peer.

    Used when worker processes cannot spawn at all — remote shards do
    not need local processes to parallelize (the peers compute), so
    the sandboxed coordinator still serves, just without local fan-out.
    """
    client, bundle = _dial(spec, 0, client_id="repro.fabric/inline")
    try:
        request = _request_for(spec, list(named_sources), bundle)
        for frame in client.stream_request(request):
            yield frame.index, revive(frame.name, frame.payload)
    finally:
        client.close()


def stream_fabric(
    peers, named_sources, *, mode: str = "suggest", verify: bool = True,
    peer_bundles=(), ordered: bool = True,
    config: ServeConfig | None = None, timeout_s: float = 600.0,
) -> Iterator:
    """Fan ``(name, source)`` pairs out across remote peer daemons.

    Yields :class:`~repro.serve.pipeline.FileSuggestions` (or
    :class:`~repro.rewrite.FileRewrite` in ``mode="rewrite"``) exactly
    as the in-process ``stream_sources`` would — byte-identical
    results, same ordered / as-completed semantics — with the compute
    happening on the peers and peer loss handled by requeue.
    ``peer_bundles`` (from :func:`~repro.fabric.cas.provision_peers`)
    names the bundle each peer serves; empty means every peer's
    default.  ``config`` supplies the supervision knobs
    (``max_retries``, ``heartbeat_s``, ``retry_backoff_s``).
    """
    peers = tuple(peers)
    if not peers:
        raise ValueError("stream_fabric needs at least one peer")
    peer_bundles = tuple(peer_bundles)
    if peer_bundles and len(peer_bundles) != len(peers):
        raise ValueError("peer_bundles must align with peers")
    config = config if config is not None else ServeConfig()
    spec = WorkerSpec(config=replace(config, shards=1, workers=1),
                      mode=mode, verify=verify, peers=peers,
                      peer_bundles=peer_bundles,
                      peer_timeout_s=timeout_s)
    if mode == "rewrite":
        from repro.rewrite import FileRewrite

        revive = FileRewrite.from_payload
    else:
        revive = FileSuggestions.from_payload
    named = [(str(name), source) for name, source in named_sources]
    n_shards = plan_peer_shards(len(peers), named)
    return merge_results(
        stream_shards(spec, named, n_shards, revive=revive),
        ordered=ordered)
