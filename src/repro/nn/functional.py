"""Loss functions and prediction helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import (
    Tensor,
    _as_array,
    fast_math_enabled,
    log_softmax,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    concat,
    stack,
)

__all__ = [
    "softmax",
    "log_softmax",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "concat",
    "stack",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "accuracy",
    "predict_classes",
]


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  weight: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy of ``(B, C)`` logits against integer labels.

    ``weight`` optionally rescales each class (used to balance the
    parallel / non-parallel class skew of OMP_Serial).  The default
    fused kernel runs softmax, pick, and reduction as one tape node;
    its loss and gradient are bit-identical to the composed-op path
    (``repro.nn.tensor.use_fast_math(False)`` restores the latter).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if fast_math_enabled():
        return _fused_cross_entropy(logits, labels, weight)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    picked = logp[rows, labels]
    if weight is not None:
        w = np.asarray(weight, dtype=np.float32)[labels]
        return -(picked * Tensor(w)).sum() * (1.0 / max(w.sum(), 1e-8))
    return -picked.mean()


def _fused_cross_entropy(logits: Tensor, labels: np.ndarray,
                         weight: np.ndarray | None) -> Tensor:
    """Softmax + pick + (weighted) mean reduction as one tape node.

    Replays the composed ``log_softmax → gather → mean`` chain's
    expressions in tape order, so loss values and logits gradients
    match the composed path bit-for-bit.
    """
    z = logits.data
    shifted = z - z.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = (shifted - lse).astype(z.dtype, copy=False)
    p = np.exp(logp)
    rows = np.arange(labels.shape[0])
    picked = logp[rows, labels]
    if weight is not None:
        w32 = np.asarray(weight, dtype=np.float32)[labels]
        w = _as_array(w32)
        scale = _as_array(1.0 / max(w32.sum(), 1e-8))
        value = -(picked * w).sum() * scale
    else:
        inv_count = _as_array(1.0 / picked.size)
        value = -(picked.sum() * inv_count)

    def backward(g: np.ndarray) -> None:
        if weight is not None:
            g_picked = np.broadcast_to(-(g * scale), picked.shape) * w
        else:
            g_picked = np.broadcast_to(-g * inv_count, picked.shape)
        grad = np.zeros_like(logp)
        np.add.at(grad, (rows, labels), g_picked)
        logits._accumulate_owned(grad - p * grad.sum(axis=-1, keepdims=True))

    return logits._make(np.asarray(value), (logits,), backward)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Stable BCE on raw logits (targets in {0, 1})."""
    t = np.asarray(targets, dtype=np.float32)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    x = logits
    relu_x = x.relu()
    abs_x = x.abs()
    log_term = ((-abs_x).exp() + 1.0).log()
    return (log_term + relu_x - x * Tensor(t)).mean()


def predict_classes(logits: Tensor | np.ndarray) -> np.ndarray:
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return data.argmax(axis=-1)


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    preds = predict_classes(logits)
    labels = np.asarray(labels)
    return float((preds == labels).mean()) if labels.size else 0.0
