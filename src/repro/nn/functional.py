"""Loss functions and prediction helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import (
    Tensor,
    log_softmax,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    concat,
    stack,
)

__all__ = [
    "softmax",
    "log_softmax",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "concat",
    "stack",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "accuracy",
    "predict_classes",
]


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  weight: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy of ``(B, C)`` logits against integer labels.

    ``weight`` optionally rescales each class (used to balance the
    parallel / non-parallel class skew of OMP_Serial).
    """
    labels = np.asarray(labels, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    picked = logp[rows, labels]
    if weight is not None:
        w = np.asarray(weight, dtype=np.float32)[labels]
        return -(picked * Tensor(w)).sum() * (1.0 / max(w.sum(), 1e-8))
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Stable BCE on raw logits (targets in {0, 1})."""
    t = np.asarray(targets, dtype=np.float32)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    x = logits
    relu_x = x.relu()
    abs_x = x.abs()
    log_term = ((-abs_x).exp() + 1.0).log()
    return (log_term + relu_x - x * Tensor(t)).mean()


def predict_classes(logits: Tensor | np.ndarray) -> np.ndarray:
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return data.argmax(axis=-1)


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    preds = predict_classes(logits)
    labels = np.asarray(labels)
    return float((preds == labels).mean()) if labels.size else 0.0
