"""A reverse-mode autodiff tensor on numpy.

Design:每 op builds a closure capturing its inputs; ``backward()`` runs a
topological sort over the tape and accumulates gradients.  All heavy math
is numpy — Python only orchestrates.  Gradients are plain ``np.ndarray``.

Beyond the usual dense ops, three primitives make graph neural networks
efficient here:

- :meth:`Tensor.gather` / fancy ``__getitem__`` — row lookup with
  scatter-add backward;
- :func:`segment_sum` — ``np.add.at`` aggregation of edge messages onto
  target nodes;
- :func:`segment_softmax` — numerically stable softmax over variable-size
  segments (attention over each node's incoming edges), with the closed
  form Jacobian-vector product ``p * (g - seg_sum(p*g))``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = True

#: When True (the default), layers route through the fused training
#: kernels (:func:`typed_linear`, :func:`fused_layer_norm`,
#: :func:`fused_cross_entropy`) and the optimizers reuse gradient /
#: scratch buffers.  The fused paths replay the composed tape's
#: arithmetic operation-for-operation, so results are bit-identical;
#: flipping this off restores the original composed tape for
#: benchmarking and parity tests.
_FAST_MATH = True


def fast_math_enabled() -> bool:
    return _FAST_MATH


def set_fast_math(enabled: bool) -> None:
    global _FAST_MATH
    _FAST_MATH = bool(enabled)


@contextlib.contextmanager
def use_fast_math(enabled: bool):
    """Temporarily enable/disable the fused training fast path."""
    global _FAST_MATH
    prev = _FAST_MATH
    _FAST_MATH = bool(enabled)
    try:
        yield
    finally:
        _FAST_MATH = prev

#: Default floating dtype; float32 for speed.  Tests flip this to float64
#: for tight numerical gradient checks.
DEFAULT_DTYPE = np.float32


def set_default_dtype(dtype) -> None:
    global DEFAULT_DTYPE
    DEFAULT_DTYPE = dtype


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Disable tape recording (inference / metric computation)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value, dtype=None) -> np.ndarray:
    dtype = dtype or DEFAULT_DTYPE
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def scatter_add_rows(target: np.ndarray, idx: np.ndarray,
                     values: np.ndarray) -> None:
    """``np.add.at(target, idx, values)`` for 1-D integer row indices.

    2-D scatters (the message-aggregation hot path) go through a flat
    ``np.bincount``, which profiled ~2× faster than ``ufunc.at`` on
    batched graphs.  It is used at *every* size so single-graph and
    block-diagonal batched forwards accumulate identically (same
    per-bucket contribution order, same float64 accumulator).
    """
    idx = np.asarray(idx)
    if values.ndim == 2 and idx.ndim == 1:
        n, d = target.shape
        flat = idx[:, None] * d + np.arange(d)
        target += np.bincount(
            flat.ravel(), weights=values.ravel(), minlength=n * d,
        ).reshape(n, d).astype(target.dtype, copy=False)
        return
    np.add.at(target, idx, values)


def scatter_rounds(idx: np.ndarray, max_rounds: int = 64):
    """Duplicate-index decomposition for a bit-exact fast ``np.add.at``.

    ``np.add.at`` applies row updates strictly in occurrence order,
    one element at a time — correct, and painfully slow.  Splitting the
    positions into *rounds*, where round ``r`` holds the ``r``-th
    occurrence of every distinct index, lets each round run as one
    vectorised fancy-index ``+=`` (its targets are unique), while each
    target position still receives its contributions in occurrence
    order — so the result is bit-identical to ``np.add.at``.

    Returns ``[(targets, positions)]`` per round (``positions is None``
    for the all-unique single round), or ``None`` when the deepest
    duplicate chain exceeds ``max_rounds`` and the per-round overhead
    would lose to ``np.add.at`` (callers fall back).  The decomposition
    depends only on ``idx``, so batches cache it across layers, models
    and epochs.
    """
    idx = np.asarray(idx)
    n = idx.shape[0]
    if n == 0:
        return []
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_idx[1:] != sorted_idx[:-1])))
    counts = np.diff(np.append(starts, n))
    max_dup = int(counts.max())
    if max_dup == 1:
        return [(idx, None)]
    if max_dup > max_rounds:
        return None
    ranks = np.arange(n) - np.repeat(starts, counts)
    rank_order = np.argsort(ranks, kind="stable")
    bounds = np.flatnonzero(np.diff(ranks[rank_order])) + 1
    rounds = []
    for piece in np.split(rank_order, bounds):
        sel = order[piece]
        rounds.append((idx[sel], sel))
    return rounds


def scatter_add_exact(target: np.ndarray, idx: np.ndarray,
                      values: np.ndarray, rounds=None) -> None:
    """``np.add.at(target, idx, values)``, bit for bit, via
    :func:`scatter_rounds` when a decomposition is available.

    ``rounds=None`` computes the decomposition here; ``rounds=False``
    is the cached "no decomposition wins" verdict and goes straight to
    ``np.add.at`` without re-deriving it.
    """
    if rounds is None:
        rounds = scatter_rounds(idx)
    if rounds is None or rounds is False:
        np.add.at(target, idx, values)
        return
    for tgt, sel in rounds:
        if sel is None:
            target[tgt] += values
        else:
            target[tgt] += values[sel]


def segment_max_rows(idx: np.ndarray, values: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Per-segment maximum over rows."""
    out_shape = (num_segments,) + values.shape[1:]
    out = np.full(out_shape, -np.inf, dtype=values.dtype)
    np.maximum.at(out, np.asarray(idx), values)
    return out


class Tensor:
    """A numpy array with a gradient tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # keep numpy from hijacking right-ops

    def __init__(self, data, requires_grad: bool = False, name: str = "") -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- basics ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """:meth:`_accumulate` for a gradient array the caller hands
        over (freshly allocated, never reused): adopting it in place
        skips the defensive first-accumulation copy.  Values are
        unchanged — a copy of ``grad`` is ``grad``."""
        if (self.grad is None and grad.dtype == self.data.dtype
                and grad.shape == self.data.shape):
            self.grad = grad
        else:
            self._accumulate(grad)

    # -- backprop driver ------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data ** 2))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        """Matrix product; operands must be >= 2-D (batch dims broadcast)."""
        other = self._lift(other)
        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError("matmul operands must be at least 2-D")
        data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                ga = g @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.data.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ g
                other._accumulate(_unbroadcast(gb, other.data.shape))

        return self._make(data, (self, other), backward)

    # -- elementwise functions ---------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * 0.5 / data)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return self._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximation GELU (what HGT/transformers use).

        ``x ** 3`` is spelled as repeated multiplication: numpy routes
        float array powers through ``pow``, which profiled ~20× slower
        than two in-place multiplies and dominated batched inference.
        """
        c = self.data.dtype.type(np.sqrt(2.0 / np.pi))
        x = self.data
        x_sq = x * x
        inner = x_sq * x
        inner *= 0.044715
        inner += x
        inner *= c
        t = np.tanh(inner)
        data = 1.0 + t
        data *= x
        data *= 0.5

        def backward(g: np.ndarray) -> None:
            # staged in place, operation order unchanged:
            # dt = (1 - t²)·c·(1 + 3·0.044715·x²)
            dt = t * t
            np.subtract(1.0, dt, out=dt)
            dt *= c
            w = x_sq * (3 * 0.044715)
            w += 1.0
            dt *= w
            # g · (0.5·(1 + t) + (0.5·x)·dt), keeping the original
            # multiply grouping
            out_g = 1.0 + t
            out_g *= 0.5
            v = x * 0.5
            v *= dt
            out_g += v
            out_g *= g
            self._accumulate_owned(out_g)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * sign)

        return self._make(np.abs(self.data), (self,), backward)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = np.asarray(g)
            expanded = data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    # -- shape ops --------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(self.data.shape))

        return self._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return self._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        data = np.swapaxes(self.data, a, b)

        def backward(g: np.ndarray) -> None:
            self._accumulate(np.swapaxes(g, a, b))

        return self._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            self._accumulate(grad)

        return self._make(data, (self,), backward)

    def gather(self, indices: np.ndarray) -> "Tensor":
        """Row lookup ``self[indices]`` with scatter-add backward."""
        return self[np.asarray(indices)]

    # -- normalisation helpers -----------------------------------------------------

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (no grad there)."""
        data = np.where(mask, self.data.dtype.type(value), self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(np.where(mask, 0.0, g))

        return self._make(data, (self,), backward)


# ---------------------------------------------------------------------------
# Free functions
# ---------------------------------------------------------------------------


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` with split backward."""
    tensors = list(tensors)
    datas = [t.data for t in tensors]
    data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets, offsets[1:]):
            if t.requires_grad:
                idx = [slice(None)] * g.ndim
                idx[axis] = slice(start, stop)
                t._accumulate(g[tuple(idx)])

    out = Tensor(data)
    if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._parents = tuple(t for t in tensors if t.requires_grad)
        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (reshape + concat)."""
    expanded = []
    for t in tensors:
        new_shape = list(t.shape)
        new_shape.insert(axis if axis >= 0 else axis + t.ndim + 1, 1)
        expanded.append(t.reshape(*new_shape))
    return concat(expanded, axis=axis)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets.

    ``segment_ids`` has one entry per row of ``x``; backward is a gather.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + x.data.shape[1:]
    data = np.zeros(out_shape, dtype=x.data.dtype)
    scatter_add_rows(data, segment_ids, x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g[segment_ids])

    return x._make(data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-pool rows into segments (graph readout)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (x.ndim - 1))
    total = segment_sum(x, segment_ids, num_segments)
    return total * Tensor(1.0 / counts)


def segment_softmax(logits: Tensor, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax over variable-size segments (edge attention).

    ``logits`` is 1-D or 2-D ``(E, H)`` (per-head).  Stability comes from
    subtracting the per-segment max.  Backward uses the softmax JVP
    restricted to segments: ``dL/dz = p * (g - Σ_seg p·g)``.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    z = logits.data
    seg_shape = (num_segments,) + z.shape[1:]
    seg_max = segment_max_rows(segment_ids, z, num_segments)
    shifted = z - seg_max[segment_ids]
    exp = np.exp(shifted)
    denom = np.zeros(seg_shape, dtype=z.dtype)
    scatter_add_rows(denom, segment_ids, exp)
    p = exp / np.maximum(denom[segment_ids], 1e-12)

    def backward(g: np.ndarray) -> None:
        pg = p * g
        seg_pg = np.zeros(seg_shape, dtype=z.dtype)
        scatter_add_rows(seg_pg, segment_ids, pg)
        logits._accumulate(pg - p * seg_pg[segment_ids])

    return logits._make(p.astype(z.dtype), (logits,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Dense softmax along ``axis`` with fused backward."""
    z = x.data
    shifted = z - z.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    p = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        pg = p * g
        x._accumulate(pg - p * pg.sum(axis=axis, keepdims=True))

    return x._make(p.astype(z.dtype), (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    z = x.data
    shifted = z - z.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    p = np.exp(out)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g - p * g.sum(axis=axis, keepdims=True))

    return x._make(out.astype(z.dtype), (x,), backward)


# ---------------------------------------------------------------------------
# Fused training kernels
#
# Each op below collapses a chain of tape nodes into a single node whose
# forward and backward replay the composed chain's numpy expressions in
# the same order, so losses, gradients, and therefore optimizer states
# are bit-identical to the composed path (the only tolerated divergence
# is the sign of exactly-zero gradient entries, which no optimizer
# update can observe).  The payoff is tape length: one closure instead
# of dozens, no per-node zeros_like/scatter churn on the hot path.
# ---------------------------------------------------------------------------


def type_sort(type_ids: np.ndarray) -> tuple:
    """``(order, sorted_types, group_starts, group_ends)`` for a type array.

    The structural half of :func:`typed_linear`: rows grouped by type via
    one stable argsort.  Batches cache it (``GraphBatch.struct_cache``)
    so repeated forwards over one batch sort exactly once.
    """
    order = np.argsort(type_ids, kind="stable")
    sorted_types = type_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_types)) + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [len(sorted_types)]))
    return order, sorted_types, group_starts, group_ends


def typed_linear(x: Tensor, weight: Tensor, bias: Tensor,
                 type_ids: np.ndarray, sort: tuple | None = None,
                 out_shape: tuple[int, ...] | None = None) -> Tensor:
    """Per-row typed affine map ``x_i @ weight[type_ids[i]] + bias[type_ids[i]]``.

    One autograd node for what the composed tape spells as, per present
    type, a row gather + matmul + bias add, then a concat and an
    un-permute (~3G+2 nodes for G types).  Forward gathers rows into
    type order once and runs one contiguous matmul per present type;
    the fused backward runs the per-type transposed matmuls and writes
    weight/bias gradients straight into their type slots (types
    partition the rows, so no scatter conflicts exist), and row
    gradients through a single inverse permutation.  ``out_shape``
    folds a following reshape (e.g. the per-head split) into the same
    node — a free view instead of one more tape node and gradient copy.
    """
    if sort is None:
        sort = type_sort(np.asarray(type_ids, dtype=np.int64))
    order, sorted_types, group_starts, group_ends = sort
    groups = list(zip(sorted_types[group_starts].tolist(),
                      group_starts.tolist(), group_ends.tolist()))
    xd, wd, bd = x.data, weight.data, bias.data
    xs = xd[order]
    out_sorted = np.empty((xd.shape[0], wd.shape[2]), dtype=xd.dtype)
    for t, start, end in groups:
        np.matmul(xs[start:end], wd[t], out=out_sorted[start:end])
        out_sorted[start:end] += bd[t]
    out = np.empty_like(out_sorted)
    out[order] = out_sorted
    flat_shape = out_sorted.shape      # the closure needs only the shape
    if out_shape is not None:
        out = out.reshape(out_shape)

    def backward(g: np.ndarray) -> None:
        if out_shape is not None:
            g = g.reshape(flat_shape)
        gs = g[order]
        if weight.requires_grad:
            gw = np.zeros_like(wd)
            for t, start, end in groups:
                np.matmul(xs[start:end].T, gs[start:end], out=gw[t])
            weight._accumulate_owned(gw)
        if bias.requires_grad:
            gb = np.zeros_like(bd)
            for t, start, end in groups:
                gs[start:end].sum(axis=0, out=gb[t])
            bias._accumulate_owned(gb)
        if x.requires_grad:
            gx_sorted = np.empty_like(xs)
            for t, start, end in groups:
                np.matmul(gs[start:end], wd[t].T, out=gx_sorted[start:end])
            gx = np.empty_like(gx_sorted)
            gx[order] = gx_sorted
            x._accumulate_owned(gx)

    return x._make(out, (x, weight, bias), backward)


def embedding_sum(weights: list[Tensor], ids_list: list[np.ndarray]) -> Tensor:
    """``sum(w[ids] for w, ids in zip(...))`` as one tape node.

    The composed chain spells this as one gather node per table plus a
    cascade of adds, each copying a full ``(N, D)`` gradient; the fused
    backward scatters the single upstream gradient straight into each
    table (the same ``np.add.at`` calls, so values are bit-identical).
    """
    # integer-array gathers always return fresh arrays, so the
    # accumulation below never writes into a table
    out = weights[0].data[np.asarray(ids_list[0])]
    for w, ids in zip(weights[1:], ids_list[1:]):
        out += w.data[ids]

    def backward(g: np.ndarray) -> None:
        for w, ids in zip(weights, ids_list):
            if w.requires_grad:
                gw = np.zeros_like(w.data)
                np.add.at(gw, ids, g)
                w._accumulate_owned(gw)

    first = weights[0]
    node = first._make(out, tuple(weights), backward)
    return node


def fused_layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
                     eps: float) -> Tensor:
    """LayerNorm forward/backward as one tape node.

    Mirrors the composed ``mean → center → var → rsqrt → scale/shift``
    chain expression-for-expression (including the two separate row
    gradient contributions the chain delivers to ``x``), so values and
    gradients match it bit-for-bit.
    """
    xd = x.data
    inv_count = _as_array(1.0 / xd.shape[-1])
    eps_arr = _as_array(eps)
    mu = xd.sum(axis=-1, keepdims=True) * inv_count
    centered = xd - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * inv_count
    inv_std = (var + eps_arr) ** -0.5
    normed = centered * inv_std
    out = normed * gamma.data + beta.data

    def backward(g: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate(g)
        g_normed = g * gamma.data
        if gamma.requires_grad:
            gamma._accumulate(g * normed)
        # centered receives three composed contributions in tape order:
        # through normed, then twice through the squared term of var.
        g_centered = (g_normed * inv_std).astype(xd.dtype, copy=True)
        g_inv_std = _unbroadcast(g_normed * centered, inv_std.shape)
        g_var = g_inv_std * -0.5 * (var + eps_arr) ** -1.5
        g_sq = np.broadcast_to(g_var * inv_count, xd.shape)
        g_sq_centered = g_sq * centered
        g_centered += g_sq_centered
        g_centered += g_sq_centered
        if x.requires_grad:
            # the composed chain accumulates into x twice: once through
            # centered (x - mu), once through the mean's sum node — and
            # the broadcast add sums the row grad to (N, 1) *before*
            # the 1/D scale, exactly as the chain's unbroadcast does
            x._accumulate_owned(g_centered)
            g_mu = _unbroadcast(g_centered, inv_std.shape)
            x._accumulate(np.broadcast_to(-g_mu * inv_count, xd.shape))

    return x._make(out, (x, gamma, beta), backward)
