"""Reverse-mode autodiff and neural building blocks on numpy.

The offline environment has no PyTorch, so the HGT, the homogeneous GNN
ablation and the PragFormer token transformer all run on this substrate:
a :class:`Tensor` with a dynamic tape, vectorised ops (including the
segment/scatter primitives graph attention needs), modules, and
optimizers.  Heavy math stays inside numpy/BLAS per the ml-systems guide
(vectorise, don't loop).
"""

from repro.nn.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    fast_math_enabled,
    set_fast_math,
    use_fast_math,
)
from repro.nn import functional
from repro.nn.module import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    ParameterDict,
    ParameterList,
    Sequential,
)
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm, cosine_schedule
from repro.nn.serialize import SerializeError, load_state, save_state

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "fast_math_enabled",
    "set_fast_math",
    "use_fast_math",
    "functional",
    "Module",
    "Parameter",
    "ParameterList",
    "ParameterDict",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MLP",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "cosine_schedule",
    "save_state",
    "load_state",
    "SerializeError",
]
