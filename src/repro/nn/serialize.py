"""Model (de)serialization as ``.npz`` archives.

Loading is strict: the archive must carry exactly the module's
parameter set with matching shapes, and unreadable (truncated,
corrupt, missing) archives surface as :class:`SerializeError` with the
offending path — a partially applied state dict is never left behind.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.nn.module import Module


class SerializeError(RuntimeError):
    """A weight archive could not be read or does not match the module."""


def save_state(module: Module, path: str | Path) -> None:
    """Write a module's parameters to a compressed npz archive."""
    state = module.state_dict()
    np.savez_compressed(str(path), **state)


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    Raises :class:`SerializeError` when the archive is unreadable
    (truncated/corrupt/missing) or when its keys or shapes disagree
    with the module — never silently partial-loads.
    """
    try:
        with np.load(str(path)) as archive:
            state = {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as exc:
        raise SerializeError(
            f"cannot read weight archive {path}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        # load_state_dict validates keys and shapes (all before any
        # copy); add the archive path the module can't know about
        raise SerializeError(
            f"weight archive {path} does not match the module: "
            f"{exc.args[0] if exc.args else exc}"
        ) from exc
