"""Model (de)serialization as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | Path) -> None:
    """Write a module's parameters to a compressed npz archive."""
    state = module.state_dict()
    np.savez_compressed(str(path), **state)


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state` into ``module``."""
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
