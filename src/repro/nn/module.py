"""Modules: parameter containers and standard layers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor, fast_math_enabled, fused_layer_norm


class Parameter(Tensor):
    """A tensor registered for optimisation."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: attribute registration, parameter traversal, train/eval."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter traversal -------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{full}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{key}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- mode ----------------------------------------------------------------

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- state ---------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)[:5]}, "
                           f"extra={sorted(extra)[:5]}")
        # validate every shape before touching any parameter: a
        # mid-loop failure must not leave the module half-loaded
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs "
                    f"{state[name].shape}"
                )
        for name, p in own.items():
            p.data = state[name].astype(np.float32).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ParameterList(Module):
    """A plain list of parameters/modules that registers its items."""

    def __init__(self, items=None) -> None:
        super().__init__()
        self.items = list(items or [])

    def __getitem__(self, i):
        return self.items[i]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def append(self, item) -> None:
        self.items.append(item)


class ParameterDict(Module):
    """A string-keyed collection of parameters/modules."""

    def __init__(self, items=None) -> None:
        super().__init__()
        self.items = dict(items or {})

    def __getitem__(self, key):
        return self.items[key]

    def __setitem__(self, key, value) -> None:
        self.items[key] = value

    def __contains__(self, key) -> bool:
        return key in self.items

    def keys(self):
        return self.items.keys()

    def values(self):
        return self.items.values()


def _xavier(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)


_default_rng = np.random.default_rng(0)


def set_default_rng(seed: int) -> None:
    """Re-seed layer initialisation (used by training seeding)."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


class Linear(Module):
    """Affine map ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or _default_rng
        self.weight = Parameter(_xavier(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Integer ids → dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or _default_rng
        scale = 1.0 / np.sqrt(dim)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(num_embeddings, dim)).astype(np.float32)
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight.gather(np.asarray(ids, dtype=np.int64))


class LayerNorm(Module):
    """Per-row normalisation with learned scale/shift.

    The default fused kernel runs the whole normalise-scale-shift as a
    single tape node; values and gradients are bit-identical to the
    composed chain below, which ``use_fast_math(False)`` restores.
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(dim, dtype=np.float32))
        self.beta = Parameter(np.zeros(dim, dtype=np.float32))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        if fast_math_enabled():
            return fused_layer_norm(x, self.gamma, self.beta, self.eps)
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(1234)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class _GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class _ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MLP(Module):
    """Linear → activation → (dropout) → ... → Linear."""

    def __init__(self, dims: list[int], activation: str = "gelu",
                 dropout: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least in/out dims")
        act = _GELU if activation == "gelu" else _ReLU
        layers: list[Module] = []
        for i, (a, b) in enumerate(zip(dims, dims[1:])):
            layers.append(Linear(a, b, rng=rng))
            if i < len(dims) - 2:
                layers.append(act())
                if dropout:
                    layers.append(Dropout(dropout))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
