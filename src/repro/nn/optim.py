"""Optimizers, gradient clipping, learning-rate schedules."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import fast_math_enabled


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Drop gradients before the next backward pass.

        ``grad is None`` is load-bearing: ``step()`` skips parameters
        that received no gradient, exactly as the seed path did — a
        zero-filled buffer would instead decay their momenta.  The
        fused kernels avoid per-step gradient reallocation anyway by
        handing freshly built arrays over to
        :meth:`Tensor._accumulate_owned`.
        """
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self.velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction.

    The fast-math step reuses two scratch arrays per parameter for the
    intermediate products instead of allocating ~6 temporaries per
    parameter per step; every arithmetic operation (and its order) is
    the same as the allocating path, so parameter trajectories are
    bit-identical.
    """

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]
        self.t = 0
        self._scratch: list[tuple[np.ndarray, np.ndarray]] | None = None

    def __getstate__(self) -> dict:
        # scratch buffers hold no state — drop them from pickles
        # (shard-worker spawns) and rebuild lazily on first step
        state = dict(self.__dict__)
        state["_scratch"] = None
        return state

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1 ** self.t
        bc2 = 1.0 - self.beta2 ** self.t
        if fast_math_enabled():
            self._step_fused(bc1, bc2)
            return
        for p, m, v in zip(self.params, self.m, self.v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def _step_fused(self, bc1: float, bc2: float) -> None:
        scratch = self._scratch
        if scratch is None or any(
            s.shape != p.data.shape or s.dtype != p.data.dtype
            for (s, _), p in zip(scratch, self.params)
        ):
            scratch = self._scratch = [
                (np.empty_like(p.data), np.empty_like(p.data))
                for p in self.params
            ]
        for p, m, v, (s1, s2) in zip(self.params, self.m, self.v, scratch):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s1)
                s1 += g
                g = s1
            np.multiply(g, 1.0 - self.beta1, out=s2)
            m *= self.beta1
            m += s2
            np.multiply(g, 1.0 - self.beta2, out=s2)
            s2 *= g
            v *= self.beta2
            v += s2
            # p.data -= lr * (m / bc1) / (sqrt(v / bc2) + eps), staged
            # through the scratch buffers in the same operation order
            np.divide(v, bc2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bc1, out=s2)
            s2 *= self.lr
            s2 /= s1
            p.data -= s2


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


def cosine_schedule(step: int, total_steps: int, base_lr: float,
                    warmup: int = 0, floor: float = 0.0) -> float:
    """Linear warmup followed by cosine decay to ``floor``."""
    if warmup and step < warmup:
        return base_lr * (step + 1) / warmup
    if total_steps <= warmup:
        return base_lr
    progress = (step - warmup) / max(1, total_steps - warmup)
    progress = min(max(progress, 0.0), 1.0)
    return floor + (base_lr - floor) * 0.5 * (1.0 + math.cos(math.pi * progress))
