"""Optimizers, gradient clipping, learning-rate schedules."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self.velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]
        self.t = 0

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1 ** self.t
        bc2 = 1.0 - self.beta2 ** self.t
        for p, m, v in zip(self.params, self.m, self.v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


def cosine_schedule(step: int, total_steps: int, base_lr: float,
                    warmup: int = 0, floor: float = 0.0) -> float:
    """Linear warmup followed by cosine decay to ``floor``."""
    if warmup and step < warmup:
        return base_lr * (step + 1) / warmup
    if total_steps <= warmup:
        return base_lr
    progress = (step - warmup) / max(1, total_steps - warmup)
    progress = min(max(progress, 0.0), 1.0)
    return floor + (base_lr - floor) * 0.5 * (1.0 + math.cos(math.pi * progress))
