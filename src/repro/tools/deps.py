"""Loop dependence analysis shared by the static tools.

Combines the canonical-loop recogniser, the access collector and the
affine dependence tests into a single verdict object describing:

- loop-carried array dependences (with the access pair that causes them),
- scalar classification: induction / local / privatizable / reduction /
  shared (the last one blocks parallelism),
- structural facts (calls, inner loops, inexact accesses).

All decisions are conservative: "maybe" means "dependence".

:func:`analyze_loop` memoizes by *structural* loop hash (the unparsed
source, so two parses of the same loop — ubiquitous in warm serving
workloads and deduplicated corpora — share one analysis).  The cached
:class:`LoopDeps` is returned as-is and must be treated as immutable;
:func:`cache_stats` exposes hit/miss counters.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import combinations

from repro.cfront.nodes import (
    BinaryOperator,
    DeclRefExpr,
    Expr,
    ExprStmt,
    Stmt,
    UnaryOperator,
)
from repro.tools.access import Access, AccessSummary, collect_accesses
from repro.tools.affine import Affine, affine_pair_dependent, to_affine
from repro.tools.canonical import CanonicalLoop, recognize_canonical

#: Reduction operators our recognisers accept (associative + commutative,
#: matching the paper's synthetic generator plus min/max via operators).
REDUCTION_BINOPS = {"+": "+", "-": "+", "*": "*", "&": "&", "|": "|", "^": "^"}
REDUCTION_COMPOUND = {"+=": "+", "-=": "+", "*=": "*", "&=": "&",
                      "|=": "|", "^=": "^"}


@dataclass
class ArrayDependence:
    """A (possible) loop-carried dependence between two array accesses."""

    base: str
    kind: str          # "flow" (W->R), "anti" (R->W), "output" (W->W)
    src: Access
    dst: Access
    reason: str = ""


@dataclass
class ReductionInfo:
    var: str
    op: str
    statements: int     # number of update statements


@dataclass
class LoopDeps:
    """Full static analysis result for one loop."""

    canonical: CanonicalLoop | None
    summary: AccessSummary
    array_deps: list[ArrayDependence] = field(default_factory=list)
    reductions: list[ReductionInfo] = field(default_factory=list)
    privatizable: set[str] = field(default_factory=set)
    shared_scalar_writes: set[str] = field(default_factory=set)
    non_affine: bool = False
    inexact_access: bool = False

    @property
    def has_calls(self) -> bool:
        return self.summary.has_calls

    @property
    def has_inner_loop(self) -> bool:
        return self.summary.has_inner_loop

    def is_doall(self, allow_reductions: bool = False,
                 assume_calls_pure: bool = False) -> bool:
        """Can iterations run independently?

        ``allow_reductions``: treat recognised reductions as removable
        dependences (what autoPar does with a reduction clause).
        ``assume_calls_pure``: ignore function calls (no real tool does
        this by default — exposed for the oracle/labelling path).
        """
        if self.canonical is None:
            return False
        if self.non_affine or self.inexact_access:
            return False
        if self.has_calls and not assume_calls_pure:
            return False
        if self.array_deps:
            return False
        if self.shared_scalar_writes:
            return False
        if self.reductions and not allow_reductions:
            return False
        return True


def _reduction_statements(body: Stmt, var_blacklist: set[str],
                          include_conditional: bool = False) -> dict[str, list[str]]:
    """Map scalar name → list of reduction ops from its update statements.

    Recognises the classic shapes on unconditional statements (including
    inside inner loops, where they still accumulate for the outer loop)::

        s += expr;   s = s + expr;   s = expr + s;   s++;   s--;

    Anything else touching ``s`` disqualifies it (handled by the caller
    via access counting).
    """
    updates: dict[str, list[str]] = {}

    def visit(stmt: Stmt) -> None:
        from repro.cfront.nodes import CompoundStmt, ForStmt, WhileStmt, DoStmt, IfStmt
        if isinstance(stmt, CompoundStmt):
            for inner in stmt.stmts:
                visit(inner)
            return
        if isinstance(stmt, (ForStmt, WhileStmt, DoStmt)):
            visit(stmt.body)
            return
        if isinstance(stmt, IfStmt) and include_conditional:
            # ``if (c) s += e;`` is a legal OpenMP reduction; only the
            # idealised oracle accepts it — real pattern tables do not.
            visit(stmt.then)
            if stmt.els is not None:
                visit(stmt.els)
            return
        if not isinstance(stmt, ExprStmt) or stmt.expr is None:
            return
        e = stmt.expr
        # Counting updates: ``n++`` / ``n--`` are + reductions.
        if isinstance(e, UnaryOperator) and e.is_incdec \
                and isinstance(e.operand, DeclRefExpr) \
                and e.operand.name not in var_blacklist:
            updates.setdefault(e.operand.name, []).append("+")
            return
        if not isinstance(e, BinaryOperator) or not e.is_assignment:
            return
        if not isinstance(e.lhs, DeclRefExpr):
            return
        name = e.lhs.name
        if name in var_blacklist:
            return
        if e.op in REDUCTION_COMPOUND:
            # s op= expr, with expr not reading s
            if not _reads_var(e.rhs, name):
                updates.setdefault(name, []).append(REDUCTION_COMPOUND[e.op])
            return
        if e.op == "=" and isinstance(e.rhs, BinaryOperator):
            op = _chain_reduction_op(e.rhs, name)
            if op is not None:
                updates.setdefault(name, []).append(op)

    visit(body)
    return updates


def _chain_reduction_op(rhs: BinaryOperator, name: str) -> str | None:
    """Reduction operator when ``rhs`` is an op-chain folding ``name``.

    Handles associativity chains like ``s = s * a[i] * b[i]`` or
    ``s = a[i] + s + b[i]``: flatten the chain of one operator family
    (``+/-`` or ``*`` or one bitwise op), require exactly one leaf to be
    ``name`` — positively signed for the additive family — and no other
    leaf to read it.
    """
    family: str | None = None
    if rhs.op in ("+", "-"):
        family = "+"
        ops = ("+", "-")
    elif rhs.op in ("*", "&", "|", "^"):
        family = REDUCTION_BINOPS[rhs.op]
        ops = (rhs.op,)
    else:
        return None

    leaves: list[tuple[Expr, bool]] = []  # (leaf, negated?)

    def flatten(node: Expr, negated: bool) -> None:
        if isinstance(node, BinaryOperator) and node.op in ops \
                and not node.is_assignment:
            flatten(node.lhs, negated)
            flatten(node.rhs, negated or node.op == "-")
        else:
            leaves.append((node, negated))

    flatten(rhs, False)
    self_leaves = [
        (leaf, neg) for leaf, neg in leaves
        if isinstance(leaf, DeclRefExpr) and leaf.name == name
    ]
    if len(self_leaves) != 1:
        return None
    if self_leaves[0][1]:
        return None  # s appears negated: not an accumulation
    others = [leaf for leaf, _ in leaves if leaf is not self_leaves[0][0]]
    if any(_reads_var(leaf, name) for leaf in others):
        return None
    return family


def _reads_var(expr: Expr, name: str) -> bool:
    return any(
        isinstance(n, DeclRefExpr) and n.name == name for n in expr.walk()
    )


#: LRU memo of (structural hash, conditional_reductions) → LoopDeps
_DEPS_CACHE: OrderedDict[tuple[str, bool], LoopDeps] = OrderedDict()
_DEPS_CACHE_MAX = 4096
_deps_cache_counts = {"hits": 0, "misses": 0}


def loop_structural_hash(loop: Stmt) -> str:
    """Identity of a loop up to formatting: SHA-1 of its unparse.

    Two independently parsed copies of the same loop hash equal (the
    unparser canonicalises whitespace and redundant parentheses), so
    the memo fires across files, shards and repeated requests.
    """
    from repro.cfront.unparse import unparse

    return hashlib.sha1(unparse(loop).encode("utf-8")).hexdigest()


def cache_stats() -> dict:
    """Hit/miss/entry counters of the :func:`analyze_loop` memo."""
    return {**_deps_cache_counts, "entries": len(_DEPS_CACHE)}


def clear_cache() -> None:
    """Drop the :func:`analyze_loop` memo and reset its counters."""
    _DEPS_CACHE.clear()
    _deps_cache_counts["hits"] = 0
    _deps_cache_counts["misses"] = 0


def analyze_loop(loop: Stmt, conditional_reductions: bool = False) -> LoopDeps:
    """Run the full static dependence analysis on one loop statement.

    ``conditional_reductions`` widens reduction recognition to updates
    under ``if`` — legal OpenMP, but outside real tools' pattern tables;
    only the labelling oracle turns it on.

    Results are memoized by :func:`loop_structural_hash`: the analysis
    is a pure function of loop structure, so repeated loops (warm
    serving workloads, duplicated corpora, the suggester's per-loop
    compose step) pay for it once.  Callers must treat the returned
    :class:`LoopDeps` as read-only.
    """
    key = (loop_structural_hash(loop), conditional_reductions)
    cached = _DEPS_CACHE.get(key)
    if cached is not None:
        _DEPS_CACHE.move_to_end(key)
        _deps_cache_counts["hits"] += 1
        return cached
    _deps_cache_counts["misses"] += 1
    deps = _analyze_loop_uncached(loop, conditional_reductions)
    _DEPS_CACHE[key] = deps
    while len(_DEPS_CACHE) > _DEPS_CACHE_MAX:
        _DEPS_CACHE.popitem(last=False)
    return deps


def _analyze_loop_uncached(loop: Stmt,
                           conditional_reductions: bool) -> LoopDeps:
    canonical = recognize_canonical(loop)
    body = getattr(loop, "body", loop)
    summary = collect_accesses(body)
    deps = LoopDeps(canonical=canonical, summary=summary)
    if canonical is None:
        return deps

    loop_var = canonical.var
    loop_vars = {loop_var} | _inner_loop_vars(body)

    # --- scalar classification ------------------------------------------------
    scalar_writes: dict[str, list[Access]] = {}
    for acc in summary.accesses:
        if acc.is_scalar and acc.is_write and acc.base not in loop_vars:
            scalar_writes.setdefault(acc.base, []).append(acc)
    reduction_updates = _reduction_statements(
        body, loop_vars, include_conditional=conditional_reductions,
    )

    for name, writes in scalar_writes.items():
        if name in summary.local_decls:
            deps.privatizable.add(name)
            continue
        reads = summary.reads(name)
        ops = reduction_updates.get(name, [])
        n_updates = len(ops)
        # Reduction: every write and read of the scalar comes from its
        # reduction statements (1 read + 1 write per compound update).
        if ops and len(set(ops)) == 1 and len(writes) == n_updates \
                and len(reads) == n_updates:
            deps.reductions.append(
                ReductionInfo(var=name, op=ops[0], statements=n_updates)
            )
            continue
        # Privatizable: first access in evaluation order is an
        # unconditional write.
        all_accs = sorted(
            [a for a in summary.accesses if a.base == name and a.is_scalar],
            key=lambda a: a.order,
        )
        if all_accs and all_accs[0].is_write and not all_accs[0].conditional:
            deps.privatizable.add(name)
            continue
        deps.shared_scalar_writes.add(name)

    # --- array dependence testing ----------------------------------------------
    for base in summary.written_bases():
        accs = [a for a in summary.accesses if a.base == base and a.subscripts]
        if not accs:
            continue
        if any(not a.exact for a in accs):
            deps.inexact_access = True
        writes = [a for a in accs if a.is_write]
        if not writes:
            continue
        others = accs
        for w in writes:
            for o in others:
                if o is w:
                    continue
                if not w.is_write and not o.is_write:
                    continue
                dep = _pair_dependent(w, o, loop_var, loop_vars)
                if dep is None:
                    deps.non_affine = True
                elif dep:
                    kind = "output" if o.is_write else (
                        "flow" if w.stmt_index <= o.stmt_index else "anti"
                    )
                    deps.array_deps.append(ArrayDependence(
                        base=base, kind=kind, src=w, dst=o,
                        reason="affine test reports possible loop-carried dependence",
                    ))
        # Writes whose subscripts ignore the loop variable hit the same
        # cell every iteration: loop-carried output dependence.  A write
        # through a non-affine subscript is flagged for conservatism.
        for w in writes:
            affs = [to_affine(s, loop_vars) for s in w.subscripts]
            if any(a is None for a in affs):
                deps.non_affine = True
            elif all(a.coeff(loop_var) == 0 for a in affs):
                deps.array_deps.append(ArrayDependence(
                    base=base, kind="output", src=w, dst=w,
                    reason="subscript invariant in loop variable",
                ))

    # Deduplicate symmetrical pairs.
    seen: set[tuple[int, int]] = set()
    unique: list[ArrayDependence] = []
    for d in deps.array_deps:
        key = tuple(sorted((id(d.src), id(d.dst))))
        if key not in seen:
            seen.add(key)
            unique.append(d)
    deps.array_deps = unique
    return deps


def _inner_loop_vars(body: Stmt) -> set[str]:
    """Induction variables of inner loops (treated as extra loop dims)."""
    from repro.cfront.nodes import LOOP_KINDS
    out: set[str] = set()
    for node in body.walk():
        if isinstance(node, LOOP_KINDS):
            canon = recognize_canonical(node)
            if canon is not None:
                out.add(canon.var)
    return out


def _pair_dependent(a: Access, b: Access, loop_var: str,
                    loop_vars: set[str]) -> bool | None:
    """Loop-carried dependence between two subscripted accesses.

    ``None`` = non-affine (caller turns that into conservatism),
    ``False`` = proven independent w.r.t. the outer loop variable.
    """
    if len(a.subscripts) != len(b.subscripts):
        return None
    any_dim_independent = False
    for sa, sb in zip(a.subscripts, b.subscripts):
        fa = to_affine(sa, loop_vars)
        fb = to_affine(sb, loop_vars)
        if fa is None or fb is None:
            return None
        if not affine_pair_dependent(fa, fb, loop_var):
            any_dim_independent = True
    return not any_dim_independent
