"""Pluto simulator: polyhedral static parallelism detection.

Decision surface of the real tool (Bondhugula et al. 2008):

- **Applicability** — Pluto extracts Static Control Parts (SCoPs): for
  loops in canonical affine form, bodies made of assignments over arrays
  with affine subscripts, constant-or-parametric affine bounds, *no*
  function calls, no while/do loops, no conditionals, no pointer or
  member accesses.  Anything else is outside the polyhedral model →
  unprocessable.
- **Detection** — inside a SCoP, the loop is parallel iff the polyhedral
  dependence test proves no loop-carried dependence.  Scalar writes
  (including reductions!) create loop-carried dependences: classic
  polyhedral tools do not recognise reduction idioms, which is exactly
  why the paper's Figure 2 shows Pluto missing 1019 reduction loops and
  Listings 1/2 (reduction + call) defeat it.
- **Zero false positives** — the dependence test is exact on the affine
  subset it accepts.
"""

from __future__ import annotations

from repro.cfront.nodes import (
    BinaryOperator,
    CallExpr,
    CompoundStmt,
    ConditionalOperator,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    ExprStmt,
    ForStmt,
    GotoStmt,
    IfStmt,
    MemberExpr,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    UnaryOperator,
    WhileStmt,
)
from repro.tools.base import ParallelTool, ToolResult, ToolVerdict
from repro.tools.deps import analyze_loop


class Pluto(ParallelTool):
    name = "pluto"

    def analyze_loop(self, loop: Stmt, *,
                     pointer_arrays: frozenset[str] = frozenset(),
                     file_meta: dict | None = None) -> ToolResult:
        if pointer_arrays:
            accessed = {
                n.name for n in loop.find_all(DeclRefExpr)
            }
            touched = accessed & set(pointer_arrays)
            if touched:
                # Pointer-based arrays are outside the polyhedral model:
                # the SCoP extractor rejects the region.
                return ToolResult(
                    ToolVerdict.UNPROCESSABLE,
                    reason=f"pointer-based array {sorted(touched)[0]} "
                           f"outside SCoP",
                )
        reason = self._scop_violation(loop)
        if reason is not None:
            return ToolResult(ToolVerdict.UNPROCESSABLE, reason=reason)
        deps = analyze_loop(loop)
        if deps.canonical is None:
            return ToolResult(
                ToolVerdict.UNPROCESSABLE, reason="non-canonical loop"
            )
        if deps.non_affine or deps.inexact_access:
            return ToolResult(
                ToolVerdict.UNPROCESSABLE, reason="non-affine accesses"
            )
        # Polyhedral model: any scalar write that is not privatizable is a
        # loop-carried dependence; reductions are NOT recognised.
        if deps.array_deps:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"loop-carried dependence on {deps.array_deps[0].base}",
            )
        if deps.reductions:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason="scalar cycle (reduction idiom not in polyhedral model)",
            )
        if deps.shared_scalar_writes:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"scalar dependence on {sorted(deps.shared_scalar_writes)[0]}",
            )
        # The polyhedral model has no scalar privatization: a scalar
        # temporary written in the body carries output/anti dependences
        # across iterations (scalar expansion is not applied).
        non_local_privates = deps.privatizable - deps.summary.local_decls
        if non_local_privates:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"scalar temporary {sorted(non_local_privates)[0]} "
                       f"(no privatization in the polyhedral model)",
            )
        return ToolResult(ToolVerdict.PARALLEL, patterns={"do-all"})

    # -- SCoP gate -------------------------------------------------------------

    def _scop_violation(self, loop: Stmt) -> str | None:
        """First reason this loop is not a static control part, if any."""
        if not isinstance(loop, ForStmt):
            return f"{loop.kind} is not a SCoP loop"
        for node in loop.walk():
            if isinstance(node, CallExpr):
                return f"function call {node.name or '<indirect>'}()"
            if isinstance(node, (WhileStmt, DoStmt)):
                return "irregular inner loop"
            if isinstance(node, (IfStmt, SwitchStmt, ConditionalOperator)):
                return "data-dependent control flow"
            if isinstance(node, (GotoStmt, ReturnStmt)):
                return "control-flow escape"
            if isinstance(node, MemberExpr):
                return "member access outside polyhedral model"
            if isinstance(node, UnaryOperator) and node.op == "*":
                return "pointer dereference"
            if isinstance(node, BinaryOperator) and node.op in ("%", "/"):
                # Non-affine operators in subscripts/bounds break SCoPs;
                # Pluto rejects the region when they feed control or
                # subscripts.  Conservatively reject on sight.
                return f"non-affine operator {node.op}"
        return None

    def can_process_file(self, file_meta: dict) -> bool:
        """Pluto needs a parseable file; it does not need main() or linking."""
        return bool(file_meta.get("compiles", True))
