"""Memory access extraction from statements and expressions.

Produces the read/write sets the dependence analyses consume.  Every
access resolves to a *base* name (scalar variable or array) plus its
subscript expression list; member and pointer accesses resolve to their
root variable with a flag, which makes the consuming tools conservative
about them exactly like their real counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    CallExpr,
    CastExpr,
    CompoundStmt,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    Expr,
    ExprStmt,
    ForStmt,
    IfStmt,
    MemberExpr,
    Node,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    UnaryOperator,
    WhileStmt,
)


@dataclass
class Access:
    """One memory access.

    ``base`` is the root variable; ``subscripts`` the index expressions
    (empty for scalars); ``exact`` is False when the analysis could not
    fully resolve the location (pointer deref, member chains, unknown
    call effects) and consumers must be conservative.
    """

    is_write: bool
    base: str
    subscripts: list[Expr] = field(default_factory=list)
    exact: bool = True
    node: Node | None = None
    #: statement index inside the loop body (textual order)
    stmt_index: int = 0
    #: True when the access happens under a condition (if/ternary/&&)
    conditional: bool = False
    #: global record order — follows C evaluation order (a compound
    #: assignment reads before it writes)
    order: int = 0

    @property
    def is_scalar(self) -> bool:
        return not self.subscripts and self.exact


@dataclass
class AccessSummary:
    """All accesses of a loop body plus structural facts."""

    accesses: list[Access] = field(default_factory=list)
    calls: list[CallExpr] = field(default_factory=list)
    local_decls: set[str] = field(default_factory=set)
    has_inner_loop: bool = False

    def reads(self, base: str | None = None) -> list[Access]:
        return [a for a in self.accesses
                if not a.is_write and (base is None or a.base == base)]

    def writes(self, base: str | None = None) -> list[Access]:
        return [a for a in self.accesses
                if a.is_write and (base is None or a.base == base)]

    def written_bases(self) -> set[str]:
        return {a.base for a in self.accesses if a.is_write}

    def bases(self) -> set[str]:
        return {a.base for a in self.accesses}

    @property
    def has_calls(self) -> bool:
        return bool(self.calls)


def _resolve_lvalue(expr: Expr) -> tuple[str, list[Expr], bool]:
    """Root variable, subscripts, and exactness of an lvalue expression."""
    subs: list[Expr] = []
    exact = True
    node = expr
    while True:
        if isinstance(node, ArraySubscriptExpr):
            subs.insert(0, node.index)
            node = node.base
        elif isinstance(node, MemberExpr):
            exact = exact and not node.is_arrow
            node = node.base
        elif isinstance(node, UnaryOperator) and node.op == "*":
            exact = False
            node = node.operand
        elif isinstance(node, CastExpr):
            node = node.operand
        elif isinstance(node, DeclRefExpr):
            return node.name, subs, exact
        else:
            # Computed base (e.g. call returning pointer).
            return "<computed>", subs, False


class _Collector:
    """Stateful walker producing an :class:`AccessSummary`."""

    def __init__(self) -> None:
        self.summary = AccessSummary()
        self.stmt_index = 0
        self.cond_depth = 0

    # -- recording -------------------------------------------------------------

    def _record(self, is_write: bool, expr: Expr, node: Node) -> None:
        base, subs, exact = _resolve_lvalue(expr)
        self.summary.accesses.append(
            Access(
                is_write=is_write, base=base, subscripts=subs, exact=exact,
                node=node, stmt_index=self.stmt_index,
                conditional=self.cond_depth > 0,
                order=len(self.summary.accesses),
            )
        )
        # Subscript expressions are themselves reads.
        for sub in subs:
            self.expr(sub, as_read=True)

    # -- expression traversal ----------------------------------------------------

    def expr(self, e: Expr | None, as_read: bool = True) -> None:
        if e is None:
            return
        if isinstance(e, BinaryOperator) and e.is_assignment:
            # Compound assignments read the lvalue before writing it.
            if e.is_compound_assignment:
                self._record(False, e.lhs, e)
            self.expr(e.rhs)
            self._record(True, e.lhs, e)
            return
        if isinstance(e, UnaryOperator) and e.is_incdec:
            self._record(False, e.operand, e)
            self._record(True, e.operand, e)
            return
        if isinstance(e, UnaryOperator) and e.op == "&":
            # Address-taken: no access now, but the pointee may be touched
            # by whoever receives the pointer; callers handle that.
            return
        if isinstance(e, (DeclRefExpr, ArraySubscriptExpr, MemberExpr)):
            if as_read:
                self._record(False, e, e)
            return
        if isinstance(e, UnaryOperator) and e.op == "*":
            if as_read:
                self._record(False, e, e)
            return
        if isinstance(e, CallExpr):
            self.summary.calls.append(e)
            for arg in e.args:
                if isinstance(arg, UnaryOperator) and arg.op == "&":
                    # &x passed to a call: unknown read+write of x.
                    base, subs, _ = _resolve_lvalue(arg.operand)
                    for w in (False, True):
                        self.summary.accesses.append(Access(
                            is_write=w, base=base, subscripts=subs,
                            exact=False, node=e, stmt_index=self.stmt_index,
                            conditional=self.cond_depth > 0,
                            order=len(self.summary.accesses),
                        ))
                else:
                    self.expr(arg)
            return
        for child in e.children():
            if isinstance(child, Expr):
                self.expr(child)

    # -- statement traversal -------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, CompoundStmt):
            for inner in s.stmts:
                self.stmt(inner)
                self.stmt_index += 1
            return
        if isinstance(s, DeclStmt):
            for d in s.decls:
                self.summary.local_decls.add(d.name)
                if d.init is not None:
                    self.expr(d.init)
                    self.summary.accesses.append(Access(
                        is_write=True, base=d.name, node=d,
                        stmt_index=self.stmt_index,
                        conditional=self.cond_depth > 0,
                        order=len(self.summary.accesses),
                    ))
            return
        if isinstance(s, ExprStmt):
            self.expr(s.expr)
            return
        if isinstance(s, IfStmt):
            self.expr(s.cond)
            self.cond_depth += 1
            self.stmt(s.then)
            if s.els is not None:
                self.stmt(s.els)
            self.cond_depth -= 1
            return
        if isinstance(s, (ForStmt, WhileStmt, DoStmt)):
            self.summary.has_inner_loop = True
            if isinstance(s, ForStmt):
                if s.init is not None:
                    self.stmt(s.init)
                self.expr(s.cond)
                self.expr(s.inc)
            else:
                self.expr(s.cond)
            self.cond_depth += 1
            self.stmt(s.body)
            self.cond_depth -= 1
            return
        if isinstance(s, SwitchStmt):
            self.expr(s.cond)
            self.cond_depth += 1
            self.stmt(s.body)
            self.cond_depth -= 1
            return
        if isinstance(s, ReturnStmt):
            self.expr(s.value)
            return
        # break/continue/goto/labels/case: traverse children statements.
        for child in s.children():
            if isinstance(child, Stmt):
                self.stmt(child)
            elif isinstance(child, Expr):
                self.expr(child)


def collect_accesses(body: Stmt) -> AccessSummary:
    """Access summary of a loop body (or any statement)."""
    collector = _Collector()
    collector.stmt(body)
    return collector.summary
