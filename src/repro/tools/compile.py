"""Closure compilation of the executable C subset to Python bytecode.

:mod:`repro.tools.interp` executes loops by walking the AST — one
method dispatch, one ``isinstance`` chain and one budget tick per node
per visit.  That is the dominant cost of differential verification
(`rewrite/verify.py`), which re-executes every candidate loop dozens of
times.  :func:`compile_loop` lowers a loop **once** into generated
Python source (compiled to a code object), sharing the interpreter's
exact memory model, step accounting and trace format:

- every value is computed by the same primitive semantics
  (:meth:`Interpreter._apply` is replicated by ``_div``/``_mod``/...),
  in the same evaluation order, so observable state is bit-identical;
- budget ticks are counted statically per straight-line segment and
  added in one ``S += n``; the budget is re-checked at every loop
  back-edge, before every refusal site and at function exit, so a run
  raises :class:`ExecutionBudgetExceeded` iff the tree-walker would
  (the exact raise *point* inside a straight-line segment may differ —
  only post-refusal state, which nothing observes, is affected);
- the traced variant appends the same :class:`AccessEvent` stream the
  tree-walker records; the fast variants skip all trace bookkeeping
  (the verifier's trace-elision);
- constructs the generator does not inline (``DeclStmt``) are
  *delegated* back to the live :class:`Interpreter` node-by-node, and
  constructs the interpreter itself refuses compile into raise sites
  producing the identical :class:`UnsupportedConstruct` message at the
  identical execution point (a refusing call in a dead branch still
  never refuses).

Anything the compiler cannot lower safely — non-``for`` targets, a
name used both as a function and a variable, oversized bodies, or any
internal codegen failure — falls back to the tree-walker by returning
``None``.  Compiled forms are memoized by the loop's unparsed source,
so all (schedule, nthreads, seed) verification runs share one
compilation.  ``REPRO_NO_LOOP_COMPILE=1`` disables the whole fast path.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict

from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    ExprStmt,
    FloatingLiteral,
    ForStmt,
    IfStmt,
    IntegerLiteral,
    SizeofExpr,
    Stmt,
    UnaryOperator,
    WhileStmt,
)
from repro.tools.interp import (
    MATH_FUNCTIONS,
    AccessEvent,
    ExecutionBudgetExceeded,
    Interpreter,
    UnsupportedConstruct,
    _BreakSignal,
)

#: loops with more AST nodes than this are not worth compiling
_MAX_NODES = 4000
#: memoized compilations (keyed by unparsed loop source hash)
_MEMO_MAX = 256


class CompileUnavailable(Exception):
    """A compiled form cannot run against this interpreter state
    (a referenced name is not allocated yet).  Raised before any state
    is touched, so the caller can safely fall back to the tree-walker.
    """


class _CannotCompile(Exception):
    """Internal: the loop is outside the compilable subset."""


def _call(fn, *args):
    try:
        return fn(*args)
    except (TypeError, ValueError, OverflowError):
        return 0.0


def _div(a, b):
    if b == 0:
        return 0
    if isinstance(a, int) and isinstance(b, int):
        return int(a / b)
    return a / b


def _mod(a, b):
    return int(a) % int(b) if int(b) else 0


def _unsup(msg):
    raise UnsupportedConstruct(msg)


def _has_effects(node) -> bool:
    """Whether evaluating ``node`` can mutate memory (assignments or
    ``++``/``--`` anywhere in the subtree)."""
    for n in node.walk():
        if isinstance(n, BinaryOperator) and n.is_assignment:
            return True
        if isinstance(n, UnaryOperator) and n.is_incdec:
            return True
    return False


_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_INT_TYPES = ("int", "long", "short", "char", "unsigned", "signed")


class _Codegen:
    """Emit one Python function body for a loop (or its body alone)."""

    def __init__(self, loop, record: bool) -> None:
        self.loop = loop
        self.record = record
        self.guard_ci = False
        self.lines: list[str] = []
        self.indent = 2
        self.pending = 0          # merged, not-yet-emitted budget ticks
        self.ntmp = 0
        self.nnode = 0
        self.nloop = 0
        self.loop_flags: list[str | None] = []   # break flag per C loop
        self.bindings: dict[str, object] = {}
        # static allocation plan: mirrors Interpreter.prepare()
        self.arrays: dict[str, int] = {}         # base name -> depth
        self.scalars: set[str] = set()
        self._scan(loop)

    # -- scanning -------------------------------------------------------------

    def _scan(self, loop) -> None:
        nodes = 0
        called: set[str] = set()
        referenced: set[str] = set()
        callee_ids = {
            id(n.callee) for n in loop.find_all(CallExpr)
            if isinstance(n.callee, DeclRefExpr)
        }
        for node in loop.walk():
            nodes += 1
            if isinstance(node, ArraySubscriptExpr):
                depth = 0
                inner = node
                while isinstance(inner, ArraySubscriptExpr):
                    depth += 1
                    inner = inner.base
                if isinstance(inner, DeclRefExpr):
                    self.arrays[inner.name] = max(
                        self.arrays.get(inner.name, 0), depth)
            elif isinstance(node, DeclRefExpr):
                if id(node) not in callee_ids:
                    referenced.add(node.name)
            elif isinstance(node, CallExpr):
                called.add(node.name)
        if nodes > _MAX_NODES:
            raise _CannotCompile(f"{nodes} nodes")
        if called & (referenced | set(self.arrays)):
            # prepare() skips allocating called names; the interpreter
            # then allocates lazily at first variable use, an order the
            # static hoist below cannot reproduce
            raise _CannotCompile("name used as both function and variable")
        self.scalars = referenced - set(self.arrays) - called

    # -- emission helpers -----------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def bind(self, prefix: str, obj) -> str:
        self.nnode += 1
        name = f"_{prefix}{self.nnode}"
        self.bindings[name] = obj
        return name

    def tick(self, n: int = 1) -> None:
        self.pending += n

    def flush(self) -> None:
        if self.pending:
            self.line(f"S += {self.pending}")
            self.pending = 0

    def check(self) -> None:
        self.flush()
        self.line("if S > MS: raise _EBE(_ebe)")

    def rec(self, addr: str, is_write: bool, base: str) -> None:
        if not self.record:
            return
        stmt = f"TE.append(_AE(CI, {addr}, {is_write}, {base!r}))"
        if self.guard_ci:
            self.line("if CI >= 0:")
            self.line("    " + stmt)
        else:
            self.line(stmt)

    def refuse(self, msg: str) -> str:
        """A runtime refusal site: matches the interpreter, which
        would have raised ``ExecutionBudgetExceeded`` first had the
        budget already run out by this point."""
        self.check()
        t = self.tmp()
        self.line(f"{t} = _unsup({msg!r})")
        return t

    # -- lvalues --------------------------------------------------------------

    def lv(self, expr) -> tuple[str, str]:
        """Address expression (temp or hoisted name) and base name.
        Matches ``Interpreter._lvalue_address`` (no tick of its own)."""
        if isinstance(expr, DeclRefExpr):
            name = expr.name
            if name in self.arrays:
                d = self.arrays[name]
                return self.refuse(
                    f"{name}: 0 subscripts for {d}-d array"), name
            return f"_a_{name}", name
        if isinstance(expr, ArraySubscriptExpr):
            index_nodes = []
            inner = expr
            while isinstance(inner, ArraySubscriptExpr):
                index_nodes.append(inner.index)   # outermost first
                inner = inner.base
            if not isinstance(inner, DeclRefExpr):
                return self.refuse("computed array base"), "?"
            name = inner.name
            d = self.arrays[name]
            temps = self._indices(index_nodes)
            if len(index_nodes) != d:
                # the interpreter evaluates every index, then
                # address_of refuses — reproduce that order
                return self.refuse(
                    f"{name}: {len(index_nodes)} subscripts "
                    f"for {d}-d array"), name
            # temps is in evaluation order (outermost subscript first);
            # dimension order is the reverse
            dims = list(reversed(temps))
            wrapped = [f"({t} if 0 <= {t} < E else {t} % E)" for t in dims]
            addr = wrapped[0]
            for w in wrapped[1:]:
                addr = f"({addr}) * E + {w}"
            t = self.tmp()
            self.line(f"{t} = _b_{name} + {addr}")
            return t, name
        return self.refuse(f"unsupported lvalue {expr.kind}"), "?"

    def _indices(self, index_nodes) -> list[str]:
        temps = []
        for node in index_nodes:
            e = self.ex(node)
            t = self.tmp()
            self.line(f"{t} = int({e})")
            temps.append(t)
        return temps

    # -- expressions ----------------------------------------------------------

    def operands(self, nodes) -> list[str]:
        """Compile operand expressions left to right, hoisting earlier
        values into temps whenever a later sibling can mutate memory
        (pure reads inlined past a later write would misread)."""
        out = []
        for i, node in enumerate(nodes):
            e = self.ex(node)
            if any(_has_effects(m) for m in nodes[i + 1:]) \
                    and not e.isidentifier():
                t = self.tmp()
                self.line(f"{t} = {e}")
                e = t
            out.append(e)
        return out

    def ex(self, expr) -> str:
        if isinstance(expr, IntegerLiteral):
            self.tick()
            return repr(expr.value)
        if isinstance(expr, FloatingLiteral):
            self.tick()
            return repr(expr.value)
        if isinstance(expr, CharLiteral):
            self.tick()
            return repr(expr.value)
        if isinstance(expr, (DeclRefExpr, ArraySubscriptExpr)):
            self.tick()
            addr, base = self.lv(expr)
            self.rec(addr, False, base)
            return f"cells[{addr}].value"
        if isinstance(expr, CastExpr):
            self.tick()
            v = self.ex(expr.operand)
            if expr.to_type.base in _INT_TYPES:
                return f"int({v})"
            return f"float({v})"
        if isinstance(expr, SizeofExpr):
            self.tick()
            return "8"
        if isinstance(expr, UnaryOperator):
            return self._unary(expr)
        if isinstance(expr, BinaryOperator):
            return self._binary(expr)
        if isinstance(expr, ConditionalOperator):
            return self._conditional(expr)
        if isinstance(expr, CallExpr):
            return self._callexpr(expr)
        self.tick()
        return self.refuse(f"unsupported expression {expr.kind}")

    def _unary(self, expr) -> str:
        self.tick()
        if expr.is_incdec:
            addr, base = self.lv(expr.operand)
            self.rec(addr, False, base)
            old = self.tmp()
            self.line(f"{old} = cells[{addr}].value")
            new = self.tmp()
            delta = "+ 1" if expr.op == "++" else "- 1"
            self.line(f"{new} = {old} {delta}")
            self.rec(addr, True, base)
            self.line(f"cells[{addr}].value = {new}")
            return new if expr.prefix else old
        if expr.op == "-":
            return f"(-({self.ex(expr.operand)}))"
        if expr.op == "+":
            return f"({self.ex(expr.operand)})"
        if expr.op == "!":
            return f"int(not ({self.ex(expr.operand)}))"
        if expr.op == "~":
            return f"(~int({self.ex(expr.operand)}))"
        return self.refuse(f"unary {expr.op}")

    def _binary(self, expr) -> str:
        op = expr.op
        self.tick()
        if op == "=":
            v = self.ex(expr.rhs)
            t = self.tmp()
            self.line(f"{t} = {v}")
            addr, base = self.lv(expr.lhs)
            self.rec(addr, True, base)
            self.line(f"cells[{addr}].value = {t}")
            return t
        if expr.is_compound_assignment:
            addr, base = self.lv(expr.lhs)
            self.rec(addr, False, base)
            old = self.tmp()
            self.line(f"{old} = cells[{addr}].value")
            rhs = self.ex(expr.rhs)
            new = self.tmp()
            self.line(f"{new} = {self._apply(op[:-1], old, rhs)}")
            self.rec(addr, True, base)
            self.line(f"cells[{addr}].value = {new}")
            return new
        if op in ("&&", "||"):
            lhs = self.ex(expr.lhs)
            t = self.tmp()
            self.line(f"{t} = bool({lhs})")
            self.flush()
            cond = t if op == "&&" else f"not {t}"
            self.line(f"if {cond}:")
            self.indent += 1
            rhs = self.ex(expr.rhs)
            self.flush()
            self.line(f"{t} = bool({rhs})")
            self.indent -= 1
            out = self.tmp()
            self.line(f"{out} = int({t})")
            return out
        if op == ",":
            self.ex(expr.lhs)   # value discarded; side effects emitted
            return self.ex(expr.rhs)
        a, b = self.operands([expr.lhs, expr.rhs])
        return self._apply(op, a, b)

    def _apply(self, op: str, a: str, b: str) -> str:
        if op in ("+", "-", "*"):
            return f"(({a}) {op} ({b}))"
        if op == "/":
            return f"_div({a}, {b})"
        if op == "%":
            return f"_mod({a}, {b})"
        if op in _CMP_OPS:
            return f"int(({a}) {op} ({b}))"
        if op in ("&", "|", "^"):
            return f"(int({a}) {op} int({b}))"
        if op == "<<":
            return f"(int({a}) << min(int({b}), 31))"
        if op == ">>":
            return f"(int({a}) >> min(int({b}), 31))"
        return self.refuse(f"binary {op}")

    def _conditional(self, expr) -> str:
        self.tick()
        cond = self.ex(expr.cond)
        self.flush()
        t = self.tmp()
        self.line(f"if {cond}:")
        self.indent += 1
        v = self.ex(expr.then)
        self.flush()
        self.line(f"{t} = {v}")
        self.indent -= 1
        self.line("else:")
        self.indent += 1
        v = self.ex(expr.els)
        self.flush()
        self.line(f"{t} = {v}")
        self.indent -= 1
        return t

    def _callexpr(self, expr) -> str:
        self.tick()
        fn = MATH_FUNCTIONS.get(expr.name)
        if fn is None:
            # evaluated lazily: a dead-branch unknown call never refuses
            return self.refuse(
                f"call to unknown function {expr.name!r}")
        fname = f"_f_{expr.name}"
        self.bindings[fname] = fn
        args = self.operands(list(expr.args))
        t = self.tmp()
        self.line(f"{t} = _call({fname}{''.join(', ' + a for a in args)})")
        return t

    # -- statements -----------------------------------------------------------

    def st(self, stmt) -> None:
        if isinstance(stmt, CompoundStmt):
            self.tick()
            for inner in stmt.stmts:
                self.st(inner)
            return
        if isinstance(stmt, DeclStmt):
            # delegate: declarations allocate (order-sensitive) and
            # evaluate dim/init expressions — the tree-walker is the
            # single source of truth for that
            self.flush()
            node = self.bind("n", stmt)
            self.line("I.steps = S")
            self.line("try:")
            self.line(f"    I.exec_stmt({node})")
            self.line("finally:")
            self.line("    S = I.steps")
            return
        if isinstance(stmt, ExprStmt):
            self.tick()
            if stmt.expr is not None:
                self.ex(stmt.expr)
            return
        if isinstance(stmt, IfStmt):
            self.tick()
            cond = self.ex(stmt.cond)
            self.flush()
            self.line(f"if {cond}:")
            self.indent += 1
            self.st(stmt.then)
            self.flush()
            self.line("pass")
            self.indent -= 1
            if stmt.els is not None:
                self.line("else:")
                self.indent += 1
                self.st(stmt.els)
                self.flush()
                self.line("pass")
                self.indent -= 1
            return
        if isinstance(stmt, (ForStmt, WhileStmt, DoStmt)):
            self.tick()              # the exec_stmt tick for the loop node
            self._inner_loop(stmt)
            return
        if isinstance(stmt, BreakStmt):
            self.tick()
            self.flush()
            flag = self.loop_flags[-1] if self.loop_flags else None
            if flag is None:
                self.line("raise _BS()")
            else:
                self.line(f"{flag} = True")
                self.line("break")
            return
        if isinstance(stmt, ContinueStmt):
            self.tick()
            self.flush()
            self.line("break")       # exits the body-once wrapper
            return
        self.tick()
        self.check()
        self.line(f"_unsup({('unsupported statement ' + stmt.kind)!r})")

    def _inner_loop(self, loop) -> None:
        """A non-target loop: no tracing flips, no trip cap."""
        self.nloop += 1
        flag = f"_brk{self.nloop}"
        if isinstance(loop, ForStmt) and loop.init is not None:
            self.st(loop.init)
        self.flush()
        self.line(f"{flag} = False")
        self.line("while True:")
        self.indent += 1
        self.check()
        if isinstance(loop, (ForStmt, WhileStmt)):
            if isinstance(loop, WhileStmt) or loop.cond is not None:
                cond = self.ex(loop.cond)
                self.flush()
                self.line(f"if not ({cond}): break")
        self._body_once(loop.body, flag)
        self.line(f"if {flag}: break")
        if isinstance(loop, ForStmt) and loop.inc is not None:
            self.ex(loop.inc)
            self.flush()
        if isinstance(loop, DoStmt):
            cond = self.ex(loop.cond)
            self.flush()
            self.line(f"if not ({cond}): break")
        self.flush()
        self.line("pass")
        self.indent -= 1

    def _body_once(self, body, flag: str | None) -> None:
        """Wrap one loop-body execution so a C ``continue`` becomes a
        Python ``break`` out of the wrapper (the enclosing loop's
        increment still runs)."""
        self.line("while True:")
        self.indent += 1
        self.loop_flags.append(flag)
        self.st(body)
        self.loop_flags.pop()
        self.flush()
        self.line("break")
        self.indent -= 1

    # -- function assembly ----------------------------------------------------

    def preamble(self) -> list[str]:
        lines = [
            "    M = I.memory; cells = M.cells; B = M.bases",
            "    MS = I.max_steps; MT = I.max_trip; E = I.array_extent",
        ]
        if self.record:
            lines.append("    TR = I.trace; TE = TR.events")
        lines.append("    CI = I.current_iteration")
        lines.append("    try:")
        for name in sorted(self.arrays):
            lines.append(f"        _b_{name} = B[{name!r}][0]")
        for name in sorted(self.scalars):
            lines.append(f"        _a_{name} = B[{name!r}][0]")
        lines.append("        pass")
        lines.append("    except KeyError:")
        lines.append("        raise _CU()")
        lines.append("    _ebe = 'exceeded %d steps' % MS")
        lines.append("    S = I.steps")
        lines.append("    try:")
        return lines

    def emit_run(self, fname: str) -> str:
        """The whole target loop, as ``Interpreter._exec_loop`` runs it
        for the traced target (trip cap, iteration accounting)."""
        loop = self.loop
        self.line("it = 0")
        if loop.init is not None:
            saved, self.record = self.record, False
            self.st(loop.init)
            self.record = saved
        self.flush()
        self.line("_brk0 = False")
        self.line("while True:")
        self.indent += 1
        self.check()
        if loop.cond is not None:
            self.guard_ci = self.record
            cond = self.ex(loop.cond)
            self.guard_ci = False
            self.flush()
            self.line(f"if not ({cond}): break")
        if self.record:
            self.line("CI = it")
            self.line("I.current_iteration = it")
            self.line("TR.iterations = it + 1")
        self.line("it += 1")
        self._body_once(loop.body, "_brk0")
        self.line("if _brk0: break")
        if loop.inc is not None:
            self.ex(loop.inc)
            self.flush()
        self.line("if it >= MT: break")
        self.flush()
        self.line("pass")
        self.indent -= 1
        self.check()
        if self.record:
            self.line("CI = -1")
            self.line("I.current_iteration = -1")
        self.line("return it")
        return self._render(fname)

    def emit_body(self, fname: str) -> str:
        """One body execution, as ``exec_stmt(loop.body)`` under a
        ``_ContinueSignal`` catch (the verifier's per-iteration call)."""
        self._body_once(self.loop.body, None)
        self.check()
        self.line("return None")
        return self._render(fname)

    def _render(self, fname: str) -> str:
        body = self.preamble() + self.lines + [
            "    finally:",
            "        I.steps = S",
        ]
        return "\n".join([f"def {fname}(I):"] + body)


class CompiledLoop:
    """One loop lowered to three Python functions sharing the
    interpreter's memory model: the full target loop traced / untraced,
    and a single untraced body execution."""

    __slots__ = ("loop", "source", "_traced", "_fast", "_body")

    def __init__(self, loop, source: str, traced, fast, body) -> None:
        self.loop = loop
        self.source = source
        self._traced = traced
        self._fast = fast
        self._body = body

    def run(self, interp: Interpreter, traced: bool) -> int:
        """Execute the whole (prepared) target loop; returns the trip
        count.  ``traced=True`` additionally records the interpreter's
        exact access-event stream and trace iteration count.  Raises
        :class:`CompileUnavailable` — before touching any state — when
        a referenced name is not allocated; callers fall back to
        :meth:`Interpreter._exec_loop`.
        """
        fn = self._traced if traced else self._fast
        it = fn(interp)
        if traced:
            interp.trace.scalar_bases = {
                name for name, (_, shape) in interp.memory.bases.items()
                if not shape
            }
        return it

    def run_body(self, interp: Interpreter) -> None:
        """One untraced body execution (a simulated-parallel
        iteration); top-level ``continue`` is absorbed exactly like
        ``exec_stmt`` under a ``_ContinueSignal`` catch."""
        self._body(interp)


def _compile(loop) -> CompiledLoop | None:
    if not isinstance(loop, ForStmt):
        return None
    try:
        gens = [
            _Codegen(loop, record=True),
            _Codegen(loop, record=False),
            _Codegen(loop, record=False),
        ]
        sources = [
            gens[0].emit_run("_run_traced"),
            gens[1].emit_run("_run_fast"),
            gens[2].emit_body("_run_body"),
        ]
        namespace = {
            "_EBE": ExecutionBudgetExceeded,
            "_AE": AccessEvent,
            "_BS": _BreakSignal,
            "_CU": CompileUnavailable,
            "_call": _call,
            "_div": _div,
            "_mod": _mod,
            "_unsup": _unsup,
        }
        for gen in gens:
            namespace.update(gen.bindings)
        code = "\n\n".join(sources)
        exec(compile(code, "<repro.tools.compile>", "exec"), namespace)
        return CompiledLoop(loop, code, namespace["_run_traced"],
                            namespace["_run_fast"], namespace["_run_body"])
    except Exception:
        # any codegen failure degrades to the tree-walker, never to a
        # wrong answer; the parity suite keeps this path honest
        return None


_MEMO: OrderedDict[str, CompiledLoop | None] = OrderedDict()
_STATS = {"hits": 0, "misses": 0, "fallbacks": 0}


def compile_loop(loop: Stmt) -> CompiledLoop | None:
    """Memoized compilation of one loop; ``None`` means "use the
    tree-walker" (unsupported shape, oversized, or compilation
    disabled via ``REPRO_NO_LOOP_COMPILE``).

    The memo key is the unparsed source, so a re-parsed copy of an
    already-compiled loop reuses the code objects: execution only
    depends on loop *structure* (delegated statement nodes from the
    original parse are structurally identical stand-ins).
    """
    if os.environ.get("REPRO_NO_LOOP_COMPILE"):
        return None
    from repro.cfront import unparse

    key = hashlib.sha256(unparse(loop).encode("utf-8")).hexdigest()
    if key in _MEMO:
        _STATS["hits"] += 1
        _MEMO.move_to_end(key)
        return _MEMO[key]
    _STATS["misses"] += 1
    compiled = _compile(loop)
    if compiled is None:
        _STATS["fallbacks"] += 1
    _MEMO[key] = compiled
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.popitem(last=False)
    return compiled


def compile_cache_stats() -> dict:
    """Hit/miss/fallback counters of the in-process compile memo."""
    return {"entries": len(_MEMO), **_STATS}


__all__ = [
    "CompileUnavailable",
    "CompiledLoop",
    "compile_cache_stats",
    "compile_loop",
]
