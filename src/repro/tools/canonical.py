"""Canonical loop-form recognition.

OpenMP worksharing (and every static analyzer here) requires loops in
canonical form::

    for (i = lb; i < ub; i += step)    // also <=, >, >=, i++, i--, i -= c

This module extracts ``(var, lower, upper, step, direction)`` or reports
why a loop is non-canonical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfront.nodes import (
    BinaryOperator,
    BreakStmt,
    DeclRefExpr,
    DeclStmt,
    ExprStmt,
    Expr,
    ForStmt,
    GotoStmt,
    IntegerLiteral,
    ReturnStmt,
    Stmt,
    UnaryOperator,
)


@dataclass
class CanonicalLoop:
    """A recognised canonical for-loop."""

    var: str
    lower: Expr | None         # None when init is missing/external
    upper: Expr
    cmp_op: str                # < <= > >=
    step: int                  # signed literal step; 0 = symbolic
    step_expr: Expr | None     # non-literal step expression if any
    loop: ForStmt

    @property
    def ascending(self) -> bool:
        return self.cmp_op in ("<", "<=")

    @property
    def unit_stride(self) -> bool:
        return abs(self.step) == 1


def _init_var(init: Stmt | None) -> tuple[str | None, Expr | None]:
    """Extract (var, lower bound) from a for-init clause."""
    if init is None:
        return None, None
    if isinstance(init, DeclStmt) and len(init.decls) == 1:
        d = init.decls[0]
        return d.name, d.init
    if isinstance(init, ExprStmt) and isinstance(init.expr, BinaryOperator):
        e = init.expr
        if e.op == "=" and isinstance(e.lhs, DeclRefExpr):
            return e.lhs.name, e.rhs
    return None, None


def _step_of(inc: Expr | None, var: str) -> tuple[int, Expr | None] | None:
    """Signed step from the increment clause; None when unrecognisable."""
    if inc is None:
        return None
    if isinstance(inc, UnaryOperator) and inc.is_incdec:
        if isinstance(inc.operand, DeclRefExpr) and inc.operand.name == var:
            return (1 if inc.op == "++" else -1), None
        return None
    if isinstance(inc, BinaryOperator) and isinstance(inc.lhs, DeclRefExpr) \
            and inc.lhs.name == var:
        sign = {"+=": 1, "-=": -1}.get(inc.op)
        if sign is not None:
            if isinstance(inc.rhs, IntegerLiteral):
                return sign * inc.rhs.value, None
            return 0, inc.rhs  # symbolic step
        if inc.op == "=" and isinstance(inc.rhs, BinaryOperator):
            # i = i + c / i = c + i / i = i - c
            r = inc.rhs
            if r.op in ("+", "-"):
                lhs_is_var = (
                    isinstance(r.lhs, DeclRefExpr) and r.lhs.name == var
                )
                rhs_is_var = (
                    isinstance(r.rhs, DeclRefExpr) and r.rhs.name == var
                )
                if lhs_is_var and isinstance(r.rhs, IntegerLiteral):
                    return (1 if r.op == "+" else -1) * r.rhs.value, None
                if rhs_is_var and r.op == "+" and isinstance(r.lhs, IntegerLiteral):
                    return r.lhs.value, None
                if lhs_is_var or rhs_is_var:
                    return 0, r  # symbolic
    return None


def recognize_canonical(loop: Stmt) -> CanonicalLoop | None:
    """Recognise a canonical for-loop, or return ``None``.

    Requirements: a ``for`` statement whose condition compares the
    induction variable against a bound, whose increment adjusts only the
    induction variable, and whose body never writes the induction
    variable, ``break``s, ``goto``s, or ``return``s.
    """
    if not isinstance(loop, ForStmt) or loop.cond is None:
        return None
    var, lower = _init_var(loop.init)
    cond = loop.cond
    if not isinstance(cond, BinaryOperator) or cond.op not in ("<", "<=", ">", ">="):
        return None
    # Identify which side of the comparison is the induction variable.
    if isinstance(cond.lhs, DeclRefExpr) and (var is None or cond.lhs.name == var):
        var = var or cond.lhs.name
        upper, cmp_op = cond.rhs, cond.op
    elif isinstance(cond.rhs, DeclRefExpr) and (var is None or cond.rhs.name == var):
        var = var or cond.rhs.name
        upper = cond.lhs
        cmp_op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[cond.op]
    else:
        return None

    step_info = _step_of(loop.inc, var)
    if step_info is None:
        return None
    step, step_expr = step_info
    if step != 0:
        ascending = cmp_op in ("<", "<=")
        if (step > 0) != ascending:
            return None  # diverging loop

    # The body must not modify the induction variable or escape.
    for node in loop.body.walk():
        if isinstance(node, (BreakStmt, GotoStmt, ReturnStmt)):
            return None
        if isinstance(node, BinaryOperator) and node.is_assignment:
            if isinstance(node.lhs, DeclRefExpr) and node.lhs.name == var:
                return None
        if isinstance(node, UnaryOperator) and node.is_incdec:
            if isinstance(node.operand, DeclRefExpr) and node.operand.name == var:
                return None
    return CanonicalLoop(
        var=var, lower=lower, upper=upper, cmp_op=cmp_op,
        step=step, step_expr=step_expr, loop=loop,
    )
