"""DiscoPoP simulator: dynamic (hybrid) parallelism discovery.

Pipeline of the real tool (Li et al. 2016): instrument the program,
execute it, build a dynamic data-dependence graph over memory addresses,
then pattern-match computational units for *do-all* and *reduction*.

Simulation mapping (see DESIGN.md):

- instrumentation + runtime → :class:`repro.tools.interp.Interpreter`
  with synthesized inputs and per-iteration access tracing;
- **applicability** — the program must actually run: unknown function
  calls, pointers, structs, I/O and unbounded loops are fatal (this is
  why the real tool processed only 3.7 % of OMP_Serial);
- **do-all** — no address is written in one iteration and touched in
  another (privatizable scalars excluded: first access in every
  iteration is a write);
- **reduction** — remaining cross-iteration dependences all fall on
  scalars whose updates match DiscoPoP's *single-statement* reduction
  pattern with no call in the update expression.  Listing 1 (``error = error
  + fabs(...)``) fails the no-call rule; Listing 4 (two updates of ``v``)
  fails the single-statement rule — both reproduce the paper's misses;
- **nested loops** — analysis targets innermost CUs: an outer loop
  containing another loop is reported not-parallel (Listing 5).
"""

from __future__ import annotations

from repro.cfront.nodes import (
    BinaryOperator,
    CallExpr,
    CompoundStmt,
    DeclRefExpr,
    ExprStmt,
    Stmt,
)
from repro.cfront.nodes import LOOP_KINDS
from repro.tools.base import ParallelTool, ToolResult, ToolVerdict
from repro.tools.deps import REDUCTION_BINOPS, REDUCTION_COMPOUND
from repro.tools.interp import (
    ExecutionBudgetExceeded,
    Interpreter,
    Trace,
    UnsupportedConstruct,
)


class DiscoPoP(ParallelTool):
    name = "discopop"

    def __init__(self, max_trip: int = 12, seed: int = 0) -> None:
        self.max_trip = max_trip
        self.seed = seed

    def analyze_loop(self, loop: Stmt, *,
                     pointer_arrays: frozenset[str] = frozenset(),
                     file_meta: dict | None = None) -> ToolResult:
        # A dynamic tool produces no verdict without running the program:
        # the enclosing file must compile, link and execute (this is why
        # the real tool covered only 3.7 % of OMP_Serial).  Pointer
        # parameters are NOT a problem — actual addresses are observed.
        if file_meta is not None and not self.can_process_file(file_meta):
            return ToolResult(
                ToolVerdict.UNPROCESSABLE,
                reason="enclosing file cannot be instrumented and executed",
            )
        inner_loops = [n for n in loop.body.walk()
                       if isinstance(n, LOOP_KINDS)] if hasattr(loop, "body") else []
        try:
            interp = Interpreter(max_trip=self.max_trip, seed=self.seed)
            trace = interp.run_loop(loop)
        except (UnsupportedConstruct, ExecutionBudgetExceeded) as exc:
            return ToolResult(ToolVerdict.UNPROCESSABLE, reason=str(exc))
        if trace.iterations < 2:
            return ToolResult(
                ToolVerdict.UNPROCESSABLE,
                reason="loop executed fewer than two iterations",
            )
        if inner_loops:
            # CU analysis targets innermost loops; the outer level of a
            # nest is not reported parallel (paper Listing 5).
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason="outer loop of a nest (innermost-CU analysis)",
            )
        return self._classify(loop, trace)

    # -- dynamic dependence classification ------------------------------------

    def _classify(self, loop: Stmt, trace: Trace) -> ToolResult:
        from repro.tools.canonical import recognize_canonical

        # Induction variables are normalised away by the real tool.
        canonical = recognize_canonical(loop)
        induction = {canonical.var} if canonical is not None else set()

        per_addr: dict[int, list] = {}
        for event in trace.events:
            if event.base in induction:
                continue
            per_addr.setdefault(event.address, []).append(event)

        carried: dict[int, str] = {}   # addr -> base name
        for addr, events in per_addr.items():
            iters = {e.iteration for e in events}
            writes = [e for e in events if e.is_write]
            if not writes or len(iters) < 2:
                continue  # read-only, or confined to one iteration
            # Privatizable scalar: in every iteration touching the
            # address, the first access is a write.  Array cells do not
            # privatize — a write-per-iteration cell is a WAW dependence.
            if events[0].base in trace.scalar_bases:
                first_by_iter: dict[int, bool] = {}
                for e in events:
                    first_by_iter.setdefault(e.iteration, e.is_write)
                if all(first_by_iter.values()):
                    continue
            # Some iteration reads or overwrites a value another iteration
            # produced: a genuine cross-iteration dependence.
            carried[addr] = events[0].base

        if not carried:
            return ToolResult(ToolVerdict.PARALLEL, patterns={"do-all"})

        reduction_vars = self._pattern_reduction_vars(loop)
        carried_bases = set(carried.values())
        if carried_bases <= reduction_vars:
            return ToolResult(ToolVerdict.PARALLEL, patterns={"reduction"})
        return ToolResult(
            ToolVerdict.NOT_PARALLEL,
            reason=f"cross-iteration dependence on "
                   f"{sorted(carried_bases - reduction_vars)[0]}",
        )

    # -- reduction pattern table ------------------------------------------------

    def _pattern_reduction_vars(self, loop: Stmt) -> set[str]:
        """Scalars whose updates match the tool's reduction pattern table.

        DiscoPoP's table: exactly one update statement of the form
        ``s op= expr`` or ``s = s op expr`` with an associative op and no
        function call in ``expr``.
        """
        body = getattr(loop, "body", loop)
        candidates: dict[str, list[str]] = {}

        def visit(stmt: Stmt) -> None:
            if isinstance(stmt, CompoundStmt):
                for inner in stmt.stmts:
                    visit(inner)
                return
            if not isinstance(stmt, ExprStmt) or stmt.expr is None:
                return
            e = stmt.expr
            if not isinstance(e, BinaryOperator) or not e.is_assignment:
                return
            if not isinstance(e.lhs, DeclRefExpr):
                return
            name = e.lhs.name
            has_call = any(isinstance(n, CallExpr) for n in e.rhs.walk())
            if has_call:
                candidates.setdefault(name, []).append("<call>")
                return
            if e.op in REDUCTION_COMPOUND:
                candidates.setdefault(name, []).append(REDUCTION_COMPOUND[e.op])
            elif e.op == "=" and isinstance(e.rhs, BinaryOperator) \
                    and e.rhs.op in REDUCTION_BINOPS:
                # s must be a DIRECT operand of the top-level operator and
                # absent from the other side: ``s = s op expr``.  A
                # recurrence like ``s = s*a + b`` is NOT a reduction.
                r = e.rhs
                lhs_is_s = isinstance(r.lhs, DeclRefExpr) and r.lhs.name == name
                rhs_is_s = isinstance(r.rhs, DeclRefExpr) and r.rhs.name == name
                other = r.rhs if lhs_is_s else r.lhs
                reads_other = other is not None and any(
                    isinstance(n, DeclRefExpr) and n.name == name
                    for n in other.walk()
                )
                if (lhs_is_s or rhs_is_s) and not reads_other:
                    candidates.setdefault(name, []).append(
                        REDUCTION_BINOPS[r.op]
                    )
                else:
                    candidates.setdefault(name, []).append("<other>")
            else:
                candidates.setdefault(name, []).append("<other>")

        visit(body)
        matched = {
            name for name, ops in candidates.items()
            if len(ops) == 1 and ops[0] in ("+", "*", "&", "|", "^")
        }
        if not matched:
            return set()
        # The accumulator must not be consumed outside its update: every
        # read/write of it has to come from the single update statement
        # (one read + one write).  An escaping intermediate value (e.g.
        # ``dst[i] = s;``) invalidates the reduction.
        from repro.tools.access import collect_accesses
        summary = collect_accesses(body)
        sound: set[str] = set()
        for name in matched:
            if len(summary.reads(name)) == 1 and len(summary.writes(name)) == 1:
                sound.add(name)
        return sound

    def can_process_file(self, file_meta: dict) -> bool:
        """The program must compile, link AND run: it needs a ``main``,
        no external library calls, and inputs it can fabricate."""
        return (
            bool(file_meta.get("compiles", True))
            and bool(file_meta.get("has_main", False))
            and not file_meta.get("external_calls", False)
        )
