"""Common result types for the comparator tools."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cfront.nodes import Stmt


class ToolVerdict(enum.Enum):
    """Outcome of running a tool on one loop."""

    PARALLEL = "parallel"            # tool reports the loop parallelisable
    NOT_PARALLEL = "not_parallel"    # processed, but no parallelism found
    UNPROCESSABLE = "unprocessable"  # tool cannot handle this loop at all


@dataclass
class ToolResult:
    """Everything a tool reports for one loop.

    ``patterns`` holds detected parallel patterns (``"do-all"``,
    ``"reduction"``, ``"private"``); ``reason`` explains unprocessable /
    negative verdicts for debugging and the Figure-2 breakdown.
    """

    verdict: ToolVerdict
    patterns: set[str] = field(default_factory=set)
    reason: str = ""

    @property
    def processable(self) -> bool:
        return self.verdict is not ToolVerdict.UNPROCESSABLE

    @property
    def parallel(self) -> bool:
        return self.verdict is ToolVerdict.PARALLEL


class ParallelTool:
    """Interface shared by the three comparators.

    ``analyze_loop`` takes the loop plus its *declaration context*:

    - ``pointer_arrays`` — array bases that are pointer parameters in the
      enclosing function.  Static tools must assume such pointers may
      alias (no ``restrict``), which is the dominant reason real static
      parallelizers reject crawled code; a dynamic tool observes actual
      addresses and does not care.
    - ``file_meta`` — whole-file attributes; the dynamic tool cannot
      produce any verdict for a loop it cannot link and execute.
    """

    #: lowercase tool name
    name: str = "tool"

    def analyze_loop(self, loop: Stmt, *,
                     pointer_arrays: frozenset[str] = frozenset(),
                     file_meta: dict | None = None) -> ToolResult:  # pragma: no cover
        raise NotImplementedError

    def can_process_file(self, file_meta: dict) -> bool:
        """Whole-file applicability gate (the §2 coverage statistic).

        ``file_meta`` carries corpus attributes (``has_main``,
        ``external_calls``, ``compiles`` ...) produced by the dataset
        generator; each tool overrides this with its toolchain's real
        requirements.
        """
        return bool(file_meta.get("compiles", True))
