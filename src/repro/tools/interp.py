"""A mini C interpreter with memory-access tracing.

This is the stand-in for DiscoPoP's pipeline (LLVM instrumentation →
execution → dependence graph): it executes a loop on synthesized inputs
and records every memory access as ``(iteration, address, read/write)``.

Scope is deliberately the executable subset a dynamic tool could handle
on a lone crawled file: scalar ints/floats, (multi-)dimensional arrays,
arithmetic/logic, if/for/while/do, and a whitelist of libm functions.
Structs, pointers, ``goto``, I/O and unknown calls raise
:class:`UnsupportedConstruct`, which the DiscoPoP simulator maps to
"cannot process" — the real tool's dominant failure mode (3.7 % coverage
in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    Expr,
    ExprStmt,
    FloatingLiteral,
    ForStmt,
    IfStmt,
    IntegerLiteral,
    Node,
    SizeofExpr,
    Stmt,
    UnaryOperator,
    WhileStmt,
)


class UnsupportedConstruct(Exception):
    """The interpreter cannot execute this program fragment."""


class ExecutionBudgetExceeded(Exception):
    """The step budget ran out (non-terminating or huge loop)."""


#: Pure libm-style functions a dynamic tool can link against.
MATH_FUNCTIONS: dict[str, object] = {
    "fabs": abs, "abs": abs, "labs": abs,
    "sqrt": lambda x: math.sqrt(abs(x)),
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "exp": lambda x: math.exp(min(x, 50.0)),
    "log": lambda x: math.log(abs(x) + 1e-9),
    "log2": lambda x: math.log2(abs(x) + 1e-9),
    "floor": math.floor, "ceil": math.ceil,
    "pow": lambda x, y: math.pow(abs(x) + 1e-9, min(y, 8.0)),
    "fmin": min, "fmax": max, "min": min, "max": max,
    "round": round, "trunc": math.trunc,
}


@dataclass
class AccessEvent:
    iteration: int
    address: int
    is_write: bool
    base: str


@dataclass
class Trace:
    """Execution trace of the target loop."""

    events: list[AccessEvent] = field(default_factory=list)
    iterations: int = 0
    #: address → variable name (for reporting)
    names: dict[int, str] = field(default_factory=dict)
    #: variables allocated as plain scalars (privatization candidates)
    scalar_bases: set[str] = field(default_factory=set)

    def touched_addresses(self) -> set[int]:
        return {e.address for e in self.events}


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


@dataclass
class _Cell:
    """A scalar memory cell."""

    value: float | int = 0


class Memory:
    """Flat address space; every variable/array element has an address."""

    def __init__(self) -> None:
        self._next = 0x1000
        self.cells: dict[int, _Cell] = {}
        self.bases: dict[str, tuple[int, tuple[int, ...]]] = {}

    def allocate(self, name: str, shape: tuple[int, ...] = ()) -> int:
        count = 1
        for dim in shape:
            count *= dim
        base = self._next
        self._next += max(count, 1)
        self.bases[name] = (base, shape)
        for off in range(max(count, 1)):
            self.cells[base + off] = _Cell()
        return base

    def address_of(self, name: str, indices: tuple[int, ...] = ()) -> int:
        base, shape = self.bases[name]
        if len(indices) != len(shape):
            raise UnsupportedConstruct(
                f"{name}: {len(indices)} subscripts for {len(shape)}-d array"
            )
        addr = base
        stride = 1
        for dim, idx in zip(reversed(shape), reversed(indices)):
            if not 0 <= idx < dim:
                idx = idx % dim  # wrap out-of-range synthetic accesses
            addr += idx * stride
            stride *= dim
        return addr

    def read(self, addr: int):
        return self.cells[addr].value

    def write(self, addr: int, value) -> None:
        self.cells[addr].value = value

    def checkpoint(self) -> tuple:
        """A restorable snapshot of the whole address space.

        The verifier uses this to share one input synthesis across
        many simulated runs instead of re-preparing a fresh
        interpreter per run.
        """
        return (self._next, dict(self.bases),
                {addr: cell.value for addr, cell in self.cells.items()})

    def restore(self, state: tuple) -> None:
        """Reset the address space to a :meth:`checkpoint`."""
        nxt, bases, values = state
        self._next = nxt
        self.bases = dict(bases)
        cells = self.cells
        if len(cells) != len(values):
            for addr in [a for a in cells if a not in values]:
                del cells[addr]
        for addr, value in values.items():
            cell = cells.get(addr)
            if cell is None:
                cells[addr] = _Cell(value)
            else:
                cell.value = value


class Interpreter:
    """Execute a loop statement over synthesized inputs, tracing accesses."""

    def __init__(self, max_steps: int = 200_000, array_extent: int = 16,
                 max_trip: int = 12, seed: int = 0) -> None:
        self.max_steps = max_steps
        self.array_extent = array_extent
        #: symbolic loop bounds are bound to this trip count
        self.max_trip = max_trip
        self.seed = seed
        self.memory = Memory()
        self.trace = Trace()
        self.steps = 0
        self.current_iteration = -1
        self._target_loop: Stmt | None = None

    # -- environment synthesis ----------------------------------------------------

    def prepare(self, loop: Stmt) -> None:
        """Allocate every variable the loop touches, with synthetic values."""
        subscript_depth: dict[str, int] = {}
        scalars: set[str] = set()
        for node in loop.walk():
            if isinstance(node, ArraySubscriptExpr):
                depth = 0
                inner: Node = node
                while isinstance(inner, ArraySubscriptExpr):
                    depth += 1
                    inner = inner.base
                if isinstance(inner, DeclRefExpr):
                    subscript_depth[inner.name] = max(
                        subscript_depth.get(inner.name, 0), depth
                    )
            elif isinstance(node, DeclRefExpr):
                scalars.add(node.name)
        called = {
            c.name for c in loop.find_all(CallExpr)
        }
        # Variables appearing in loop conditions but never written inside
        # the loop are bounds: give them the full trip count so the trace
        # observes enough iterations.  Written scalars (inductions,
        # accumulators) start at zero; everything else gets small values.
        from repro.cfront.nodes import LOOP_KINDS
        written: set[str] = set()
        for node in loop.walk():
            if isinstance(node, BinaryOperator) and node.is_assignment \
                    and isinstance(node.lhs, DeclRefExpr):
                written.add(node.lhs.name)
            elif isinstance(node, UnaryOperator) and node.is_incdec \
                    and isinstance(node.operand, DeclRefExpr):
                written.add(node.operand.name)
        bound_vars: set[str] = set()
        for node in loop.walk():
            if isinstance(node, LOOP_KINDS) and node.cond is not None:
                for ref in node.cond.find_all(DeclRefExpr):
                    if ref.name not in written:
                        bound_vars.add(ref.name)
        import numpy as np
        rng = np.random.default_rng(self.seed)
        for name, depth in subscript_depth.items():
            shape = (self.array_extent,) * depth
            base = self.memory.allocate(name, shape)
            count = self.array_extent ** depth
            for off in range(count):
                self.memory.cells[base + off].value = float(
                    rng.uniform(-4.0, 4.0)
                )
            self.trace.names[base] = name
        for name in scalars - set(subscript_depth) - called:
            base = self.memory.allocate(name)
            if name in bound_vars:
                self.memory.cells[base].value = self.max_trip
            elif name in written:
                self.memory.cells[base].value = 0
            else:
                self.memory.cells[base].value = int(rng.integers(1, 4))
            self.trace.names[base] = name

    # -- tracing helpers -------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ExecutionBudgetExceeded(f"exceeded {self.max_steps} steps")

    def _record(self, addr: int, is_write: bool, base: str) -> None:
        if self.current_iteration >= 0:
            self.trace.events.append(AccessEvent(
                iteration=self.current_iteration, address=addr,
                is_write=is_write, base=base,
            ))

    # -- lvalues ---------------------------------------------------------------------

    def _lvalue_address(self, expr: Expr) -> tuple[int, str]:
        if isinstance(expr, DeclRefExpr):
            if expr.name not in self.memory.bases:
                self.memory.allocate(expr.name)
            return self.memory.address_of(expr.name), expr.name
        if isinstance(expr, ArraySubscriptExpr):
            indices: list[int] = []
            inner: Expr = expr
            while isinstance(inner, ArraySubscriptExpr):
                indices.insert(0, int(self.eval(inner.index)))
                inner = inner.base
            if not isinstance(inner, DeclRefExpr):
                raise UnsupportedConstruct("computed array base")
            return (
                self.memory.address_of(inner.name, tuple(indices)),
                inner.name,
            )
        raise UnsupportedConstruct(f"unsupported lvalue {expr.kind}")

    # -- expressions ------------------------------------------------------------------

    def eval(self, expr: Expr):
        self._tick()
        if isinstance(expr, IntegerLiteral):
            return expr.value
        if isinstance(expr, FloatingLiteral):
            return expr.value
        if isinstance(expr, CharLiteral):
            return expr.value
        if isinstance(expr, DeclRefExpr):
            addr, base = self._lvalue_address(expr)
            self._record(addr, False, base)
            return self.memory.read(addr)
        if isinstance(expr, ArraySubscriptExpr):
            addr, base = self._lvalue_address(expr)
            self._record(addr, False, base)
            return self.memory.read(addr)
        if isinstance(expr, CastExpr):
            value = self.eval(expr.operand)
            if expr.to_type.base in ("int", "long", "short", "char",
                                     "unsigned", "signed"):
                return int(value)
            return float(value)
        if isinstance(expr, SizeofExpr):
            return 8
        if isinstance(expr, UnaryOperator):
            return self._eval_unary(expr)
        if isinstance(expr, BinaryOperator):
            return self._eval_binary(expr)
        if isinstance(expr, ConditionalOperator):
            return self.eval(expr.then) if self.eval(expr.cond) else self.eval(expr.els)
        if isinstance(expr, CallExpr):
            return self._eval_call(expr)
        raise UnsupportedConstruct(f"unsupported expression {expr.kind}")

    def _eval_unary(self, expr: UnaryOperator):
        if expr.is_incdec:
            addr, base = self._lvalue_address(expr.operand)
            self._record(addr, False, base)
            old = self.memory.read(addr)
            new = old + (1 if expr.op == "++" else -1)
            self._record(addr, True, base)
            self.memory.write(addr, new)
            return new if expr.prefix else old
        value_ops = {"-": lambda v: -v, "+": lambda v: v,
                     "!": lambda v: int(not v), "~": lambda v: ~int(v)}
        if expr.op in value_ops:
            return value_ops[expr.op](self.eval(expr.operand))
        raise UnsupportedConstruct(f"unary {expr.op}")

    def _eval_binary(self, expr: BinaryOperator):
        op = expr.op
        if op == "=":
            value = self.eval(expr.rhs)
            addr, base = self._lvalue_address(expr.lhs)
            self._record(addr, True, base)
            self.memory.write(addr, value)
            return value
        if expr.is_compound_assignment:
            addr, base = self._lvalue_address(expr.lhs)
            self._record(addr, False, base)
            old = self.memory.read(addr)
            rhs = self.eval(expr.rhs)
            new = self._apply(op[:-1], old, rhs)
            self._record(addr, True, base)
            self.memory.write(addr, new)
            return new
        if op == "&&":
            return int(bool(self.eval(expr.lhs)) and bool(self.eval(expr.rhs)))
        if op == "||":
            return int(bool(self.eval(expr.lhs)) or bool(self.eval(expr.rhs)))
        if op == ",":
            self.eval(expr.lhs)
            return self.eval(expr.rhs)
        return self._apply(op, self.eval(expr.lhs), self.eval(expr.rhs))

    @staticmethod
    def _apply(op: str, a, b):
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                return 0
            if isinstance(a, int) and isinstance(b, int):
                return int(a / b)
            return a / b
        if op == "%":
            return int(a) % int(b) if int(b) else 0
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "&":
            return int(a) & int(b)
        if op == "|":
            return int(a) | int(b)
        if op == "^":
            return int(a) ^ int(b)
        if op == "<<":
            return int(a) << min(int(b), 31)
        if op == ">>":
            return int(a) >> min(int(b), 31)
        raise UnsupportedConstruct(f"binary {op}")

    def _eval_call(self, expr: CallExpr):
        name = expr.name
        fn = MATH_FUNCTIONS.get(name)
        if fn is None:
            raise UnsupportedConstruct(f"call to unknown function {name!r}")
        args = [self.eval(a) for a in expr.args]
        try:
            return fn(*args)
        except (TypeError, ValueError, OverflowError):
            return 0.0

    # -- statements ---------------------------------------------------------------------

    def exec_stmt(self, stmt: Stmt) -> None:
        self._tick()
        if isinstance(stmt, CompoundStmt):
            for inner in stmt.stmts:
                self.exec_stmt(inner)
            return
        if isinstance(stmt, DeclStmt):
            for d in stmt.decls:
                shape: tuple[int, ...] = ()
                if d.var_type.array_dims:
                    dims = []
                    for dim_expr in d.var_type.array_dims:
                        if dim_expr is None:
                            dims.append(self.array_extent)
                        else:
                            dims.append(min(int(self.eval(dim_expr)),
                                            self.array_extent))
                    shape = tuple(dims)
                if d.name not in self.memory.bases:
                    self.memory.allocate(d.name, shape)
                if d.init is not None and not shape:
                    addr = self.memory.address_of(d.name)
                    value = self.eval(d.init)
                    self._record(addr, True, d.name)
                    self.memory.write(addr, value)
            return
        if isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self.eval(stmt.expr)
            return
        if isinstance(stmt, IfStmt):
            if self.eval(stmt.cond):
                self.exec_stmt(stmt.then)
            elif stmt.els is not None:
                self.exec_stmt(stmt.els)
            return
        if isinstance(stmt, (ForStmt, WhileStmt, DoStmt)):
            self._exec_loop(stmt, traced=stmt is self._target_loop)
            return
        if isinstance(stmt, BreakStmt):
            raise _BreakSignal()
        if isinstance(stmt, ContinueStmt):
            raise _ContinueSignal()
        raise UnsupportedConstruct(f"unsupported statement {stmt.kind}")

    def _exec_loop(self, loop: Stmt, traced: bool) -> None:
        iteration = 0

        def begin_iteration() -> None:
            nonlocal iteration
            if traced:
                self.current_iteration = iteration
                self.trace.iterations = iteration + 1
            iteration += 1

        def end_loop() -> None:
            if traced:
                self.current_iteration = -1

        try:
            # Only the traced target loop is sampled at max_trip
            # iterations; inner loops run for real under the global step
            # budget — profiling cost is the dynamic tool's weakness.
            def trip_capped() -> bool:
                return traced and iteration >= self.max_trip

            if isinstance(loop, ForStmt):
                if loop.init is not None:
                    self.exec_stmt(loop.init)
                while loop.cond is None or self.eval(loop.cond):
                    begin_iteration()
                    try:
                        self.exec_stmt(loop.body)
                    except _ContinueSignal:
                        pass
                    if loop.inc is not None:
                        self.eval(loop.inc)
                    if trip_capped():
                        break
            elif isinstance(loop, WhileStmt):
                while self.eval(loop.cond):
                    begin_iteration()
                    try:
                        self.exec_stmt(loop.body)
                    except _ContinueSignal:
                        pass
                    if trip_capped():
                        break
            elif isinstance(loop, DoStmt):
                while True:
                    begin_iteration()
                    try:
                        self.exec_stmt(loop.body)
                    except _ContinueSignal:
                        pass
                    if not self.eval(loop.cond) or trip_capped():
                        break
        except _BreakSignal:
            pass
        finally:
            end_loop()

    # -- public API -----------------------------------------------------------------------

    def run_loop(self, loop: Stmt) -> Trace:
        """Synthesize inputs, execute ``loop``, and return its trace.

        Raises :class:`UnsupportedConstruct` or
        :class:`ExecutionBudgetExceeded` when execution is impossible —
        the DiscoPoP simulator's "cannot process" signal.
        """
        self.prepare(loop)
        self._target_loop = loop
        self._exec_loop(loop, traced=True)
        self.trace.scalar_bases = {
            name for name, (_, shape) in self.memory.bases.items() if not shape
        }
        return self.trace
