"""autoPar simulator: ROSE's static loop parallelizer.

Decision surface of the real tool (Quinlan & Liao 2011):

- **Applicability** — autoPar parses whole files through ROSE/EDG; it
  handles canonical ``for`` loops only, but tolerates conditionals and
  nested regular loops.  ``while``/``do`` loops, ``goto``, and loops
  whose induction update is unrecognisable are skipped.
- **Detection** — dependence analysis on affine subscripts, *scalar
  privatization* (written-before-read scalars become ``private``), and
  *single-statement reduction recognition* (``s += e`` / ``s = s + e``
  becomes ``reduction``).  A loop with any function call is rejected as
  parallel — ROSE's default side-effect analysis cannot prove callee
  purity (this is why Listing 3 defeats it).  Multi-statement reductions
  (Listing 4) are not in its pattern table.
- **Zero false positives** — when in doubt, not parallel.
"""

from __future__ import annotations

from repro.cfront.nodes import ForStmt, GotoStmt, Stmt
from repro.tools.base import ParallelTool, ToolResult, ToolVerdict
from repro.tools.affine import to_affine
from repro.tools.deps import analyze_loop


class AutoPar(ParallelTool):
    name = "autopar"

    def analyze_loop(self, loop: Stmt, *,
                     pointer_arrays: frozenset[str] = frozenset(),
                     file_meta: dict | None = None) -> ToolResult:
        if not isinstance(loop, ForStmt):
            return ToolResult(
                ToolVerdict.UNPROCESSABLE,
                reason=f"{loop.kind}: autoPar only handles for loops",
            )
        if any(isinstance(n, GotoStmt) for n in loop.walk()):
            return ToolResult(ToolVerdict.UNPROCESSABLE, reason="goto in loop")
        deps = analyze_loop(loop)
        if deps.canonical is None:
            return ToolResult(
                ToolVerdict.UNPROCESSABLE, reason="non-canonical for loop"
            )
        alias_reason = self._alias_hazard(deps, pointer_arrays)
        if alias_reason is not None:
            # Without ``restrict``, two pointer parameters may overlap:
            # every cross-array write/access pair is a potential
            # dependence — ROSE's default conservative answer.
            return ToolResult(ToolVerdict.NOT_PARALLEL, reason=alias_reason)
        if deps.has_calls:
            # Side-effect analysis gives up: the call may touch anything.
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason="function call with unknown side effects",
            )
        if deps.non_affine or deps.inexact_access:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason="unresolvable (non-affine or pointer) access",
            )
        coupled = self._coupled_subscript(deps)
        if coupled is not None:
            # Coupled subscripts (one dimension indexed by several loop
            # variables) defeat the separable per-dimension dependence
            # tests classical source-level parallelizers use.
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"coupled subscript on {coupled}",
            )
        if deps.array_deps:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"loop-carried dependence on {deps.array_deps[0].base}",
            )
        # Reduction recognition: single-statement scalar reductions only.
        multi_stmt = [r for r in deps.reductions if r.statements > 1]
        if multi_stmt:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"unrecognised multi-statement update of "
                       f"{multi_stmt[0].var}",
            )
        if deps.shared_scalar_writes:
            return ToolResult(
                ToolVerdict.NOT_PARALLEL,
                reason=f"shared scalar {sorted(deps.shared_scalar_writes)[0]}",
            )
        patterns = {"do-all"}
        if deps.reductions:
            patterns.add("reduction")
        if deps.privatizable:
            patterns.add("private")
        return ToolResult(ToolVerdict.PARALLEL, patterns=patterns)

    @staticmethod
    def _alias_hazard(deps, pointer_arrays: frozenset[str]) -> str | None:
        """Aliasing verdict: a written pointer array + any second pointer
        array accessed in the same loop may overlap."""
        if not pointer_arrays:
            return None
        accessed = {
            a.base for a in deps.summary.accesses if a.subscripts
        } & set(pointer_arrays)
        written = deps.summary.written_bases() & accessed
        if written and len(accessed) > 1:
            other = sorted(accessed - written) or sorted(written)
            return (f"possible aliasing between pointer parameters "
                    f"{sorted(written)[0]} and {other[0]}")
        return None

    @staticmethod
    def _coupled_subscript(deps) -> str | None:
        """First array with a multi-variable subscript dimension, if any."""
        if deps.canonical is None:
            return None
        from repro.tools.deps import _inner_loop_vars
        body = deps.canonical.loop.body
        loop_vars = {deps.canonical.var} | _inner_loop_vars(body)
        for acc in deps.summary.accesses:
            for sub in acc.subscripts:
                aff = to_affine(sub, loop_vars)
                if aff is not None and len(
                    [v for v in aff.coeffs if aff.coeffs[v]]
                ) > 1:
                    return acc.base
        return None

    def can_process_file(self, file_meta: dict) -> bool:
        """ROSE must fully front-end the file: it chokes on exotic headers
        and GNU extensions — the biggest coverage limiter in the paper
        (10.3 % of loops)."""
        return bool(file_meta.get("compiles", True)) and not file_meta.get(
            "uses_nonstandard_headers", False
        )
