"""Algorithm-based auto-parallelization tools (simulated comparators).

The paper compares Graph2Par against Pluto (polyhedral static), autoPar
(ROSE static) and DiscoPoP (dynamic).  None of those binaries exist in
this offline environment, so this package re-implements their *decision
surfaces* on our own substrate (see DESIGN.md substitution table):

- :mod:`repro.tools.canonical` / :mod:`repro.tools.affine` /
  :mod:`repro.tools.access` / :mod:`repro.tools.deps` — the shared static
  dependence-analysis machinery;
- :mod:`repro.tools.interp` — a mini C interpreter that traces memory
  accesses (the stand-in for DiscoPoP's LLVM instrumentation + runtime);
- :mod:`repro.tools.pluto` / :mod:`repro.tools.autopar` /
  :mod:`repro.tools.discopop` — the three comparators, each with its
  faithful applicability gate and detection rules (conservative, zero
  false positives).
"""

from repro.tools.base import ParallelTool, ToolResult, ToolVerdict
from repro.tools.pluto import Pluto
from repro.tools.autopar import AutoPar
from repro.tools.discopop import DiscoPoP

ALL_TOOLS = {"pluto": Pluto, "autopar": AutoPar, "discopop": DiscoPoP}


def make_tool(name: str) -> ParallelTool:
    """Instantiate a comparator tool by its lowercase name."""
    try:
        return ALL_TOOLS[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown tool {name!r}; choose from {sorted(ALL_TOOLS)}")


__all__ = [
    "ParallelTool",
    "ToolResult",
    "ToolVerdict",
    "Pluto",
    "AutoPar",
    "DiscoPoP",
    "ALL_TOOLS",
    "make_tool",
]
