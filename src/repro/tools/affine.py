"""Affine expression analysis and classic dependence tests.

An expression is *affine* in a set of loop variables when it is a linear
combination ``c0 + Σ c_k · i_k`` with integer literal coefficients;
symbolic loop-invariant terms are tolerated as opaque constants (they
cancel in the dependence equations when identical on both sides).

Dependence tests implemented: the ZIV test, the strong-SIV test, and the
GCD test (Banerjee's necessary condition) for general affine pairs.  A
return of ``True`` means "dependence possible" — conservative direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.cfront.nodes import (
    BinaryOperator,
    DeclRefExpr,
    Expr,
    IntegerLiteral,
    UnaryOperator,
)


@dataclass
class Affine:
    """``const + Σ coeffs[var] · var (+ Σ symbolic terms)``."""

    const: int = 0
    coeffs: dict[str, int] = field(default_factory=dict)
    #: loop-invariant opaque terms, e.g. ("n", 1); kept sorted for equality
    symbols: tuple[tuple[str, int], ...] = ()

    def coeff(self, var: str) -> int:
        return self.coeffs.get(var, 0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs and not self.symbols

    def same_symbols(self, other: "Affine") -> bool:
        return self.symbols == other.symbols


def to_affine(expr: Expr, loop_vars: set[str]) -> Affine | None:
    """Affine form of ``expr`` over ``loop_vars``; ``None`` when non-affine.

    Any identifier outside ``loop_vars`` becomes a symbolic term with its
    multiplier; products of two non-constant terms, divisions, calls,
    array reads inside subscripts etc. make the expression non-affine.
    """
    if isinstance(expr, IntegerLiteral):
        return Affine(const=expr.value)
    if isinstance(expr, DeclRefExpr):
        if expr.name in loop_vars:
            return Affine(coeffs={expr.name: 1})
        return Affine(symbols=((expr.name, 1),))
    if isinstance(expr, UnaryOperator) and expr.prefix and expr.op in ("+", "-"):
        inner = to_affine(expr.operand, loop_vars)
        if inner is None:
            return None
        if expr.op == "+":
            return inner
        return Affine(
            const=-inner.const,
            coeffs={v: -c for v, c in inner.coeffs.items()},
            symbols=tuple((s, -m) for s, m in inner.symbols),
        )
    if isinstance(expr, BinaryOperator):
        if expr.op in ("+", "-"):
            left = to_affine(expr.lhs, loop_vars)
            right = to_affine(expr.rhs, loop_vars)
            if left is None or right is None:
                return None
            sign = 1 if expr.op == "+" else -1
            coeffs = dict(left.coeffs)
            for v, c in right.coeffs.items():
                coeffs[v] = coeffs.get(v, 0) + sign * c
            coeffs = {v: c for v, c in coeffs.items() if c}
            sym: dict[str, int] = dict(left.symbols)
            for s, m in right.symbols:
                sym[s] = sym.get(s, 0) + sign * m
            symbols = tuple(sorted((s, m) for s, m in sym.items() if m))
            return Affine(const=left.const + sign * right.const,
                          coeffs=coeffs, symbols=symbols)
        if expr.op == "*":
            left = to_affine(expr.lhs, loop_vars)
            right = to_affine(expr.rhs, loop_vars)
            if left is None or right is None:
                return None
            # Exactly one side must be a pure integer constant.
            for a, b in ((left, right), (right, left)):
                if a.is_constant:
                    k = a.const
                    return Affine(
                        const=k * b.const,
                        coeffs={v: k * c for v, c in b.coeffs.items() if k * c},
                        symbols=tuple((s, k * m) for s, m in b.symbols if k * m),
                    )
            return None
    return None


# ---------------------------------------------------------------------------
# Dependence tests
# ---------------------------------------------------------------------------


def ziv_test(a: Affine, b: Affine) -> bool:
    """Zero-index-variable test: both constant → dependence iff equal."""
    return a.const == b.const and a.same_symbols(b)


def gcd_test(a: Affine, b: Affine) -> bool:
    """Multi-variable GCD necessary condition for ``a(x) = b(y)``.

    Considers every loop-variable coefficient on both sides.  True means
    a dependence *may* exist (conservative); symbolic parts must match
    for the constant difference to be meaningful.
    """
    if not a.same_symbols(b):
        return True  # unknown symbols: be conservative
    coeffs = [abs(c) for c in a.coeffs.values()] + \
             [abs(c) for c in b.coeffs.values()]
    diff = b.const - a.const
    g = 0
    for c in coeffs:
        g = gcd(g, c)
    if g == 0:
        return diff == 0
    return diff % g == 0


def strong_siv_has_cross_iteration(a: Affine, b: Affine, var: str) -> bool | None:
    """Strong-SIV: equal coefficients ⇒ constant dependence distance.

    Only applicable when ``var`` is the *only* loop variable either side
    mentions — another index variable could compensate an arbitrary
    distance.  Returns ``True``/``False`` when decidable, ``None`` when
    not a strong-SIV pair.  ``False`` means: the only solution is
    distance 0 (same iteration), i.e. **no loop-carried dependence**.
    """
    if not a.same_symbols(b):
        return None
    if set(a.coeffs) - {var} or set(b.coeffs) - {var}:
        return None  # other index variables involved: not SIV
    ca, cb = a.coeff(var), b.coeff(var)
    if ca != cb:
        return None
    if ca == 0:
        return None  # ZIV case, not SIV
    diff = b.const - a.const
    if diff % ca != 0:
        return False  # no integer solution at all
    return diff // ca != 0  # non-zero distance = loop carried


def affine_pair_dependent(a: Affine, b: Affine, var: str) -> bool:
    """Is a loop-carried dependence between subscripts ``a`` and ``b`` possible?

    Decision ladder: ZIV → strong SIV → multi-variable GCD (conservative
    fallback).
    """
    if a.is_constant and b.is_constant:
        # Same cell touched every iteration: loop-carried by definition.
        return ziv_test(a, b)
    strong = strong_siv_has_cross_iteration(a, b, var)
    if strong is not None:
        return strong
    return gcd_test(a, b)
