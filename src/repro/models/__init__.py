"""Models: Graph2Par (HGT), PragFormer (token transformer), GCN ablation."""

from repro.models.hgt import Graph2Par, Graph2ParConfig, HGTLayer, TypedLinear
from repro.models.pragformer import (
    PragFormer,
    PragFormerConfig,
    TokenEncoder,
    tokenize_loop,
)
from repro.models.gcn import GCNBaseline, GCNConfig
from repro.models.rgcn import RGCNBaseline, RGCNConfig

__all__ = [
    "RGCNBaseline",
    "RGCNConfig",
    "Graph2Par",
    "Graph2ParConfig",
    "HGTLayer",
    "TypedLinear",
    "PragFormer",
    "PragFormerConfig",
    "TokenEncoder",
    "tokenize_loop",
    "GCNBaseline",
    "GCNConfig",
]
