"""Graph2Par: a Heterogeneous Graph Transformer over aug-AST graphs.

Implements the three HGT mechanisms of Hu et al. 2020 exactly as paper
section 5.2 uses them:

- **Heterogeneous mutual attention** (eq. 2): per-head dot-product
  attention between each edge's source (Key) and target (Query), mediated
  by an edge-type matrix ``W_ATT^r`` and a relation prior μ_r, normalised
  with a softmax over each target's full in-neighbourhood N(t).
- **Heterogeneous message passing** (eq. 3): per-head messages
  ``V(s) · W_MSG^r``.
- **Target-specific aggregation** (eq. 4/5): attention-weighted message
  sum followed by a node-type-specific output projection (``A-Linear``),
  a GELU, and the residual connection.

Per the paper, the temporal machinery of the original HGT (relative
temporal encoding, inductive timestamp assignment) is disabled: the
aug-AST is static.

Node-type-specific projections are realised by :class:`TypedLinear`,
which stores one weight matrix per node type as a single ``(A, D, D')``
tensor and uses a gather + batched matmul — one BLAS call instead of a
Python loop over types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.encode import GraphBatch
from repro.graphs.hetgraph import NODE_POSITIONS, RELATIONS
from repro.graphs.vocab import GraphVocab
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    MLP,
    Module,
    Parameter,
)
from repro.nn.tensor import (
    Tensor,
    concat,
    embedding_sum,
    fast_math_enabled,
    is_grad_enabled,
    scatter_add_exact,
    scatter_add_rows,
    scatter_rounds,
    segment_mean,
    segment_softmax,
    segment_sum,
    type_sort,
    typed_linear,
)


def _gelu_array(x: np.ndarray) -> np.ndarray:
    """tanh-approximation GELU on a raw array (mirrors ``Tensor.gelu``)."""
    c = x.dtype.type(np.sqrt(2.0 / np.pi))
    x_sq = x * x
    inner = x_sq * x
    inner *= 0.044715
    inner += x
    inner *= c
    t = np.tanh(inner)
    out = 1.0 + t
    out *= x
    out *= 0.5
    return out


class TypedLinear(Module):
    """Per-node-type affine projection.

    ``forward(x, type_ids)`` applies ``x_i @ W[type_ids[i]] + b[type_ids[i]]``
    for every row.  Implementation groups rows by type and runs one
    dense matmul per *present* type, then un-permutes — this avoids
    materialising an ``(N, D, D')`` gathered weight tensor, which
    profiling showed dominated training time.
    """

    def __init__(self, num_types: int, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / (in_dim + out_dim))
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(num_types, in_dim, out_dim))
            .astype(np.float32)
        )
        self.bias = Parameter(np.zeros((num_types, out_dim), dtype=np.float32))

    def forward(self, x: Tensor, type_ids: np.ndarray,
                sort: tuple | None = None,
                out_shape: tuple[int, ...] | None = None) -> Tensor:
        if sort is None:
            sort = _type_sort(np.asarray(type_ids, dtype=np.int64))
        if not is_grad_enabled() or fast_math_enabled():
            # One fused tape node (or, under no_grad, no tape at all):
            # gather rows into type order once, one contiguous matmul
            # per present type, un-permute once.  Values and gradients
            # are bit-identical to the composed path below.
            return typed_linear(x, self.weight, self.bias, type_ids,
                                sort=sort, out_shape=out_shape)
        order, sorted_types, group_starts, group_ends = sort
        pieces = []
        for start, end in zip(group_starts, group_ends):
            t = int(sorted_types[start])
            rows = order[start:end]
            pieces.append(x[rows] @ self.weight[t] + self.bias[t])
        out_sorted = concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        out = out_sorted[inverse]
        return out if out_shape is None else out.reshape(*out_shape)


#: structural grouping for TypedLinear (moved to the tensor layer with
#: the fused kernel; re-exported here for its historical callers)
_type_sort = type_sort


def _edge_struct(batch: GraphBatch) -> tuple:
    """Batch-cached edge structure shared by the fused training path
    and the no-grad inference path: per-relation spans into the
    concatenated edge list, the concatenated endpoints, and the
    stable destination sort ``(order, starts, uniq)`` that segment
    max/softmax reductions run over."""
    caches = batch.struct_cache
    struct = caches.get("edge_struct")
    if struct is not None:
        return struct
    spans: list[tuple[int, int, int]] = []
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    offset = 0
    for rel_idx, rel in enumerate(RELATIONS):
        edge_index = batch.edges[rel]
        n_e = edge_index.shape[1]
        if n_e == 0:
            continue
        spans.append((rel_idx, offset, offset + n_e))
        src_parts.append(edge_index[0])
        dst_parts.append(edge_index[1])
        offset += n_e
    if spans:
        all_src = np.concatenate(src_parts)
        all_dst = np.concatenate(dst_parts)
        order = np.argsort(all_dst, kind="stable")
        sorted_dst = all_dst[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_dst)) + 1))
        dst_sort = (order, starts, sorted_dst[starts])
    else:
        all_src = all_dst = dst_sort = None
    struct = caches["edge_struct"] = (spans, all_src, all_dst, dst_sort)
    return struct


def _edge_rounds(cache: dict, rel_idx: int, side: str, idx: np.ndarray):
    """Batch-cached :func:`scatter_rounds` for one relation's endpoint
    array (``side`` is ``"src"``/``"dst"``).  The decomposition is pure
    structure, so one batch computes it once for all layers and epochs."""
    key = ("rounds", rel_idx, side)
    rounds = cache.get(key)
    if rounds is None:
        # cache the "no decomposition wins" verdict as False so deep
        # duplicate chains skip straight to np.add.at from the first
        # use on instead of re-deriving the decomposition each backward
        computed = scatter_rounds(idx)
        rounds = cache[key] = False if computed is None else computed
    return rounds


def _rel_attention(k: Tensor, q: Tensor, w_att: Tensor, rel_prior: Tensor,
                   rel_idx: int, src: np.ndarray, dst: np.ndarray,
                   scale: float, cache: dict) -> Tensor:
    """One relation's edge-attention logits as a single tape node.

    Fuses the composed ``gather → swap → bilinear → sum → prior/scale``
    chain (eq. 2) — eight tape nodes, two of which scatter into
    full-size zero arrays of ``W_ATT``/μ just to route a slot gradient.
    Forward and backward replay the chain's expressions in its order,
    so values and gradients are bit-identical; per-relation edge
    scatters stay separate calls, preserving the composed path's
    gradient accumulation order into K/Q.
    """
    from repro.nn.tensor import _as_array

    kd, qd = k.data, q.data
    k_t = kd[src].swapaxes(0, 1)                    # (h, E, dk)
    q_t = qd[dst].swapaxes(0, 1)
    wa = w_att.data[rel_idx]
    kw = k_t @ wa
    prod = kw * q_t
    prod_shape = prod.shape        # the closure needs only the shape
    att0 = prod.sum(axis=-1).swapaxes(0, 1)         # (E, h)
    prior = rel_prior.data[rel_idx: rel_idx + 1]    # (1, h)
    scale_arr = _as_array(scale)
    att1 = att0 * prior
    out = att1 * scale_arr

    def backward(g: np.ndarray) -> None:
        g1 = g * scale_arr
        g0 = g1 * prior
        if rel_prior.requires_grad:
            gp = np.zeros_like(rel_prior.data)
            gp[rel_idx] = (g1 * att0).sum(axis=0)
            rel_prior._accumulate_owned(gp)
        gprod = np.broadcast_to(np.expand_dims(g0.swapaxes(0, 1), -1),
                                prod_shape)
        gkw = gprod * q_t
        if w_att.requires_grad:
            gw = np.zeros_like(w_att.data)
            gw[rel_idx] = np.swapaxes(k_t, -1, -2) @ gkw
            w_att._accumulate_owned(gw)
        if k.requires_grad:
            gk = np.zeros_like(kd)
            scatter_add_exact(gk, src,
                              (gkw @ np.swapaxes(wa, -1, -2)).swapaxes(0, 1),
                              rounds=_edge_rounds(cache, rel_idx, "src", src))
            k._accumulate_owned(gk)
        if q.requires_grad:
            gq = np.zeros_like(qd)
            scatter_add_exact(gq, dst, (gprod * kw).swapaxes(0, 1),
                              rounds=_edge_rounds(cache, rel_idx, "dst", dst))
            q._accumulate_owned(gq)

    return k._make(out, (k, q, w_att, rel_prior), backward)


def _attention_aggregate(logits_parts: list[Tensor], msg_parts: list[Tensor],
                         spans: list[tuple[int, int]], all_dst: np.ndarray,
                         dst_sort: tuple, num_nodes: int) -> Tensor:
    """Eq. 2's softmax over in-neighbourhoods + eq. 4's weighted message
    sum as one tape node.

    Replays the composed ``concat → segment_softmax → mul →
    segment_sum`` chain expression-for-expression — including the same
    ``scatter_add_rows`` accumulator — so values and gradients are
    bit-identical.  The per-segment max uses the batch-cached
    destination sort via ``maximum.reduceat`` (max is exact, so the
    sorted reduction matches ``maximum.at`` bit-for-bit).  Parents are
    ordered msg-parts-first to reproduce the composed graph's traversal
    order, which fixes the order K/Q/V gradients reach the layer input.
    """
    z = np.concatenate([t.data for t in logits_parts])      # (E, h)
    msgs = np.concatenate([t.data for t in msg_parts])      # (E, h, dk)
    z_dtype = z.dtype              # the closure needs only the dtype
    e, h = z.shape
    dk = msgs.shape[-1]
    seg_shape = (num_nodes, h)
    order, starts, uniq = dst_sort
    seg_max = np.full(seg_shape, -np.inf, dtype=z.dtype)
    seg_max[uniq] = np.maximum.reduceat(z[order], starts, axis=0)
    exp = np.exp(z - seg_max[all_dst])
    denom = np.zeros(seg_shape, dtype=z.dtype)
    scatter_add_rows(denom, all_dst, exp)
    p = (exp / np.maximum(denom[all_dst], 1e-12)).astype(z.dtype, copy=False)
    p3 = p.reshape(e, h, 1)
    weighted = msgs * p3
    agg = np.zeros((num_nodes, h * dk), dtype=weighted.dtype)
    scatter_add_rows(agg, all_dst, weighted.reshape(e, h * dk))

    def backward(g: np.ndarray) -> None:
        gw = g[all_dst].reshape(e, h, dk)
        g_msgs = gw * p3
        g_attn = (gw * msgs).sum(axis=2, keepdims=True).reshape(e, h)
        pg = p * g_attn
        seg_pg = np.zeros(seg_shape, dtype=z_dtype)
        scatter_add_rows(seg_pg, all_dst, pg)
        g_logits = pg - p * seg_pg[all_dst]
        for t, (lo, hi) in zip(msg_parts, spans):
            t._accumulate(g_msgs[lo:hi])
        for t, (lo, hi) in zip(logits_parts, spans):
            t._accumulate(g_logits[lo:hi])

    out = Tensor(agg)
    if is_grad_enabled() and any(
        t.requires_grad for t in msg_parts + logits_parts
    ):
        out.requires_grad = True
        out._parents = tuple(t for t in msg_parts + logits_parts
                             if t.requires_grad)
        out._backward = backward
    return out


def _rel_message(v: Tensor, w_msg: Tensor, rel_idx: int,
                 src: np.ndarray, cache: dict) -> Tensor:
    """One relation's per-head messages (eq. 3) as a single tape node.

    Same contract as :func:`_rel_attention`: fuses the
    ``gather → swap → matmul → swap`` chain with bit-identical values
    and gradients.
    """
    vd = v.data
    v_t = vd[src].swapaxes(0, 1)                    # (h, E, dk)
    wm = w_msg.data[rel_idx]
    out = (v_t @ wm).swapaxes(0, 1)                 # (E, h, dk)

    def backward(g: np.ndarray) -> None:
        gmm = g.swapaxes(0, 1)
        if w_msg.requires_grad:
            gw = np.zeros_like(w_msg.data)
            gw[rel_idx] = np.swapaxes(v_t, -1, -2) @ gmm
            w_msg._accumulate_owned(gw)
        if v.requires_grad:
            gv = np.zeros_like(vd)
            scatter_add_exact(gv, src,
                              (gmm @ np.swapaxes(wm, -1, -2)).swapaxes(0, 1),
                              rounds=_edge_rounds(cache, rel_idx, "src", src))
            v._accumulate_owned(gv)

    return v._make(out, (v, w_msg), backward)


class HGTLayer(Module):
    """One HGT layer over a :class:`GraphBatch`."""

    def __init__(self, num_types: int, dim: int, heads: int,
                 dropout: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.d_head = dim // heads
        self.k_linear = TypedLinear(num_types, dim, dim, rng=rng)
        self.q_linear = TypedLinear(num_types, dim, dim, rng=rng)
        self.v_linear = TypedLinear(num_types, dim, dim, rng=rng)
        self.a_linear = TypedLinear(num_types, dim, dim, rng=rng)
        scale = 1.0 / np.sqrt(self.d_head)
        num_rel = len(RELATIONS)
        # W_ATT / W_MSG: one (heads, d_head, d_head) stack per relation.
        self.w_att = Parameter(
            (np.stack([np.eye(self.d_head)] * heads)[None]
             .repeat(num_rel, axis=0)
             + rng.normal(0, 0.02, size=(num_rel, heads, self.d_head, self.d_head))
             ).astype(np.float32)
        )
        self.w_msg = Parameter(
            (np.stack([np.eye(self.d_head)] * heads)[None]
             .repeat(num_rel, axis=0)
             + rng.normal(0, 0.02, size=(num_rel, heads, self.d_head, self.d_head))
             ).astype(np.float32)
        )
        #: relation prior μ_r per head
        self.rel_prior = Parameter(np.ones((num_rel, heads), dtype=np.float32))
        self.att_scale = scale
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(x, batch)
        n, d = x.shape
        h, dk = self.heads, self.d_head
        sort = None
        if fast_math_enabled():
            # structural work is identical across layers, models, and
            # epochs over one collated batch — memoise it there
            sort = batch.struct_cache.get("type_sort")
            if sort is None:
                sort = batch.struct_cache["type_sort"] = type_sort(
                    np.asarray(batch.type_ids, dtype=np.int64))
        if sort is not None:       # fast path: reshape fused into the node
            k = self.k_linear(x, batch.type_ids, sort=sort,
                              out_shape=(n, h, dk))
            q = self.q_linear(x, batch.type_ids, sort=sort,
                              out_shape=(n, h, dk))
            v = self.v_linear(x, batch.type_ids, sort=sort,
                              out_shape=(n, h, dk))
        else:
            k = self.k_linear(x, batch.type_ids).reshape(n, h, dk)
            q = self.q_linear(x, batch.type_ids).reshape(n, h, dk)
            v = self.v_linear(x, batch.type_ids).reshape(n, h, dk)

        if fast_math_enabled():
            agg = self._fused_attention(k, q, v, batch, n)
            if agg is None:
                return x
        else:
            logits_parts: list[Tensor] = []
            msg_parts: list[Tensor] = []
            dst_parts: list[np.ndarray] = []
            for rel_idx, rel in enumerate(RELATIONS):
                edge_index = batch.edges[rel]
                if edge_index.size == 0:
                    continue
                src, dst = edge_index[0], edge_index[1]
                k_e = k[src]                              # (E, h, dk)
                q_e = q[dst]
                v_e = v[src]
                w_att = self.w_att[rel_idx]               # (h, dk, dk)
                w_msg = self.w_msg[rel_idx]
                # per-head bilinear attention: (h, E, dk) @ (h, dk, dk)
                k_t = k_e.swapaxes(0, 1)                  # (h, E, dk)
                q_t = q_e.swapaxes(0, 1)
                att = ((k_t @ w_att) * q_t).sum(axis=-1)  # (h, E)
                att = att.swapaxes(0, 1)                  # (E, h)
                prior = self.rel_prior[np.array([rel_idx])]   # (1, h)
                att = att * prior * self.att_scale
                msg = (v_e.swapaxes(0, 1) @ w_msg).swapaxes(0, 1)
                logits_parts.append(att)
                msg_parts.append(msg)
                dst_parts.append(dst)

            if not logits_parts:
                return x

            all_logits = concat(logits_parts, axis=0)      # (E_tot, h)
            all_msgs = concat(msg_parts, axis=0)           # (E_tot, h, dk)
            all_dst = np.concatenate(dst_parts)

            # Softmax over each target's full in-neighbourhood (eq. 2).
            attn = segment_softmax(all_logits, all_dst, n)  # (E_tot, h)
            weighted = all_msgs * attn.reshape(-1, h, 1)
            agg = segment_sum(weighted.reshape(-1, d), all_dst, n)

        # Target-specific aggregation (eq. 5): A-Linear(gelu(agg)) + residual.
        out = self.a_linear(self.dropout(agg.gelu()), batch.type_ids,
                            sort=sort)
        return self.norm(out + x)

    def _fused_attention(self, k: Tensor, q: Tensor, v: Tensor,
                         batch: GraphBatch, n: int) -> Tensor | None:
        """Fused-kernel eq. 2–4: two tape nodes per relation plus one
        softmax-aggregate node, sharing the batch's cached edge
        structure.  Returns ``None`` for edgeless batches."""
        cache = batch.struct_cache
        spans, all_src, all_dst, dst_sort = _edge_struct(batch)
        if not spans:
            return None
        logits_parts = [
            _rel_attention(k, q, self.w_att, self.rel_prior, rel_idx,
                           all_src[lo:hi], all_dst[lo:hi],
                           self.att_scale, cache)
            for rel_idx, lo, hi in spans
        ]
        msg_parts = [
            _rel_message(v, self.w_msg, rel_idx, all_src[lo:hi], cache)
            for rel_idx, lo, hi in spans
        ]
        return _attention_aggregate(logits_parts, msg_parts,
                                    [(lo, hi) for _, lo, hi in spans],
                                    all_dst, dst_sort, n)

    def _forward_inference(self, x: Tensor, batch: GraphBatch) -> Tensor:
        """No-grad forward on raw arrays with batch-structure reuse.

        Mathematically the same layer; purely structural work (type
        sort, edge concatenation, destination sort) is memoised on the
        batch, so the second layer — and every further model that
        reuses a collated batch — skips it entirely.
        """
        n, d = x.shape
        h, dk = self.heads, self.d_head
        caches = batch.struct_cache
        sort = caches.get("type_sort")
        if sort is None:
            sort = caches["type_sort"] = _type_sort(
                np.asarray(batch.type_ids, dtype=np.int64))
        k = self.k_linear(x, batch.type_ids, sort=sort).data.reshape(n, h, dk)
        q = self.q_linear(x, batch.type_ids, sort=sort).data.reshape(n, h, dk)
        v = self.v_linear(x, batch.type_ids, sort=sort).data.reshape(n, h, dk)

        spans, all_src, all_dst, dst_sort = _edge_struct(batch)
        if not spans:
            return x

        k_all = k[all_src]                                # (E, h, dk)
        q_all = q[all_dst]
        v_all = v[all_src]
        w_att, w_msg = self.w_att.data, self.w_msg.data
        prior = self.rel_prior.data
        logits = np.empty((len(all_dst), h), dtype=k_all.dtype)
        msgs = np.empty((len(all_dst), h, dk), dtype=k_all.dtype)
        for rel_idx, lo, hi in spans:
            k_t = k_all[lo:hi].swapaxes(0, 1)             # (h, E_r, dk)
            q_t = q_all[lo:hi].swapaxes(0, 1)
            att = ((k_t @ w_att[rel_idx]) * q_t).sum(axis=-1)
            att = att.swapaxes(0, 1)
            att = att * prior[rel_idx] * self.att_scale
            logits[lo:hi] = att
            msgs[lo:hi] = (v_all[lo:hi].swapaxes(0, 1)
                           @ w_msg[rel_idx]).swapaxes(0, 1)

        # Softmax over each target's in-neighbourhood with cached sort.
        order, starts, uniq = dst_sort
        seg_max = np.full((n, h), -np.inf, dtype=logits.dtype)
        seg_max[uniq] = np.maximum.reduceat(logits[order], starts, axis=0)
        exp = np.exp(logits - seg_max[all_dst])
        denom = np.zeros((n, h), dtype=logits.dtype)
        scatter_add_rows(denom, all_dst, exp)
        p = exp / np.maximum(denom[all_dst], 1e-12)
        weighted = msgs * p.reshape(-1, h, 1)
        agg = np.zeros((n, d), dtype=weighted.dtype)
        scatter_add_rows(agg, all_dst, weighted.reshape(-1, d))

        out = self.a_linear(Tensor(_gelu_array(agg)), batch.type_ids,
                            sort=sort)
        return self.norm(out + x)


@dataclass
class Graph2ParConfig:
    """Hyper-parameters for :class:`Graph2Par`."""

    dim: int = 64
    heads: int = 4
    layers: int = 2
    num_classes: int = 2
    dropout: float = 0.1
    readout: str = "mean"     # mean pooling over nodes per graph
    seed: int = 0


class Graph2Par(Module):
    """aug-AST → HGT → graph readout → classifier.

    The same class also serves the "HGT-AST" baseline (Table 2/3): feed it
    batches built from :func:`repro.graphs.build_vanilla_ast` instead of
    the aug-AST.
    """

    def __init__(self, vocab: GraphVocab, config: Graph2ParConfig | None = None) -> None:
        super().__init__()
        self.config = config or Graph2ParConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.vocab = vocab
        self.type_emb = Embedding(vocab.num_types, cfg.dim, rng=rng)
        self.text_emb = Embedding(vocab.num_texts, cfg.dim, rng=rng)
        self.pos_emb = Embedding(NODE_POSITIONS, cfg.dim, rng=rng)
        self.leaf_emb = Embedding(2, cfg.dim, rng=rng)
        self.input_norm = LayerNorm(cfg.dim)
        self.layers = [
            HGTLayer(vocab.num_types, cfg.dim, cfg.heads, cfg.dropout, rng=rng)
            for _ in range(cfg.layers)
        ]
        self.head = MLP([cfg.dim, cfg.dim, cfg.num_classes], dropout=cfg.dropout,
                        rng=rng)

    def node_embeddings(self, batch: GraphBatch) -> Tensor:
        if fast_math_enabled():
            x = embedding_sum(
                [self.type_emb.weight, self.text_emb.weight,
                 self.pos_emb.weight, self.leaf_emb.weight],
                [np.asarray(batch.type_ids, dtype=np.int64),
                 np.asarray(batch.text_ids, dtype=np.int64),
                 np.asarray(batch.position_ids, dtype=np.int64),
                 batch.is_leaf.astype(np.int64)],
            )
        else:
            x = (
                self.type_emb(batch.type_ids)
                + self.text_emb(batch.text_ids)
                + self.pos_emb(batch.position_ids)
                + self.leaf_emb(batch.is_leaf.astype(np.int64))
            )
        return self.input_norm(x)

    def encode(self, batch: GraphBatch) -> Tensor:
        """Per-graph embeddings ``(B, dim)``."""
        x = self.node_embeddings(batch)
        for layer in self.layers:
            x = layer(x, batch)
        return segment_mean(x, batch.graph_ids, batch.num_graphs)

    def forward(self, batch: GraphBatch) -> Tensor:
        """Class logits ``(B, num_classes)``."""
        return self.head(self.encode(batch))
