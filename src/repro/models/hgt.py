"""Graph2Par: a Heterogeneous Graph Transformer over aug-AST graphs.

Implements the three HGT mechanisms of Hu et al. 2020 exactly as paper
section 5.2 uses them:

- **Heterogeneous mutual attention** (eq. 2): per-head dot-product
  attention between each edge's source (Key) and target (Query), mediated
  by an edge-type matrix ``W_ATT^r`` and a relation prior μ_r, normalised
  with a softmax over each target's full in-neighbourhood N(t).
- **Heterogeneous message passing** (eq. 3): per-head messages
  ``V(s) · W_MSG^r``.
- **Target-specific aggregation** (eq. 4/5): attention-weighted message
  sum followed by a node-type-specific output projection (``A-Linear``),
  a GELU, and the residual connection.

Per the paper, the temporal machinery of the original HGT (relative
temporal encoding, inductive timestamp assignment) is disabled: the
aug-AST is static.

Node-type-specific projections are realised by :class:`TypedLinear`,
which stores one weight matrix per node type as a single ``(A, D, D')``
tensor and uses a gather + batched matmul — one BLAS call instead of a
Python loop over types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.encode import GraphBatch
from repro.graphs.hetgraph import NODE_POSITIONS, RELATIONS
from repro.graphs.vocab import GraphVocab
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    MLP,
    Module,
    Parameter,
)
from repro.nn.tensor import (
    Tensor,
    concat,
    is_grad_enabled,
    scatter_add_rows,
    segment_mean,
    segment_softmax,
    segment_sum,
)


def _gelu_array(x: np.ndarray) -> np.ndarray:
    """tanh-approximation GELU on a raw array (mirrors ``Tensor.gelu``)."""
    c = x.dtype.type(np.sqrt(2.0 / np.pi))
    x_sq = x * x
    inner = x_sq * x
    inner *= 0.044715
    inner += x
    inner *= c
    t = np.tanh(inner)
    out = 1.0 + t
    out *= x
    out *= 0.5
    return out


class TypedLinear(Module):
    """Per-node-type affine projection.

    ``forward(x, type_ids)`` applies ``x_i @ W[type_ids[i]] + b[type_ids[i]]``
    for every row.  Implementation groups rows by type and runs one
    dense matmul per *present* type, then un-permutes — this avoids
    materialising an ``(N, D, D')`` gathered weight tensor, which
    profiling showed dominated training time.
    """

    def __init__(self, num_types: int, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / (in_dim + out_dim))
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(num_types, in_dim, out_dim))
            .astype(np.float32)
        )
        self.bias = Parameter(np.zeros((num_types, out_dim), dtype=np.float32))

    def forward(self, x: Tensor, type_ids: np.ndarray,
                sort: tuple | None = None) -> Tensor:
        if sort is None:
            sort = _type_sort(np.asarray(type_ids, dtype=np.int64))
        order, sorted_types, group_starts, group_ends = sort
        if not is_grad_enabled():
            # Inference: gather rows into type order once, run one
            # contiguous matmul per present type, un-permute once — no
            # autograd shells, no per-group fancy indexing.  Values are
            # identical to the tape path.
            xd = x.data
            weight, bias = self.weight.data, self.bias.data
            xs = xd[order]
            out_sorted = np.empty((xd.shape[0], weight.shape[2]),
                                  dtype=xd.dtype)
            for start, end in zip(group_starts, group_ends):
                t = int(sorted_types[start])
                out_sorted[start:end] = xs[start:end] @ weight[t] + bias[t]
            out = np.empty_like(out_sorted)
            out[order] = out_sorted
            return Tensor(out)
        pieces = []
        for start, end in zip(group_starts, group_ends):
            t = int(sorted_types[start])
            rows = order[start:end]
            pieces.append(x[rows] @ self.weight[t] + self.bias[t])
        out_sorted = concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        return out_sorted[inverse]


def _type_sort(type_ids: np.ndarray) -> tuple:
    """(order, sorted_types, group_starts, group_ends) for a type array."""
    order = np.argsort(type_ids, kind="stable")
    sorted_types = type_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_types)) + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [len(sorted_types)]))
    return order, sorted_types, group_starts, group_ends


class HGTLayer(Module):
    """One HGT layer over a :class:`GraphBatch`."""

    def __init__(self, num_types: int, dim: int, heads: int,
                 dropout: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.d_head = dim // heads
        self.k_linear = TypedLinear(num_types, dim, dim, rng=rng)
        self.q_linear = TypedLinear(num_types, dim, dim, rng=rng)
        self.v_linear = TypedLinear(num_types, dim, dim, rng=rng)
        self.a_linear = TypedLinear(num_types, dim, dim, rng=rng)
        scale = 1.0 / np.sqrt(self.d_head)
        num_rel = len(RELATIONS)
        # W_ATT / W_MSG: one (heads, d_head, d_head) stack per relation.
        self.w_att = Parameter(
            (np.stack([np.eye(self.d_head)] * heads)[None]
             .repeat(num_rel, axis=0)
             + rng.normal(0, 0.02, size=(num_rel, heads, self.d_head, self.d_head))
             ).astype(np.float32)
        )
        self.w_msg = Parameter(
            (np.stack([np.eye(self.d_head)] * heads)[None]
             .repeat(num_rel, axis=0)
             + rng.normal(0, 0.02, size=(num_rel, heads, self.d_head, self.d_head))
             ).astype(np.float32)
        )
        #: relation prior μ_r per head
        self.rel_prior = Parameter(np.ones((num_rel, heads), dtype=np.float32))
        self.att_scale = scale
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(x, batch)
        n, d = x.shape
        h, dk = self.heads, self.d_head
        k = self.k_linear(x, batch.type_ids).reshape(n, h, dk)
        q = self.q_linear(x, batch.type_ids).reshape(n, h, dk)
        v = self.v_linear(x, batch.type_ids).reshape(n, h, dk)

        logits_parts: list[Tensor] = []
        msg_parts: list[Tensor] = []
        dst_parts: list[np.ndarray] = []
        for rel_idx, rel in enumerate(RELATIONS):
            edge_index = batch.edges[rel]
            if edge_index.size == 0:
                continue
            src, dst = edge_index[0], edge_index[1]
            k_e = k[src]                                  # (E, h, dk)
            q_e = q[dst]
            v_e = v[src]
            w_att = self.w_att[rel_idx]                   # (h, dk, dk)
            w_msg = self.w_msg[rel_idx]
            # per-head bilinear attention: (h, E, dk) @ (h, dk, dk) -> dot Q
            k_t = k_e.swapaxes(0, 1)                      # (h, E, dk)
            q_t = q_e.swapaxes(0, 1)
            att = ((k_t @ w_att) * q_t).sum(axis=-1)      # (h, E)
            att = att.swapaxes(0, 1)                      # (E, h)
            prior = self.rel_prior[np.array([rel_idx])]   # (1, h)
            att = att * prior * self.att_scale
            msg = (v_e.swapaxes(0, 1) @ w_msg).swapaxes(0, 1)  # (E, h, dk)
            logits_parts.append(att)
            msg_parts.append(msg)
            dst_parts.append(dst)

        if not logits_parts:
            return x

        all_logits = concat(logits_parts, axis=0)          # (E_tot, h)
        all_msgs = concat(msg_parts, axis=0)               # (E_tot, h, dk)
        all_dst = np.concatenate(dst_parts)

        # Softmax over each target's full in-neighbourhood (eq. 2).
        attn = segment_softmax(all_logits, all_dst, n)     # (E_tot, h)
        weighted = all_msgs * attn.reshape(-1, h, 1)
        agg = segment_sum(weighted.reshape(-1, d), all_dst, n)  # (N, D)

        # Target-specific aggregation (eq. 5): A-Linear(gelu(agg)) + residual.
        out = self.a_linear(self.dropout(agg.gelu()), batch.type_ids)
        return self.norm(out + x)

    def _forward_inference(self, x: Tensor, batch: GraphBatch) -> Tensor:
        """No-grad forward on raw arrays with batch-structure reuse.

        Mathematically the same layer; purely structural work (type
        sort, edge concatenation, destination sort) is memoised on the
        batch, so the second layer — and every further model that
        reuses a collated batch — skips it entirely.
        """
        n, d = x.shape
        h, dk = self.heads, self.d_head
        caches = batch.struct_cache
        sort = caches.get("type_sort")
        if sort is None:
            sort = caches["type_sort"] = _type_sort(
                np.asarray(batch.type_ids, dtype=np.int64))
        k = self.k_linear(x, batch.type_ids, sort=sort).data.reshape(n, h, dk)
        q = self.q_linear(x, batch.type_ids, sort=sort).data.reshape(n, h, dk)
        v = self.v_linear(x, batch.type_ids, sort=sort).data.reshape(n, h, dk)

        struct = caches.get("edge_struct")
        if struct is None:
            spans: list[tuple[int, int, int]] = []
            src_parts: list[np.ndarray] = []
            dst_parts: list[np.ndarray] = []
            offset = 0
            for rel_idx, rel in enumerate(RELATIONS):
                edge_index = batch.edges[rel]
                n_e = edge_index.shape[1]
                if n_e == 0:
                    continue
                spans.append((rel_idx, offset, offset + n_e))
                src_parts.append(edge_index[0])
                dst_parts.append(edge_index[1])
                offset += n_e
            if spans:
                all_src = np.concatenate(src_parts)
                all_dst = np.concatenate(dst_parts)
                order = np.argsort(all_dst, kind="stable")
                sorted_dst = all_dst[order]
                starts = np.concatenate(
                    ([0], np.flatnonzero(np.diff(sorted_dst)) + 1))
                dst_sort = (order, starts, sorted_dst[starts])
            else:
                all_src = all_dst = dst_sort = None
            struct = caches["edge_struct"] = (spans, all_src, all_dst,
                                              dst_sort)
        spans, all_src, all_dst, dst_sort = struct
        if not spans:
            return x

        k_all = k[all_src]                                # (E, h, dk)
        q_all = q[all_dst]
        v_all = v[all_src]
        w_att, w_msg = self.w_att.data, self.w_msg.data
        prior = self.rel_prior.data
        logits = np.empty((len(all_dst), h), dtype=k_all.dtype)
        msgs = np.empty((len(all_dst), h, dk), dtype=k_all.dtype)
        for rel_idx, lo, hi in spans:
            k_t = k_all[lo:hi].swapaxes(0, 1)             # (h, E_r, dk)
            q_t = q_all[lo:hi].swapaxes(0, 1)
            att = ((k_t @ w_att[rel_idx]) * q_t).sum(axis=-1)
            att = att.swapaxes(0, 1)
            att = att * prior[rel_idx] * self.att_scale
            logits[lo:hi] = att
            msgs[lo:hi] = (v_all[lo:hi].swapaxes(0, 1)
                           @ w_msg[rel_idx]).swapaxes(0, 1)

        # Softmax over each target's in-neighbourhood with cached sort.
        order, starts, uniq = dst_sort
        seg_max = np.full((n, h), -np.inf, dtype=logits.dtype)
        seg_max[uniq] = np.maximum.reduceat(logits[order], starts, axis=0)
        exp = np.exp(logits - seg_max[all_dst])
        denom = np.zeros((n, h), dtype=logits.dtype)
        scatter_add_rows(denom, all_dst, exp)
        p = exp / np.maximum(denom[all_dst], 1e-12)
        weighted = msgs * p.reshape(-1, h, 1)
        agg = np.zeros((n, d), dtype=weighted.dtype)
        scatter_add_rows(agg, all_dst, weighted.reshape(-1, d))

        out = self.a_linear(Tensor(_gelu_array(agg)), batch.type_ids,
                            sort=sort)
        return self.norm(out + x)


@dataclass
class Graph2ParConfig:
    """Hyper-parameters for :class:`Graph2Par`."""

    dim: int = 64
    heads: int = 4
    layers: int = 2
    num_classes: int = 2
    dropout: float = 0.1
    readout: str = "mean"     # mean pooling over nodes per graph
    seed: int = 0


class Graph2Par(Module):
    """aug-AST → HGT → graph readout → classifier.

    The same class also serves the "HGT-AST" baseline (Table 2/3): feed it
    batches built from :func:`repro.graphs.build_vanilla_ast` instead of
    the aug-AST.
    """

    def __init__(self, vocab: GraphVocab, config: Graph2ParConfig | None = None) -> None:
        super().__init__()
        self.config = config or Graph2ParConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.vocab = vocab
        self.type_emb = Embedding(vocab.num_types, cfg.dim, rng=rng)
        self.text_emb = Embedding(vocab.num_texts, cfg.dim, rng=rng)
        self.pos_emb = Embedding(NODE_POSITIONS, cfg.dim, rng=rng)
        self.leaf_emb = Embedding(2, cfg.dim, rng=rng)
        self.input_norm = LayerNorm(cfg.dim)
        self.layers = [
            HGTLayer(vocab.num_types, cfg.dim, cfg.heads, cfg.dropout, rng=rng)
            for _ in range(cfg.layers)
        ]
        self.head = MLP([cfg.dim, cfg.dim, cfg.num_classes], dropout=cfg.dropout,
                        rng=rng)

    def node_embeddings(self, batch: GraphBatch) -> Tensor:
        x = (
            self.type_emb(batch.type_ids)
            + self.text_emb(batch.text_ids)
            + self.pos_emb(batch.position_ids)
            + self.leaf_emb(batch.is_leaf.astype(np.int64))
        )
        return self.input_norm(x)

    def encode(self, batch: GraphBatch) -> Tensor:
        """Per-graph embeddings ``(B, dim)``."""
        x = self.node_embeddings(batch)
        for layer in self.layers:
            x = layer(x, batch)
        return segment_mean(x, batch.graph_ids, batch.num_graphs)

    def forward(self, batch: GraphBatch) -> Tensor:
        """Class logits ``(B, num_classes)``."""
        return self.head(self.encode(batch))
