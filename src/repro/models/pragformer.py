"""PragFormer baseline: token-based transformer for pragma prediction.

Re-implementation of the comparison point of Harel et al. 2022 as the
paper uses it (Table 2): the loop's *token sequence* feeds a transformer
encoder and a classification head — no structural information at all.
Identifiers are alpha-renamed exactly like the aug-AST featurizer so the
two representations differ only in structure, not in vocabulary handling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfront.lexer import Lexer
from repro.cfront.tokens import TokenKind
from repro.graphs.vocab import Vocab
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
)
from repro.nn.tensor import Tensor, softmax

#: Sentinel tokens.
CLS, PAD = "<cls>", "<pad>"


def tokenize_loop(source: str, max_len: int = 128) -> list[str]:
    """Loop source → normalised token strings (identifiers alpha-renamed).

    Function names (identifiers directly followed by ``(``) rename into
    the ``f<k>`` namespace, everything else into ``v<k>``; literals are
    replaced by kind tags.  Mirrors the aug-AST normalisation.
    """
    toks = [
        t for t in Lexer(source).lex().tokens
        if t.kind not in (TokenKind.EOF, TokenKind.PRAGMA)
    ]
    names: dict[str, str] = {}
    funcs: dict[str, str] = {}
    out: list[str] = [CLS]
    for i, tok in enumerate(toks):
        if len(out) >= max_len:
            break
        if tok.kind is TokenKind.IDENT:
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if nxt is not None and nxt.kind is TokenKind.PUNCT and nxt.text == "(":
                if tok.text not in funcs:
                    funcs[tok.text] = f"f{len(funcs)}"
                out.append(funcs[tok.text])
            else:
                if tok.text not in names:
                    names[tok.text] = f"v{len(names)}"
                out.append(names[tok.text])
        elif tok.kind is TokenKind.INT_CONST:
            out.append("<int>" if len(tok.text) > 1 else tok.text)
        elif tok.kind is TokenKind.FLOAT_CONST:
            out.append("<float>")
        elif tok.kind is TokenKind.STRING:
            out.append("<str>")
        elif tok.kind is TokenKind.CHAR_CONST:
            out.append("<char>")
        else:
            out.append(tok.text)
    return out


def build_token_vocab(token_seqs: list[list[str]]) -> Vocab:
    vocab = Vocab()
    vocab.add(PAD)
    vocab.add(CLS)
    for seq in token_seqs:
        for tok in seq:
            vocab.add(tok)
    return vocab.freeze()


def encode_tokens(seqs: list[list[str]], vocab: Vocab,
                  max_len: int = 128) -> tuple[np.ndarray, np.ndarray]:
    """Pad/truncate to ``(B, L)`` id matrix + boolean padding mask."""
    batch = len(seqs)
    length = min(max(len(s) for s in seqs), max_len)
    ids = np.full((batch, length), vocab[PAD], dtype=np.int64)
    pad_mask = np.ones((batch, length), dtype=bool)
    for i, seq in enumerate(seqs):
        trimmed = seq[:length]
        ids[i, : len(trimmed)] = [vocab[t] for t in trimmed]
        pad_mask[i, : len(trimmed)] = False
    return ids, pad_mask


class MultiHeadSelfAttention(Module):
    def __init__(self, dim: int, heads: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.heads = heads
        self.d_head = dim // heads
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, pad_mask: np.ndarray) -> Tensor:
        b, l, d = x.shape
        h, dk = self.heads, self.d_head
        qkv = self.qkv(x)                                # (B, L, 3D)
        qkv = qkv.reshape(b, l, 3, h, dk)
        qkv = qkv.transpose(2, 0, 3, 1, 4)               # (3, B, h, L, dk)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(dk))  # (B,h,L,L)
        mask = pad_mask[:, None, None, :]                # (B,1,1,L)
        scores = scores.masked_fill(np.broadcast_to(mask, scores.shape), -1e9)
        attn = softmax(scores, axis=-1)
        ctx = attn @ v                                   # (B,h,L,dk)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(b, l, d)
        return self.out(ctx)


class EncoderBlock(Module):
    """Pre-LN transformer encoder block."""

    def __init__(self, dim: int, heads: int, ffn_mult: int = 4,
                 dropout: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.ffn = MLP([dim, ffn_mult * dim, dim], dropout=dropout, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, pad_mask: np.ndarray) -> Tensor:
        x = x + self.dropout(self.attn(self.norm1(x), pad_mask))
        x = x + self.dropout(self.ffn(self.norm2(x)))
        return x


@dataclass
class PragFormerConfig:
    dim: int = 64
    heads: int = 4
    layers: int = 2
    num_classes: int = 2
    max_len: int = 128
    dropout: float = 0.1
    seed: int = 0


class TokenEncoder(Module):
    """Token ids → contextual embeddings → CLS vector."""

    def __init__(self, vocab_size: int, config: PragFormerConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.token_emb = Embedding(vocab_size, config.dim, rng=rng)
        self.pos_emb = Embedding(config.max_len, config.dim, rng=rng)
        self.blocks = [
            EncoderBlock(config.dim, config.heads, dropout=config.dropout, rng=rng)
            for _ in range(config.layers)
        ]
        self.final_norm = LayerNorm(config.dim)

    def forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> Tensor:
        b, l = ids.shape
        positions = np.broadcast_to(np.arange(l, dtype=np.int64), (b, l))
        x = self.token_emb(ids) + self.pos_emb(positions.copy())
        for block in self.blocks:
            x = block(x, pad_mask)
        x = self.final_norm(x)
        return x[:, 0, :]  # CLS pooling


class PragFormer(Module):
    """Token transformer classifier (the paper's token-representation SOTA)."""

    def __init__(self, vocab: Vocab, config: PragFormerConfig | None = None) -> None:
        super().__init__()
        self.config = config or PragFormerConfig()
        self.vocab = vocab
        self.encoder = TokenEncoder(len(vocab), self.config)
        rng = np.random.default_rng(self.config.seed + 1)
        self.head = MLP(
            [self.config.dim, self.config.dim, self.config.num_classes],
            dropout=self.config.dropout, rng=rng,
        )

    def forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> Tensor:
        return self.head(self.encoder(ids, pad_mask))

    def forward_sources(self, sources: list[str]) -> Tensor:
        """Convenience: raw loop sources → logits."""
        seqs = [tokenize_loop(s, self.config.max_len) for s in sources]
        ids, mask = encode_tokens(seqs, self.vocab, self.config.max_len)
        return self(ids, mask)
