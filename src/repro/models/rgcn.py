"""Relational GCN ablation: typed edges without typed nodes or attention.

Sits between the homogeneous GCN and the full HGT in the ablation
ladder:  R-GCN keeps one weight matrix per *edge type* (so AST / CFG /
lexical relations are distinguished) but drops node-type-specific
projections and attention.  Comparing GCN < R-GCN < HGT isolates how
much each ingredient of heterogeneity buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.encode import GraphBatch
from repro.graphs.hetgraph import NODE_POSITIONS, RELATIONS
from repro.graphs.vocab import GraphVocab
from repro.nn import Dropout, Embedding, LayerNorm, Linear, MLP, Module
from repro.nn.tensor import Tensor, segment_mean, segment_sum


@dataclass
class RGCNConfig:
    dim: int = 64
    layers: int = 2
    num_classes: int = 2
    dropout: float = 0.1
    seed: int = 0


class RGCNLayer(Module):
    """Per-relation mean aggregation: h' = W_self h + Σ_r mean_r(W_r h)."""

    def __init__(self, dim: int, dropout: float,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.lin_self = Linear(dim, dim, rng=rng)
        self.rel_lins = {rel.value: Linear(dim, dim, rng=rng)
                         for rel in RELATIONS}
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        n = x.shape[0]
        out = self.lin_self(x)
        for rel in RELATIONS:
            edge_index = batch.edges[rel]
            if not edge_index.size:
                continue
            src, dst = edge_index[0], edge_index[1]
            msgs = self.rel_lins[rel.value](x[src])
            agg = segment_sum(msgs, dst, n)
            deg = np.maximum(np.bincount(dst, minlength=n), 1.0) \
                .astype(x.data.dtype).reshape(-1, 1)
            out = out + agg * Tensor(1.0 / deg)
        return self.norm(self.dropout(out.gelu()) + x)


class RGCNBaseline(Module):
    """Edge-typed (but node-untyped, attention-free) graph model."""

    def __init__(self, vocab: GraphVocab, config: RGCNConfig | None = None) -> None:
        super().__init__()
        self.config = config or RGCNConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.type_emb = Embedding(vocab.num_types, cfg.dim, rng=rng)
        self.text_emb = Embedding(vocab.num_texts, cfg.dim, rng=rng)
        self.pos_emb = Embedding(NODE_POSITIONS, cfg.dim, rng=rng)
        self.input_norm = LayerNorm(cfg.dim)
        self.layers = [RGCNLayer(cfg.dim, cfg.dropout, rng=rng)
                       for _ in range(cfg.layers)]
        self.head = MLP([cfg.dim, cfg.dim, cfg.num_classes], rng=rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        x = self.input_norm(
            self.type_emb(batch.type_ids)
            + self.text_emb(batch.text_ids)
            + self.pos_emb(batch.position_ids)
        )
        for layer in self.layers:
            x = layer(x, batch)
        pooled = segment_mean(x, batch.graph_ids, batch.num_graphs)
        return self.head(pooled)
