"""Homogeneous GCN ablation.

Treats the aug-AST as an untyped graph (all relations collapsed, no
per-type parameters).  This quantifies how much the *heterogeneity* of
the representation — as opposed to its connectivity — contributes, an
ablation DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.encode import GraphBatch
from repro.graphs.hetgraph import NODE_POSITIONS, RELATIONS
from repro.graphs.vocab import GraphVocab
from repro.nn import Dropout, Embedding, LayerNorm, Linear, MLP, Module
from repro.nn.tensor import Tensor, segment_mean, segment_sum


@dataclass
class GCNConfig:
    dim: int = 64
    layers: int = 2
    num_classes: int = 2
    dropout: float = 0.1
    seed: int = 0


class GCNLayer(Module):
    """Mean-aggregation graph convolution with residual."""

    def __init__(self, dim: int, dropout: float,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.lin_self = Linear(dim, dim, rng=rng)
        self.lin_neigh = Linear(dim, dim, rng=rng)
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        n = x.shape[0]
        if edge_index.size:
            src, dst = edge_index[0], edge_index[1]
            msgs = x[src]
            agg = segment_sum(msgs, dst, n)
            deg = np.maximum(
                np.bincount(dst, minlength=n), 1.0
            ).astype(x.data.dtype).reshape(-1, 1)
            agg = agg * Tensor(1.0 / deg)
        else:
            agg = x * 0.0
        out = self.lin_self(x) + self.lin_neigh(agg)
        return self.norm(self.dropout(out.gelu()) + x)


class GCNBaseline(Module):
    """Untyped GCN over the same encoded graphs Graph2Par consumes."""

    def __init__(self, vocab: GraphVocab, config: GCNConfig | None = None) -> None:
        super().__init__()
        self.config = config or GCNConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.type_emb = Embedding(vocab.num_types, cfg.dim, rng=rng)
        self.text_emb = Embedding(vocab.num_texts, cfg.dim, rng=rng)
        self.pos_emb = Embedding(NODE_POSITIONS, cfg.dim, rng=rng)
        self.input_norm = LayerNorm(cfg.dim)
        self.layers = [GCNLayer(cfg.dim, cfg.dropout, rng=rng)
                       for _ in range(cfg.layers)]
        self.head = MLP([cfg.dim, cfg.dim, cfg.num_classes], rng=rng)

    @staticmethod
    def merged_edges(batch: GraphBatch) -> np.ndarray:
        parts = [batch.edges[rel] for rel in RELATIONS if batch.edges[rel].size]
        if not parts:
            return np.zeros((2, 0), dtype=np.int64)
        return np.concatenate(parts, axis=1)

    def forward(self, batch: GraphBatch) -> Tensor:
        x = self.input_norm(
            self.type_emb(batch.type_ids)
            + self.text_emb(batch.text_ids)
            + self.pos_emb(batch.position_ids)
        )
        edges = self.merged_edges(batch)
        for layer in self.layers:
            x = layer(x, edges)
        pooled = segment_mean(x, batch.graph_ids, batch.num_graphs)
        return self.head(pooled)
