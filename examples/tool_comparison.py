#!/usr/bin/env python
"""Motivation-section demo: where Pluto / autoPar / DiscoPoP fall short.

Runs the three simulated algorithm-based tools on the paper's motivating
listings (all genuinely parallel) plus a few sanity loops, printing the
verdict matrix — the reproduction of section 2's observations.
"""

from repro.cfront import parse_loop
from repro.eval.casestudy import LISTINGS
from repro.tools import make_tool

SANITY = {
    "simple do-all": "for (i = 0; i < n; i++) a[i] = b[i] * 2;",
    "plain reduction": "for (i = 0; i < n; i++) s += a[i];",
    "true dependence": "for (i = 1; i < n; i++) a[i] = a[i-1] + 1;",
}


def verdict_tag(result) -> str:
    if result.parallel:
        return "PARALLEL " + "+".join(sorted(result.patterns))
    tag = "unprocessable" if not result.processable else "not-parallel"
    return f"{tag} ({result.reason[:28]})"


def main() -> None:
    tools = {name: make_tool(name) for name in ("pluto", "autopar", "discopop")}
    cases = {**{k: v[0] for k, v in LISTINGS.items()}, **SANITY}
    width = max(len(k) for k in cases)
    print(f"{'loop'.ljust(width)} | verdicts")
    print("-" * (width + 60))
    for name, source in cases.items():
        loop = parse_loop(source)
        print(name.ljust(width))
        for tool_name, tool in tools.items():
            print(f"{''.ljust(width)} |  {tool_name:9s}: "
                  f"{verdict_tag(tool.analyze_loop(loop))}")
    print()
    print("All eight listings are parallel; the matrix shows each tool's")
    print("characteristic blind spots (reductions, calls, nests) that")
    print("motivate the learning-based approach.")


if __name__ == "__main__":
    main()
