/* Independent element-wise updates over two buffers. */
double in[1024], out[1024];
double c0, c1, c2;

void stencil(void) {
    int i;
    for (i = 1; i < 1023; i++)
        out[i] = c0 * in[i - 1] + c1 * in[i] + c2 * in[i + 1];
}

void scale(void) {
    int i;
    for (i = 0; i < 1024; i++)
        in[i] = in[i] * c1;
}
