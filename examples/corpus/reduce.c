/* Reductions and a serial dependence in one file. */
double a[2048];
double total;

void sum(void) {
    int i;
    for (i = 0; i < 2048; i++)
        total += a[i];
}

void prefix(void) {
    int i;
    for (i = 1; i < 2048; i++)
        a[i] = a[i] + a[i - 1];
}
