/* saxpy: the canonical embarrassingly-parallel loop. */
double x[4096], y[4096];
double alpha;

void saxpy(void) {
    int i;
    for (i = 0; i < 4096; i++)
        y[i] = alpha * x[i] + y[i];
}
