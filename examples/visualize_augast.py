#!/usr/bin/env python
"""Figure 3 reproduction: render the heterogeneous aug-AST of Listing 1.

Prints a GraphViz DOT document (pipe into ``dot -Tpng`` if available)
plus a textual breakdown of the three edge families: AST (black), CFG
(red) and lexical token edges (orange) — the same colour scheme the
paper's Figure 3 uses.
"""

from repro.cfront import parse_loop
from repro.graphs import EdgeType, build_aug_ast

LISTING1 = (
    "for (i = 0; i < 30000000; i++)\n"
    "    error = error + fabs(a[i] - a[i+1]);"
)


def main() -> None:
    loop = parse_loop(LISTING1)
    graph = build_aug_ast(loop)

    print("// Listing 1:")
    for line in LISTING1.splitlines():
        print(f"//   {line}")
    print("//")
    print(f"// {graph.num_nodes} heterogeneous nodes over "
          f"{len(graph.type_set())} types: {sorted(graph.type_set())}")
    for etype, label in [(EdgeType.AST, "AST tree edges (black)"),
                         (EdgeType.CFG, "control-flow edges (red)"),
                         (EdgeType.LEX, "lexical token edges (orange)")]:
        edges = graph.edges_of_type(etype)
        print(f"// {label}: {len(edges)}")
    print("//")
    print("// alpha-renamed leaf attributes "
          "(v0=i, v1=error, f0=fabs, v2=a — Figure 3's v1/v2/f1 scheme):")
    leaves = [
        (graph.node_texts[k], graph.node_types[k])
        for k in range(graph.num_nodes) if graph.node_is_leaf[k]
    ]
    print(f"//   {leaves}")
    print()
    print(graph.to_dot())


if __name__ == "__main__":
    main()
