#!/usr/bin/env python
"""End-to-end application: suggest complete OpenMP pragmas for a C file.

This is the deployment story of the paper (section 6.4) plus its stated
future work (section 8): Graph2Par predicts whether each loop
parallelises and which clause families apply; the dependence analysis
grounds the clauses in actual variables (reduction operator/variable,
private list, lastprivate via post-loop liveness); the developer gets a
ready-to-paste pragma.

The script trains the models on a generated OMP_Serial (small scale for
demo speed), then annotates a demo file.
"""

from repro.eval.config import ExperimentConfig
from repro.eval.context import ExperimentContext
from repro.suggest import PragmaSuggester

DEMO_FILE = """
double images[4096], scores[4096], weights[4096];
double thresh, last_score;

void analyze(int n) {
    int i;
    double local, total;
    for (i = 0; i < n; i++) {
        local = images[i] * weights[i];
        scores[i] = local + local * local;
    }
    for (i = 0; i < n; i++) {
        total += scores[i];
    }
    for (i = 1; i < n; i++) {
        scores[i] = scores[i-1] * 0.9 + scores[i];
    }
    last_score = local;
}
"""


def main() -> None:
    config = ExperimentConfig.fast()
    print(f"training suggestion models on OMP_Serial (scale={config.scale})...")
    ctx = ExperimentContext(config)
    suggester = PragmaSuggester(
        ctx.graph_model(representation="aug", task="parallel"),
        {
            clause: ctx.graph_model(representation="aug", task=clause)
            for clause in ("reduction", "private", "simd", "target")
        },
    )

    suggestions = suggester.suggest_file(DEMO_FILE)
    print(f"\nanalyzing {len(suggestions)} loops of the demo file:\n")
    for k, suggestion in enumerate(suggestions):
        print(f"--- loop {k} " + "-" * 48)
        print(suggestion.render())
        if suggestion.rationale:
            print(f"    [{suggestion.rationale}]")
        print()


if __name__ == "__main__":
    main()
