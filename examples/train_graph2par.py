#!/usr/bin/env python
"""Full training run: Graph2Par on a generated OMP_Serial.

Generates the dataset, trains with validation tracking, prints the
learning curve and the final test-set metrics, and saves the weights.

Usage: python examples/train_graph2par.py [scale] [epochs]
"""

import sys
import time

from repro.dataset import DatasetConfig, generate_omp_serial
from repro.models import Graph2Par, Graph2ParConfig
from repro.nn import save_state
from repro.train import GraphTrainer, TrainConfig, prepare_graph_data


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    t0 = time.time()
    dataset = generate_omp_serial(DatasetConfig(scale=scale, seed=7))
    train, test = dataset.train_test_split(test_fraction=0.2)
    print(f"OMP_Serial: {len(dataset)} loops "
          f"({len(dataset.parallel_loops())} parallel) "
          f"generated in {time.time() - t0:.1f}s")
    print(f"split: {len(train)} train / {len(test)} test (file-level)")

    train_data, vocab = prepare_graph_data(train, representation="aug")
    test_data, _ = prepare_graph_data(test, representation="aug", vocab=vocab)

    model = Graph2Par(vocab, Graph2ParConfig(dim=48, heads=4, layers=2))
    print(f"Graph2Par: {model.num_parameters():,} parameters, "
          f"{vocab.num_types} node types, {vocab.num_texts} text tokens")

    trainer = GraphTrainer(model, TrainConfig(epochs=epochs, verbose=False))
    t0 = time.time()
    history = trainer.fit(train_data, val_data=test_data)
    print(f"trained in {time.time() - t0:.1f}s")
    for record in history:
        acc = record.get("val_accuracy", float("nan"))
        print(f"  epoch {record['epoch']}: loss={record['loss']:.4f} "
              f"val_acc={acc:.3f}")

    metrics = trainer.evaluate(test_data)
    print(f"\ntest metrics: {metrics}")

    save_state(model, "graph2par.npz")
    print("weights saved to graph2par.npz")


if __name__ == "__main__":
    main()
