#!/usr/bin/env python
"""Quickstart: from a C loop to a parallelism prediction in ~40 lines.

Pipeline demonstrated:
1. parse a loop with the C frontend,
2. build its augmented heterogeneous AST (AST + CFG + lexical edges),
3. train a small Graph2Par (HGT) on a handful of labelled loops,
4. predict whether new loops are parallelizable.
"""

from repro.cfront import parse_loop
from repro.graphs import build_aug_ast, build_graph_vocab, collate, encode_graph
from repro.models import Graph2Par, Graph2ParConfig
from repro.nn import Adam, functional as F

TRAIN_LOOPS = [
    # (source, parallel?)
    ("for (i = 0; i < n; i++) a[i] = b[i] * 2;", 1),
    ("for (i = 0; i < n; i++) s += a[i];", 1),
    ("for (j = 0; j < m; j++) c[j] = c[j] + d[j];", 1),
    ("for (k = 0; k < 64; k++) out[k] = in_[k] > 0 ? in_[k] : 0;", 1),
    ("for (i = 1; i < n; i++) a[i] = a[i-1] + b[i];", 0),
    ("for (i = 2; i < n; i++) f[i] = f[i-1] + f[i-2];", 0),
    ("for (i = 0; i < n; i++) { s = s * a[i] + b[i]; c[i] = s; }", 0),
    ("for (j = 0; j < m; j++) a[j+1] = a[j] * 2;", 0),
]

TEST_LOOPS = [
    ("for (i = 0; i < 100; i++) y[i] = x[i] + x[i];", "parallel"),
    ("for (i = 1; i < 100; i++) y[i] = y[i-1] * 0.5;", "sequential"),
]


def main() -> None:
    # 1-2. Parse and build representations.
    graphs = [build_aug_ast(parse_loop(src)) for src, _ in TRAIN_LOOPS]
    first = graphs[0]
    print(f"aug-AST of loop 0: {first.num_nodes} nodes, "
          f"{first.num_edges} edges, types={sorted(first.type_set())[:5]}...")

    # 3. Encode and train.
    vocab = build_graph_vocab(graphs)
    data = [
        encode_graph(g, vocab, label=y)
        for g, (_, y) in zip(graphs, TRAIN_LOOPS)
    ]
    model = Graph2Par(vocab, Graph2ParConfig(dim=32, heads=4, layers=2,
                                             dropout=0.0))
    opt = Adam(model.parameters(), lr=3e-3)
    batch = collate(data)
    for step in range(60):
        opt.zero_grad()
        loss = F.cross_entropy(model(batch), batch.labels)
        loss.backward()
        opt.step()
    print(f"final train loss: {loss.item():.4f}")

    # 4. Predict on unseen loops.
    model.eval()
    for src, expected in TEST_LOOPS:
        graph = build_aug_ast(parse_loop(src))
        enc = encode_graph(graph, vocab)
        pred = F.predict_classes(model(collate([enc])))[0]
        verdict = "parallel" if pred == 1 else "sequential"
        print(f"{verdict:10s} (expected {expected:10s}) <- {src}")


if __name__ == "__main__":
    main()
