"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; ``python setup.py develop`` (or ``pip install -e .
--no-build-isolation``) works with plain setuptools through this shim.
"""

from setuptools import setup

setup()
