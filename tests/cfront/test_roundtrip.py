"""Round-trip property tests: parse → unparse → parse → unparse is a
fixed point, and unparsing never changes meaning.

Covers the real corpus under ``examples/corpus``, whole generated
programs from the synthetic-dataset grammar, and the token-fusion
regression the property test surfaced: a prefix unary operator must
not fuse with its operand's leading token (``-(-x)`` unparsed as
``--x`` re-lexes as a predecrement — a silent semantic change — and
``&(&x)`` as ``&&x`` does not re-parse at all).
"""

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse_loop, parse_source, parse_statements, unparse
from repro.dataset.recipes import RecipeGenerator

CORPUS = Path(__file__).resolve().parent.parent.parent / "examples" / "corpus"


def unparse_stmts(source):
    """Unparse a statement snippet without the synthetic block wrapper."""
    block = parse_statements(source)
    return "\n".join(unparse(s) for s in block.stmts)


def fixed_point_source(source):
    once = unparse(parse_source(source))
    twice = unparse(parse_source(once))
    assert once == twice
    return once


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.c")),
                         ids=lambda p: p.name)
def test_corpus_files_are_fixed_points(path):
    fixed_point_source(path.read_text())


@pytest.mark.parametrize("category",
                         ["reduction", "private", "simd", "parallel",
                          "target", None])
@pytest.mark.parametrize("seed", range(5))
def test_generated_loops_are_fixed_points(category, seed):
    recipe = RecipeGenerator(seed=seed).generate(category)
    once = unparse(parse_loop(recipe.body))
    twice = unparse(parse_loop(once))
    assert once == twice


@pytest.mark.parametrize("seed", range(5))
def test_generated_programs_are_fixed_points(seed):
    gen = RecipeGenerator(seed=seed)
    bodies = [gen.generate(c).body
              for c in ("reduction", "private", None)]
    decls = "double a[64], b[64], c[64];\nint n;\n"
    fns = "\n".join(
        f"void f{k}(void)\n{{\n{body}\n}}" for k, body in enumerate(bodies))
    fixed_point_source(decls + fns)


class TestUnaryTokenFusion:
    """Regression: prefix unary chains must keep their lexemes apart."""

    @pytest.mark.parametrize("expr,bad", [
        ("-(-x)", "--"),
        ("+(+x)", "++"),
        ("&(&x)", "&&"),
        ("-(--x)", "---"),
    ])
    def test_no_token_fusion(self, expr, bad):
        assert bad not in unparse_stmts(f"y = {expr};")

    def test_negate_negate_is_not_predecrement(self):
        out = unparse_stmts("y = -(-x);")
        stmt = parse_statements(out).stmts[0].expr
        # still an assignment of a unary-minus chain, not `--x`
        inner = stmt.rhs
        assert inner.op == "-" and not inner.is_incdec
        assert inner.operand.op == "-" and not inner.operand.is_incdec

    def test_address_of_address_reparses(self):
        out = unparse_stmts("p = &(&x);")
        assert unparse_stmts(out) == out

    def test_real_predecrement_untouched(self):
        assert "--x" in unparse_stmts("y = --x;")

    def test_unary_on_different_op_stays_fused(self):
        assert "-+x" in unparse_stmts("y = -(+x);")


_names = st.sampled_from(["x", "y", "n", "a"])
_unops = st.sampled_from(["-", "+", "!", "~", "&", "--", "++"])


def _unary_chains():
    return st.recursive(
        _names,
        lambda children: st.tuples(_unops, children).map(
            lambda t: f"{t[0]}({t[1]})"),
        max_leaves=6,
    )


@given(expr=_unary_chains())
@settings(max_examples=120, deadline=None)
def test_unary_chain_fixed_point(expr):
    """Any chain of prefix unary operators survives two round trips."""
    once = unparse_stmts(f"y = {expr};")
    twice = unparse_stmts(once)
    assert once == twice
