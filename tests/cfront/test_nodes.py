"""Unit tests for AST node helpers and TypeSpec."""

import pytest

from repro.cfront import parse_statements, parse_loop
from repro.cfront.nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    CallExpr,
    CharLiteral,
    DeclRefExpr,
    FloatingLiteral,
    ForStmt,
    IntegerLiteral,
    LOOP_KINDS,
    TypeSpec,
    UnaryOperator,
    loops_of,
)


def expr_of(src):
    return parse_statements(src + ";").stmts[0].expr


class TestLiterals:
    def test_int_value_decimal(self):
        assert IntegerLiteral(text="42").value == 42

    def test_int_value_hex(self):
        assert IntegerLiteral(text="0xFF").value == 255

    def test_int_value_suffixes(self):
        assert IntegerLiteral(text="10UL").value == 10
        assert IntegerLiteral(text="7u").value == 7

    def test_float_value(self):
        assert FloatingLiteral(text="2.5f").value == 2.5
        assert FloatingLiteral(text="1e3").value == 1000.0

    def test_char_value(self):
        assert CharLiteral(text="'A'").value == ord("A")
        assert CharLiteral(text=r"'\n'").value == ord("\n")
        assert CharLiteral(text=r"'\0'").value == 0


class TestOperatorHelpers:
    def test_assignment_detection(self):
        assert expr_of("x = 1").is_assignment
        assert expr_of("x += 1").is_compound_assignment
        assert not expr_of("x + 1").is_assignment

    def test_incdec_detection(self):
        assert expr_of("x++").is_incdec
        assert expr_of("--x").is_incdec
        assert not expr_of("-x").is_incdec

    def test_call_name(self):
        call = expr_of("f(1, 2)")
        assert isinstance(call, CallExpr)
        assert call.name == "f"

    def test_indirect_call_has_no_name(self):
        call = expr_of("(*fp)(1)")
        assert isinstance(call, CallExpr)
        assert call.name == ""


class TestTypeSpec:
    def test_str_rendering(self):
        t = TypeSpec(base="double", pointers=2)
        assert str(t) == "double**"

    def test_qualifiers_in_str(self):
        t = TypeSpec(base="int", qualifiers=frozenset({"const"}))
        assert "const" in str(t)

    def test_is_array_and_pointer(self):
        assert TypeSpec(base="int", array_dims=[None]).is_array
        assert TypeSpec(base="int", pointers=1).is_pointer
        assert not TypeSpec(base="int").is_array

    def test_is_floating(self):
        assert TypeSpec(base="double").is_floating
        assert TypeSpec(base="float").is_floating
        assert not TypeSpec(base="unsigned int").is_floating
        assert TypeSpec(base="long double").is_floating


class TestTraversalHelpers:
    def test_loops_of_finds_all_kinds(self):
        block = parse_statements(
            "for (i = 0; i < 3; i++) x++;\n"
            "while (x) x--;\n"
            "do x++; while (x < 5);"
        )
        loops = loops_of(block)
        assert len(loops) == 3
        assert {l.kind for l in loops} == {"ForStmt", "WhileStmt", "DoStmt"}

    def test_loops_of_includes_nested(self):
        loop = parse_loop("for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) x++;")
        assert len(loops_of(loop)) == 2

    def test_find_all_with_multiple_kinds(self):
        loop = parse_loop("for (i = 0; i < n; i++) a[i] = f(b[i]);")
        found = list(loop.find_all(ArraySubscriptExpr, CallExpr))
        kinds = {n.kind for n in found}
        assert kinds == {"ArraySubscriptExpr", "CallExpr"}

    def test_kind_property_matches_class_name(self):
        loop = parse_loop("for (;;) break;")
        assert loop.kind == "ForStmt"
        assert isinstance(loop, LOOP_KINDS)

    def test_tok_i_set_on_leaves(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        refs = list(loop.find_all(DeclRefExpr))
        assert all(r.tok_i >= 0 for r in refs)
        # token order is strictly increasing along source order
        tok_is = [r.tok_i for r in refs]
        assert tok_is == sorted(tok_is)
